"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **A2 — token-coloring optimization (§5.3)**: dirty-mark messages sent
  with and without the votes-before rule, on a steal-heavy UTS run.
* **A3 — steal chunk size (§5.1)**: UTS throughput across chunk sizes.
* **A4 — locality-aware placement (§5.1)**: TCE with owner placement vs
  round-robin placement; reports runtime and remote-accumulate counts.
* **A5 — dynamic load balancing off (§3)**: Scioto with stealing
  disabled on the heterogeneous cluster, where static placement leaves
  the fast half of the machine idle at the tail.
"""

from __future__ import annotations

from repro.apps.tce import TCEProblem, run_tce_scioto
from repro.apps.uts import UTSParams, run_uts_scioto
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster
from repro.util.records import Series, SweepResult

__all__ = [
    "run_ablation_termination",
    "run_ablation_chunk",
    "run_ablation_affinity",
    "run_ablation_static",
    "run_ablation_waitfree",
]

_TREE = UTSParams(b0=4.0, gen_mx=10, root_seed=17)


def run_ablation_termination(scale: str = "quick") -> SweepResult:
    """A2: dirty-mark messages with/without the votes-before optimization."""
    procs = [4, 8, 16] if scale == "quick" else [8, 16, 32, 64]
    result = SweepResult(experiment="ablation-termination-opt")
    sent_opt = Series(label="dirty-msgs-optimized", unit="msgs")
    sent_base = Series(label="dirty-msgs-baseline", unit="msgs")
    saved = Series(label="fraction-elided", unit="")
    for p in procs:
        mach = heterogeneous_cluster(p)
        opt = run_uts_scioto(
            p, _TREE, machine=mach, seed=1, config=SciotoConfig(termination_opt=True)
        )
        base = run_uts_scioto(
            p, _TREE, machine=mach, seed=1, config=SciotoConfig(termination_opt=False)
        )
        n_opt = sum(s.dirty_msgs for s in opt.per_rank)
        n_base = sum(s.dirty_msgs for s in base.per_rank)
        sent_opt.add(p, n_opt)
        sent_base.add(p, n_base)
        saved.add(p, 1.0 - n_opt / n_base if n_base else 0.0)
    result.series = [sent_opt, sent_base, saved]
    result.notes.append("baseline marks the victim dirty on every steal (§5.3)")
    return result


def run_ablation_chunk(scale: str = "quick") -> SweepResult:
    """A3: UTS throughput vs steal chunk size."""
    p = 8 if scale == "quick" else 32
    result = SweepResult(experiment="ablation-chunk-size")
    thpt = Series(label=f"throughput@{p}procs", unit="Mnodes/s")
    steals = Series(label="steals", unit="")
    for chunk in (1, 2, 5, 10, 20, 50):
        r = run_uts_scioto(
            p, _TREE, machine=heterogeneous_cluster(p), seed=1,
            config=SciotoConfig(chunk_size=chunk),
        )
        thpt.add(chunk, r.throughput / 1e6)
        steals.add(chunk, r.total_steals)
    result.series = [thpt, steals]
    result.notes.append("x axis: chunk size (tasks per steal); paper default 10")
    return result


def run_ablation_affinity(scale: str = "quick") -> SweepResult:
    """A4: TCE owner placement vs round-robin (locality-oblivious)."""
    p = 8 if scale == "quick" else 32
    prob = (
        TCEProblem(nblocks=10, blocksize=48, density=0.4)
        if scale == "quick"
        else TCEProblem(nblocks=16, blocksize=64, density=0.4)
    )
    result = SweepResult(experiment="ablation-affinity-placement")
    runtime = Series(label="runtime", unit="ms")
    remote_acc = Series(label="remote-accumulates", unit="")
    for x, placement in ((0, "owner"), (1, "roundrobin")):
        r = run_tce_scioto(
            p, prob, machine=heterogeneous_cluster(p), seed=1, placement=placement
        )
        runtime.add(x, r.elapsed * 1e3)
        remote_acc.add(x, r.comm.get("acc_remote", 0.0))
    result.series = [runtime, remote_acc]
    result.notes.append("x axis: 0=owner placement, 1=round-robin placement")
    return result


def run_ablation_waitfree(scale: str = "quick") -> SweepResult:
    """A6: locked vs wait-free steal protocol (§8 future work) on UTS."""
    procs = [4, 8, 16] if scale == "quick" else [8, 16, 32, 64]
    result = SweepResult(experiment="ablation-waitfree-steals")
    locked = Series(label="locked-steals", unit="Mnodes/s")
    waitfree = Series(label="wait-free-steals", unit="Mnodes/s")
    for p in procs:
        mach = heterogeneous_cluster(p)
        locked.add(p, run_uts_scioto(p, _TREE, machine=mach, seed=1).throughput / 1e6)
        waitfree.add(
            p,
            run_uts_scioto(
                p, _TREE, machine=mach, seed=1,
                config=SciotoConfig(wait_free_steals=True),
            ).throughput
            / 1e6,
        )
    result.series = [locked, waitfree]
    result.notes.append(
        "wait-free: chunk reservation via one remote atomic, no mutex held"
    )
    return result


def run_ablation_static(scale: str = "quick") -> SweepResult:
    """A5: stealing on vs off under *identical* initial placement (UTS).

    Both runs seed the same breadth-first frontier round-robin across
    ranks (UTS cannot run statically from a single root); the only
    difference is whether work stealing may fix the resulting imbalance
    on the heterogeneous machine.
    """
    procs = [4, 8, 16] if scale == "quick" else [8, 16, 32, 64]
    result = SweepResult(experiment="ablation-static-placement")
    dyn = Series(label="load-balancing-on", unit="Mnodes/s")
    stat = Series(label="load-balancing-off", unit="Mnodes/s")
    for p in procs:
        mach = heterogeneous_cluster(p)
        dyn.add(p, _uts_frontier(p, mach, load_balancing=True) / 1e6)
        stat.add(p, _uts_frontier(p, mach, load_balancing=False) / 1e6)
    result.series = [dyn, stat]
    result.notes.append(
        "both series seed the same breadth-first frontier; only stealing differs"
    )
    return result


def _uts_frontier(nprocs: int, machine, load_balancing: bool) -> float:
    """UTS throughput with an initial frontier dealt round-robin."""
    from repro.apps.uts.tree import TreeStats, children_of, root_node
    from repro.apps.uts.scioto_uts import UTS_BODY_BYTES
    from repro.armci.runtime import Armci
    from repro.core import Task, TaskCollection
    from repro.sim.engine import Engine

    params = _TREE

    def main(proc):
        tc = TaskCollection.create(
            proc, task_size=UTS_BODY_BYTES, max_tasks=1 << 20,
            config=SciotoConfig(load_balancing=load_balancing),
        )
        stats = TreeStats()

        def node_task(tc_, task):
            p = tc_.proc
            node = task.body
            p.compute(p.machine.cpu_reference)
            stats.nodes += 1
            kids = children_of(params, node)
            if not kids:
                stats.leaves += 1
            for c in kids:
                tc_.add(Task(callback=h, body=c, body_size=UTS_BODY_BYTES))

        h = tc.register(node_task)
        if proc.rank == 0:
            # expand a breadth-first frontier, then deal it out round-robin
            frontier = [root_node(params)]
            while 0 < len(frontier) < 4 * proc.nprocs:
                node = frontier.pop(0)
                stats.nodes += 1
                kids = children_of(params, node)
                if not kids:
                    stats.leaves += 1
                frontier.extend(kids)
                proc.compute(proc.machine.cpu_reference)
            for idx, node in enumerate(frontier):
                tc.add(Task(callback=h, body=node, body_size=UTS_BODY_BYTES),
                       rank=idx % proc.nprocs)
        armci = Armci.attach(proc.engine)
        armci.barrier(proc)
        t0 = proc.now
        tc.process()
        total = armci.allreduce(proc, stats.nodes, lambda a, b: a + b)
        elapsed = armci.allreduce(proc, proc.now - t0, max)
        return (total, elapsed)

    eng = Engine(nprocs, machine=machine, seed=1, max_events=20_000_000)
    eng.spawn_all(main)
    res = eng.run()
    total, elapsed = res.returns[0]
    return total / elapsed
