"""Rendering of benchmark results: aligned tables and paper-vs-measured."""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.format import format_table
from repro.util.records import SweepResult

__all__ = ["render", "paper_vs_measured"]


def render(result: SweepResult, x_label: str = "procs", fmt: str = "{:.3g}") -> str:
    """Render a sweep as one aligned table, one column per series."""
    xs = sorted({x for s in result.series for x in s.xs})
    headers = [x_label] + [
        f"{s.label}" + (f" [{s.unit}]" if s.unit else "") for s in result.series
    ]
    rows = []
    for x in xs:
        row: list[object] = [int(x) if float(x).is_integer() else x]
        for s in result.series:
            row.append(fmt.format(s.y_at(x)) if x in s.xs else "-")
        rows.append(row)
    body = format_table(headers, rows, title=f"== {result.experiment} ==")
    if result.notes:
        body += "\n" + "\n".join(f"  note: {n}" for n in result.notes)
    return body


def paper_vs_measured(
    title: str,
    rows: Sequence[tuple[str, str, str, str]],
) -> str:
    """Render a (quantity, paper value, measured value, verdict) table."""
    return format_table(
        ["quantity", "paper", "measured", "shape"],
        rows,
        title=title,
    )
