#!/usr/bin/env python3
"""Block-sparse tensor contraction (TCE kernel): locality matters.

Contracts two block-sparse matrices into a distributed output array
three ways (paper §6.2 plus ablation A4):

* Scioto, tasks seeded at the owner of their output block (the paper's
  locality-aware placement) — accumulates are local memory ops;
* Scioto with round-robin placement — same scheduler, no locality;
* the original global-counter scheme — every one of the nblocks^3
  triples is claimed through a shared atomic counter, though most are
  zero.

Run:
    python examples/tce_demo.py [nprocs]
"""

import sys

import numpy as np

from repro.apps.tce import (
    TCEProblem,
    contract_sequential,
    run_tce_original,
    run_tce_scioto,
)
from repro.sim.machines import heterogeneous_cluster


def main(nprocs: int = 8) -> None:
    problem = TCEProblem(nblocks=10, blocksize=48, density=0.4)
    nz = len(problem.nonzero_triples())
    print(f"TCE: {problem.n}x{problem.n} matrices, "
          f"{nz} nonzero triples of {len(problem.all_triples())} "
          f"({100 * nz / len(problem.all_triples()):.0f}% real work)\n")

    ref = contract_sequential(problem)
    machine = heterogeneous_cluster(nprocs)
    owner = run_tce_scioto(nprocs, problem, machine=machine, placement="owner")
    robin = run_tce_scioto(nprocs, problem, machine=machine, placement="roundrobin")
    orig = run_tce_original(nprocs, problem, machine=machine)

    rows = [
        ("Scioto (owner placement)", owner),
        ("Scioto (round-robin)", robin),
        ("Original (global counter)", orig),
    ]
    for label, r in rows:
        assert np.allclose(r.result, ref, atol=1e-9), label
        accs = int(r.comm.get("acc_remote", 0))
        rmws = int(r.comm.get("rmw", 0))
        print(f"{label:28s} {r.elapsed * 1e3:7.2f} ms   "
              f"remote accs: {accs:4d}   counter claims: {rmws:5d}")
    print("\nall three C matrices match the sequential reference")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
