"""Optional structured event tracing for simulations.

Attach a :class:`Tracer` to an engine to record timestamped events from
any layer (queue operations, steals, termination tokens, GA transfers),
then render a per-rank timeline or export the raw records.  Tracing is
off unless attached, costs nothing when off, and does not perturb
virtual time — it is an observer, not a participant.

This module historically lived at ``repro.sim.tracing``; it moved
into the unified observability package so spans, metrics, and events
share one home.  The old import path (and its one-release deprecation
shim) is gone.

Example::

    eng = Engine(4)
    tracer = Tracer.attach(eng)
    ...
    eng.spawn_all(main)
    eng.run()
    print(tracer.render(limit=50))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, Proc

__all__ = ["Tracer", "TraceEvent", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    rank: int
    kind: str
    detail: Any = None


class Tracer:
    """Engine-wide event recorder."""

    _KEY = "tracer"

    def __init__(self, engine: "Engine", capacity: int = 1_000_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.dropped = 0

    @classmethod
    def attach(cls, engine: "Engine", capacity: int = 1_000_000) -> "Tracer":
        """Enable tracing on ``engine`` (idempotent)."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine, capacity)
            engine.state[cls._KEY] = inst
            engine.note_observer()
        return inst

    @classmethod
    def of(cls, engine: "Engine") -> "Tracer | None":
        """The engine's tracer, or None if tracing is off."""
        return engine.state.get(cls._KEY)

    def record(self, proc: "Proc", kind: str, detail: Any = None) -> None:
        """Record an event at the process's current virtual time.

        Events past ``capacity`` are counted in :attr:`dropped` (and
        reported by :meth:`render`) rather than silently discarded.
        """
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(proc.now, proc.rank, kind, detail))

    # ------------------------------------------------------------------ #
    # Queries and rendering
    # ------------------------------------------------------------------ #
    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def render(self, limit: int | None = None, kinds: set[str] | None = None) -> str:
        """Render events (time-ordered) as an aligned text timeline."""
        events = sorted(self.events, key=lambda e: (e.time, e.rank))
        if kinds is not None:
            events = [e for e in events if e.kind in kinds]
        if limit is not None:
            events = events[:limit]
        lines = [f"{'time(us)':>10}  {'rank':>4}  {'event':<18}  detail"]
        for e in events:
            detail = "" if e.detail is None else str(e.detail)
            lines.append(f"{e.time * 1e6:10.3f}  {e.rank:4d}  {e.kind:<18}  {detail}")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity {self.capacity})")
        return "\n".join(lines)


def trace(proc: "Proc", kind: str, detail: Any = None) -> None:
    """Record an event if the engine has a tracer attached (else no-op).

    This is the hook the runtime layers call; keep it on hot paths only
    where an event is semantically meaningful (steals, tokens, transfers).
    """
    tracer = proc.engine.state.get(Tracer._KEY)
    if tracer is not None:
        tracer.record(proc, kind, detail)
