"""Inter-task dependencies: the paper's §8 future-work extension.

The paper's model supports independent tasks and says "we are presently
working on extending our independent task model with support for tasks
that exhibit arbitrary inter-task dependencies."  This module provides
that extension on top of unmodified task collections:

* A :class:`TaskGraph` is declared *identically on every rank*
  (replicated metadata, like GA sparsity masks): named tasks, their
  callbacks/bodies, and their dependencies, forming a DAG.
* Each task has a *home* rank (explicit or hashed) that hosts its
  remaining-dependency counter and executes it with high affinity
  (stealable like any other task).
* When a task completes, the executing rank atomically decrements each
  successor's counter with a one-sided fetch-and-add; whoever drives a
  counter to zero enqueues the successor at its home.  Enabling a task
  is a (possibly remote) ``tc_add``, so the existing termination
  detector remains correct with no changes: the enabler is active at the
  moment it adds, and dirty marking covers the rest.

Because only counter decrements are added to the critical path, the
scheme keeps Scioto's lightweight character: no central dependence
manager, no extra progress threads.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any

from repro.armci.runtime import Armci
from repro.core.collection import TaskCollection
from repro.core.task import AFFINITY_HIGH, Task
from repro.obs.tracing import trace
from repro.sim.engine import blocking_method
from repro.util.errors import TaskCollectionError

__all__ = ["TaskGraph"]


def _stable_hash(key: str) -> int:
    import hashlib

    return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


@dataclass
class _Node:
    name: str
    fn: Callable[[TaskCollection, Task], None]
    body: Any
    deps: tuple[str, ...]
    rank: int
    affinity: int
    successors: list[str] = field(default_factory=list)


class TaskGraph:
    """A DAG of named, dependent tasks over one task collection.

    Declare the same graph on every rank, then call :meth:`process`
    collectively::

        tg = TaskGraph.create(tc)
        tg.add("a", fn, body=1)
        tg.add("b", fn, body=2, deps=["a"])
        tg.add("c", fn, body=3, deps=["a"])
        tg.add("d", fn, body=4, deps=["b", "c"])
        tg.process()
    """

    _KEY = "scioto_graphs"

    def __init__(self, tc: TaskCollection, counters: dict[str, int]) -> None:
        self.tc = tc
        self._nodes: dict[str, _Node] = {}
        self._sealed = False
        # dependency counters hosted per home rank; shared engine-level dict
        # mutated only through one-sided rmw at the home rank
        self._counters = counters
        self._handle = tc.register(self._run_node)

    # ------------------------------------------------------------------ #
    # Construction (collective, replicated)
    # ------------------------------------------------------------------ #
    create = classmethod(blocking_method("co_create"))

    @classmethod
    def co_create(cls, tc: TaskCollection):
        """Collectively create a graph bound to ``tc`` (call on every rank)."""
        registry = tc.proc.engine.state.setdefault(
            cls._KEY, {"counts": [0] * tc.nprocs, "stores": []}
        )
        idx = registry["counts"][tc.rank]
        registry["counts"][tc.rank] += 1
        yield from tc.proc.co_sync()
        if idx == len(registry["stores"]):
            registry["stores"].append({})
        return cls(tc, registry["stores"][idx])

    def add(
        self,
        name: str,
        fn: Callable[[TaskCollection, Task], None],
        body: Any = None,
        deps: list[str] | tuple[str, ...] = (),
        rank: int | None = None,
        affinity: int = AFFINITY_HIGH,
    ) -> None:
        """Declare a task (identically on every rank).

        Args:
            name: Unique task name.
            fn: Callback ``fn(tc, task)``; ``task.body`` is ``body``.
            body: User payload (deep-copied at enqueue time).
            deps: Names of tasks that must complete first.
            rank: Home rank; defaults to a stable hash of the name.
            affinity: Affinity of the task for its home rank.
        """
        if self._sealed:
            raise TaskCollectionError("cannot add tasks after process() started")
        if name in self._nodes:
            raise TaskCollectionError(f"duplicate task name {name!r}")
        home = _stable_hash(name) % self.tc.nprocs if rank is None else rank
        if not 0 <= home < self.tc.nprocs:
            raise TaskCollectionError(f"invalid home rank {home} for {name!r}")
        self._nodes[name] = _Node(
            name=name, fn=fn, body=body, deps=tuple(deps), rank=home, affinity=affinity
        )

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    process = blocking_method("co_process")

    def co_process(self):
        """Seed ready tasks and run the collection to termination (collective)."""
        yield from self._co_seal()
        proc = self.tc.proc
        # every rank seeds the ready tasks homed on it
        for node in self._nodes.values():
            if not node.deps and node.rank == proc.rank:
                yield from self._co_enqueue(node)
        yield from Armci.attach(proc.engine).co_barrier(proc)
        return (yield from self.tc.co_process())

    def _co_seal(self):
        if self._sealed:
            return
        self._validate()
        for node in self._nodes.values():
            for dep in node.deps:
                self._nodes[dep].successors.append(node.name)
            if self.tc.rank == node.rank:
                # the home rank hosts the counter (one writer at creation;
                # later mutated only via one-sided rmw)
                self._counters[node.name] = len(node.deps)
        yield from self.tc.proc.co_sync()
        self._sealed = True

    def _validate(self) -> None:
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise TaskCollectionError(
                        f"task {node.name!r} depends on unknown task {dep!r}"
                    )
        # Kahn's algorithm: every node must be reachable from the sources
        indeg = {n: len(node.deps) for n, node in self._nodes.items()}
        ready = [n for n, d in indeg.items() if d == 0]
        seen = 0
        succs: dict[str, list[str]] = {n: [] for n in self._nodes}
        for n, node in self._nodes.items():
            for dep in node.deps:
                succs[dep].append(n)
        while ready:
            n = ready.pop()
            seen += 1
            for s in succs[n]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if seen != len(self._nodes):
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise TaskCollectionError(f"dependency cycle involving {cyclic}")

    def _co_enqueue(self, node: _Node):
        yield from self.tc.co_add(
            Task(callback=self._handle, body=node.name, affinity=node.affinity),
            rank=node.rank,
        )

    def _run_node(self, tc: TaskCollection, task: Task):
        # Registered as a task callback: the scheduler drives the
        # returned generator (see ``co_run_process``).
        node = self._nodes[task.body]
        trace(tc.proc, "graph-node", node.name)
        user_task = Task(callback=self._handle, body=node.body, affinity=node.affinity)
        res = node.fn(tc, user_task)
        if type(res) is GeneratorType:
            yield from res
        armci = Armci.attach(tc.proc.engine)
        for succ_name in node.successors:
            succ = self._nodes[succ_name]

            def _dec(name=succ_name) -> int:
                self._counters[name] -= 1
                return self._counters[name]

            remaining = yield from armci.co_rmw(tc.proc, succ.rank, _dec)
            if remaining == 0:
                yield from self._co_enqueue(succ)
            elif remaining < 0:  # pragma: no cover - defensive
                raise TaskCollectionError(
                    f"dependency counter of {succ_name!r} went negative"
                )
