"""Lightweight counters for communication- and scheduler-level statistics.

Every layer keeps a :class:`Counters` instance; benchmarks read them to
report message counts, bytes moved, steals, and the dirty-mark message
savings of the termination-detector optimization (ablation A2).
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["Counters"]


class Counters:
    """A two-level counter map: ``counters[rank][key] -> float``.

    Also maintains a global aggregate accessible via :meth:`total`.
    """

    def __init__(self) -> None:
        self._per_rank: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))

    def add(self, rank: int, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``key`` of ``rank``."""
        self._per_rank[rank][key] += amount

    def get(self, rank: int, key: str) -> float:
        """Return counter ``key`` of ``rank`` (0.0 if never touched)."""
        return self._per_rank[rank].get(key, 0.0)

    def total(self, key: str) -> float:
        """Sum of counter ``key`` across all ranks."""
        return sum(c.get(key, 0.0) for c in self._per_rank.values())

    def keys(self) -> set[str]:
        """All counter names that have been touched on any rank."""
        out: set[str] = set()
        for c in self._per_rank.values():
            out.update(c.keys())
        return out

    def snapshot(self) -> dict[str, float]:
        """Aggregate view ``{key: total}`` across ranks."""
        return {k: self.total(k) for k in sorted(self.keys())}
