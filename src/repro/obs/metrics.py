"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

This module is the storage layer of the observability subsystem.  It
deliberately imports nothing from the runtime layers (``repro.sim``,
``repro.core``, ``repro.armci``) so that any of them can import it
without cycles — the same rule :mod:`repro.analyze.hooks` follows.

Three metric kinds cover the paper's evaluation needs (§6):

* :class:`CounterFamily` — the two-level ``rank -> key -> float`` map
  the benchmarks have always read.  :class:`repro.sim.counters.Counters`
  is now a thin compatibility facade over this class.
* :class:`Gauge` — a per-rank last-value sample (queue occupancy and
  the like), with min/max/sample-count retained.
* :class:`Histogram` — fixed bucket edges chosen per metric name
  (:data:`DEFAULT_BUCKETS`), with an overflow bucket, plus per-rank
  count/sum so summaries can localize skew.

Bucket convention: a value ``v`` lands in the first bucket ``i`` with
``v <= edges[i]``; values above ``edges[-1]`` land in the overflow
bucket (index ``len(edges)``).
"""

from __future__ import annotations

import bisect
import math
from collections import defaultdict

__all__ = [
    "CounterFamily",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "RollingWindows",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "HOST_TIME_BUCKETS",
    "WIDE_COUNT_BUCKETS",
]


class QuantileSketch:
    """A DDSketch-style log-bucketed quantile sketch.

    Bucket key ``i`` holds values ``v`` with ``gamma**(i-1) < v <=
    gamma**i`` where ``gamma = (1 + alpha) / (1 - alpha)``; reporting the
    bucket midpoint ``2 * gamma**i / (gamma + 1)`` keeps every estimate
    within relative error ``alpha`` of the true value (boundary values may
    round into the adjacent bucket, which still lands exactly at the
    ``alpha`` bound).  Values at or below :data:`MIN_VALUE` — including
    zeros, which queue-occupancy streams produce — collapse into a
    dedicated zero bucket reported as ``0.0``.

    Buckets are sparse integers in a dict, so memory is
    ``O(log(max/min) / alpha)`` regardless of observation count, and the
    structure is exactly mergeable (bucket-wise add, used for fleet
    aggregation) and subtractable (bucket-wise delta, used for rolling
    windows).  Everything is integer arithmetic plus one ``math.log`` per
    observation: deterministic for a given value stream.
    """

    #: Values at or below this (including non-positive) use the zero bucket.
    MIN_VALUE = 1e-12

    __slots__ = ("alpha", "gamma", "_log_gamma", "buckets", "zero", "count")

    def __init__(self, alpha: float = 0.01) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"sketch alpha must be in (0, 1), got {alpha!r}")
        self.alpha = float(alpha)
        self.gamma = (1.0 + self.alpha) / (1.0 - self.alpha)
        self._log_gamma = math.log(self.gamma)
        self.buckets: dict[int, int] = {}
        self.zero = 0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if value <= self.MIN_VALUE:
            self.zero += 1
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self.buckets[key] = self.buckets.get(key, 0) + 1
        self.count += 1

    def value_at(self, key: int) -> float:
        """Midpoint estimate for bucket ``key``."""
        return 2.0 * self.gamma**key / (self.gamma + 1.0)

    def quantile(self, q: float) -> float:
        """Quantile estimate within relative error ``alpha``.

        Uses the same rank rule as :func:`_bucket_quantile`: the first
        bucket whose cumulative count reaches ``q * count``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = self.zero
        if seen >= target and self.zero:
            return 0.0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= target:
                return self.value_at(key)
        return self.value_at(max(self.buckets)) if self.buckets else 0.0

    # -- merge / delta -------------------------------------------------- #
    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other``'s buckets into this sketch (exact)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketch with alpha={other.alpha} into alpha={self.alpha}"
            )
        for key, c in other.buckets.items():
            self.buckets[key] = self.buckets.get(key, 0) + c
        self.zero += other.zero
        self.count += other.count

    def snapshot(self) -> tuple[dict[int, int], int, int]:
        """Frozen bucket state, for windowed deltas via :meth:`delta`."""
        return (dict(self.buckets), self.zero, self.count)

    def delta(self, snap: tuple[dict[int, int], int, int]) -> "QuantileSketch":
        """A new sketch holding only observations made since ``snap``."""
        prev_buckets, prev_zero, prev_count = snap
        out = QuantileSketch(self.alpha)
        for key, c in self.buckets.items():
            d = c - prev_buckets.get(key, 0)
            if d:
                out.buckets[key] = d
        out.zero = self.zero - prev_zero
        out.count = self.count - prev_count
        return out

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "zero": self.zero,
            "count": self.count,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }

    def merge_dict(self, doc: dict) -> None:
        """Fold a serialized sketch (:meth:`to_dict` form) into this one."""
        if doc.get("alpha") != self.alpha:
            raise ValueError(
                f"cannot merge sketch with alpha={doc.get('alpha')} "
                f"into alpha={self.alpha}"
            )
        for key_str, c in doc.get("buckets", {}).items():
            key = int(key_str)
            self.buckets[key] = self.buckets.get(key, 0) + c
        self.zero += doc.get("zero", 0)
        self.count += doc.get("count", 0)

    @classmethod
    def from_dict(cls, doc: dict) -> "QuantileSketch":
        out = cls(doc.get("alpha", 0.01))
        out.merge_dict(doc)
        return out


class CounterFamily:
    """A two-level counter map: ``counters[rank][key] -> float``.

    Also maintains a global aggregate accessible via :meth:`total`.
    """

    def __init__(self) -> None:
        self._per_rank: dict[int, dict[str, float]] = defaultdict(lambda: defaultdict(float))

    def add(self, rank: int, key: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``key`` of ``rank``."""
        self._per_rank[rank][key] += amount

    def get(self, rank: int, key: str) -> float:
        """Return counter ``key`` of ``rank`` (0.0 if never touched)."""
        return self._per_rank[rank].get(key, 0.0)

    def total(self, key: str) -> float:
        """Sum of counter ``key`` across all ranks."""
        return sum(c.get(key, 0.0) for c in self._per_rank.values())

    def keys(self) -> set[str]:
        """All counter names that have been touched on any rank."""
        out: set[str] = set()
        for c in self._per_rank.values():
            out.update(c.keys())
        return out

    def snapshot(self) -> dict[str, float]:
        """Aggregate view ``{key: total}`` across ranks."""
        return {k: self.total(k) for k in sorted(self.keys())}

    def per_rank_snapshot(self) -> dict[int, dict[str, float]]:
        """Full view ``{rank: {key: value}}`` (ranks and keys sorted)."""
        return {
            rank: {k: v for k, v in sorted(self._per_rank[rank].items())}
            for rank in sorted(self._per_rank)
        }


class Gauge:
    """A per-rank sampled value; remembers last/min/max and sample count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.last: dict[int, float] = {}
        self.min = math.inf
        self.max = -math.inf
        self.samples = 0

    def set(self, rank: int, value: float) -> None:
        """Record ``value`` as the gauge's current reading on ``rank``."""
        self.last[rank] = value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.samples += 1

    def to_dict(self) -> dict:
        return {
            "last": {str(r): v for r, v in sorted(self.last.items())},
            "min": self.min if self.samples else None,
            "max": self.max if self.samples else None,
            "samples": self.samples,
        }


class Histogram:
    """A fixed-bucket histogram with an overflow bucket.

    ``counts[i]`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]`` (``counts[len(edges)]`` is the
    overflow bucket).  Per-rank count/sum are kept alongside the global
    distribution so summaries can show which ranks dominate.

    Every observation also feeds a :class:`QuantileSketch`, so readers
    that need relative-error-bounded percentiles (rolling windows, the
    live telemetry bus) are not limited to bucket-edge resolution.
    """

    def __init__(self, name: str, edges: tuple[float, ...]) -> None:
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram edges must be strictly increasing, got {edges!r}")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sketch = QuantileSketch()
        self._rank_count: dict[int, int] = defaultdict(int)
        self._rank_sum: dict[int, float] = defaultdict(float)

    def observe(self, value: float, rank: int | None = None) -> None:
        """Record one observation (optionally attributed to ``rank``)."""
        self.counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.sketch.observe(value)
        if rank is not None:
            self._rank_count[rank] += 1
            self._rank_sum[rank] += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding it.

        Overflow observations report the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return self.edges[i] if i < len(self.edges) else self.max
        return self.max

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            # Bucket-resolution percentiles (schema repro-obs-metrics/2);
            # readers fall back to recomputing from edges/counts when
            # loading a /1 document.
            "p50": self.quantile(0.50) if self.count else None,
            "p95": self.quantile(0.95) if self.count else None,
            "p99": self.quantile(0.99) if self.count else None,
            "sketch": self.sketch.to_dict(),
            "per_rank": {
                str(r): {"count": self._rank_count[r], "sum": self._rank_sum[r]}
                for r in sorted(self._rank_count)
            },
        }


def _log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced bucket edges from ``lo`` to ``hi`` inclusive."""
    n = int(round(math.log10(hi / lo) * per_decade))
    return tuple(lo * (hi / lo) ** (i / n) for i in range(n + 1))


#: Latency-style default edges: 50ns .. 100ms, 3 buckets per decade.
TIME_BUCKETS: tuple[float, ...] = _log_buckets(50e-9, 100e-3, per_decade=3)

#: Small-integer default edges (chunk sizes, queue occupancy).
COUNT_BUCKETS: tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Host-side latency edges: 1ms .. 100s — fleet job walls, not
#: simulated-protocol latencies (those use TIME_BUCKETS).
HOST_TIME_BUCKETS: tuple[float, ...] = _log_buckets(1e-3, 100.0, per_decade=3)

#: Wide integer edges (per-schedule event counts): 1 .. 1M.
WIDE_COUNT_BUCKETS: tuple[float, ...] = _log_buckets(1.0, 1e6, per_decade=1)

#: Per-metric bucket edges; unnamed metrics fall back to TIME_BUCKETS.
DEFAULT_BUCKETS: dict[str, tuple[float, ...]] = {
    "steal_latency": TIME_BUCKETS,
    "steal_fail_latency": TIME_BUCKETS,
    "steal_chunk": COUNT_BUCKETS,
    "queue_occupancy": COUNT_BUCKETS,
    "wave_rtt": TIME_BUCKETS,
    "lock_wait": TIME_BUCKETS,
    "lock_hold": TIME_BUCKETS,
    "task_time": TIME_BUCKETS,
    "idle_wait": TIME_BUCKETS,
    # Fleet (host-level) metrics — see repro.fleet.scheduler.
    "job_wall": HOST_TIME_BUCKETS,
    "steal_chunk_jobs": COUNT_BUCKETS,
    "schedule_events": WIDE_COUNT_BUCKETS,
}


class MetricsRegistry:
    """One namespace of counters, gauges, and histograms.

    The observability :class:`~repro.obs.record.Recorder` owns one
    registry per engine; metrics created on demand get their bucket
    edges from :data:`DEFAULT_BUCKETS`.
    """

    def __init__(self) -> None:
        self.counters = CounterFamily()
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- creation-on-demand ------------------------------------------- #
    def histogram(self, name: str, edges: tuple[float, ...] | None = None) -> Histogram:
        """The histogram called ``name``, created on first use."""
        h = self.histograms.get(name)
        if h is None:
            h = Histogram(name, edges or DEFAULT_BUCKETS.get(name, TIME_BUCKETS))
            self.histograms[name] = h
        return h

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        g = self.gauges.get(name)
        if g is None:
            g = Gauge(name)
            self.gauges[name] = g
        return g

    # -- recording ----------------------------------------------------- #
    def observe(self, name: str, value: float, rank: int | None = None) -> None:
        """Observe ``value`` into histogram ``name``."""
        self.histogram(name).observe(value, rank)

    def sample(self, name: str, rank: int, value: float) -> None:
        """Set gauge ``name`` on ``rank`` to ``value``."""
        self.gauge(name).set(rank, value)

    def add(self, rank: int, key: str, amount: float = 1.0) -> None:
        """Increment counter ``key`` of ``rank``."""
        self.counters.add(rank, key, amount)

    # -- export -------------------------------------------------------- #
    def to_dict(self) -> dict:
        """JSON-ready view of every metric in the registry."""
        return {
            "counters": {
                "total": self.counters.snapshot(),
                "per_rank": {
                    str(r): v for r, v in self.counters.per_rank_snapshot().items()
                },
            },
            "gauges": {k: g.to_dict() for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.to_dict() for k, h in sorted(self.histograms.items())},
        }

    # -- aggregation ---------------------------------------------------- #
    def merge_dict(self, doc: dict, into_rank: int | None = None) -> None:
        """Fold a serialized registry (:meth:`to_dict` form) into this one.

        The fleet scheduler uses this to aggregate metric snapshots that
        ride back from worker processes on job results: counter values
        add, histogram buckets add (edges must match), gauges fold
        min/max/samples and adopt the incoming last-values.

        Args:
            doc: A document produced by :meth:`to_dict` (possibly in
                another process).
            into_rank: When given, every per-rank value in ``doc`` is
                attributed to this rank — used to re-key a worker's
                local ranks to its fleet worker id.  When ``None``,
                original rank keys are preserved.
        """
        for rank_str, kv in doc.get("counters", {}).get("per_rank", {}).items():
            rank = into_rank if into_rank is not None else int(rank_str)
            for key, value in kv.items():
                self.counters.add(rank, key, value)
        for name, g in doc.get("gauges", {}).items():
            gauge = self.gauge(name)
            for rank_str, value in g.get("last", {}).items():
                rank = into_rank if into_rank is not None else int(rank_str)
                gauge.last[rank] = value
            if g.get("samples"):
                gauge.min = min(gauge.min, g["min"])
                gauge.max = max(gauge.max, g["max"])
                gauge.samples += g["samples"]
        for name, h in doc.get("histograms", {}).items():
            edges = tuple(float(e) for e in h.get("edges", ()))
            hist = self.histogram(name, edges=edges)
            if hist.edges != edges:
                raise ValueError(
                    f"histogram {name!r}: cannot merge mismatched edges "
                    f"{edges!r} into {hist.edges!r}"
                )
            for i, c in enumerate(h.get("counts", ())):
                hist.counts[i] += c
            if h.get("count"):
                hist.count += h["count"]
                hist.sum += h["sum"]
                hist.min = min(hist.min, h["min"])
                hist.max = max(hist.max, h["max"])
            sketch_doc = h.get("sketch")
            if sketch_doc is not None:
                hist.sketch.merge_dict(sketch_doc)
            for rank_str, rc in h.get("per_rank", {}).items():
                rank = into_rank if into_rank is not None else int(rank_str)
                hist._rank_count[rank] += rc["count"]
                hist._rank_sum[rank] += rc["sum"]


def _bucket_quantile(
    edges: tuple[float, ...], counts: list[int], count: int, q: float,
    overflow_value: float,
) -> float:
    """Quantile over one bucket-count vector (Histogram.quantile's rule)."""
    if count == 0:
        return 0.0
    target = q * count
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target and c:
            return edges[i] if i < len(edges) else overflow_value
    return overflow_value


class RollingWindows:
    """Windowed histogram time series over a :class:`MetricsRegistry`.

    The registry keeps *cumulative* distributions; this class snapshots
    them at a fixed virtual-time ``interval`` and emits the per-window
    *delta* — count, sum, mean, and sketch-resolution p50/p95/p99 (see
    :class:`QuantileSketch`; within relative error ``alpha`` rather than
    3-buckets-per-decade edge resolution) — as a time series.  ``roll(now)`` must be called (by the recorder's metric
    hooks) before each observation is recorded, so a window ``[t0, t1)``
    holds exactly the observations whose virtual timestamps fall inside
    it.  Windows with no observations are skipped; boundaries depend
    only on virtual time, so the series is deterministic.

    The per-window p99 of, say, ``steal_latency`` is the SLO substrate
    the open-loop serving scenario needs (ROADMAP item 3): a tail
    spike is visible in its window rather than diluted into the
    whole-run distribution.
    """

    def __init__(self, registry: MetricsRegistry, interval: float) -> None:
        if interval <= 0:
            raise ValueError("window interval must be > 0")
        self.registry = registry
        self.interval = float(interval)
        self.windows: list[dict] = []
        self._t0 = 0.0
        self._last = 0.0
        # name -> (counts copy, count, sum) at the last window boundary
        self._snap: dict[str, tuple[list[int], int, float]] = {}
        # name -> sketch snapshot at the last window boundary
        self._sketch_snap: dict[str, tuple[dict[int, int], int, int]] = {}
        self._finalized = False

    def roll(self, now: float) -> None:
        """Close every window that ends at or before ``now``."""
        if now > self._last:
            self._last = now
        while now >= self._t0 + self.interval:
            self._close_window(self._t0 + self.interval)

    def _close_window(self, t1: float) -> None:
        histograms: dict[str, dict] = {}
        for name in sorted(self.registry.histograms):
            h = self.registry.histograms[name]
            prev = self._snap.get(name)
            prev_counts, prev_count, prev_sum = (
                prev if prev is not None else ([0] * len(h.counts), 0, 0.0)
            )
            dcount = h.count - prev_count
            if dcount:
                dsum = h.sum - prev_sum
                dsketch = h.sketch.delta(self._sketch_snap.get(name, ({}, 0, 0)))
                if dsketch.count == dcount:
                    p50, p95, p99 = (dsketch.quantile(q) for q in (0.50, 0.95, 0.99))
                else:
                    # Registries merged from pre-sketch documents can have
                    # sketch counts lagging bucket counts; fall back to
                    # bucket-edge resolution rather than report a quantile
                    # over a partial sketch.
                    dcounts = [c - p for c, p in zip(h.counts, prev_counts)]
                    p50 = _bucket_quantile(h.edges, dcounts, dcount, 0.50, h.max)
                    p95 = _bucket_quantile(h.edges, dcounts, dcount, 0.95, h.max)
                    p99 = _bucket_quantile(h.edges, dcounts, dcount, 0.99, h.max)
                histograms[name] = {
                    "count": dcount,
                    "sum": dsum,
                    "mean": dsum / dcount,
                    "p50": p50,
                    "p95": p95,
                    "p99": p99,
                }
            self._snap[name] = (list(h.counts), h.count, h.sum)
            self._sketch_snap[name] = h.sketch.snapshot()
        if histograms:
            self.windows.append({"t0": self._t0, "t1": t1, "histograms": histograms})
        self._t0 = t1

    def _has_delta(self) -> bool:
        for name, h in self.registry.histograms.items():
            prev = self._snap.get(name)
            if h.count != (prev[1] if prev is not None else 0):
                return True
        return False

    def finalize(self, t_end: float | None = None) -> None:
        """Close the trailing (possibly partial) window (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        end = self._last if t_end is None else max(t_end, self._last)
        while end >= self._t0 + self.interval:
            self._close_window(self._t0 + self.interval)
        if self._has_delta():
            self._close_window(max(end, self._t0))

    def to_dict(self) -> dict:
        """JSON-ready view: the interval plus the non-empty window series."""
        return {"interval": self.interval, "series": list(self.windows)}
