#!/usr/bin/env python3
"""Phase-based task parallelism with multiple collections (§3.1).

The paper: "In situations where tasks are spawned in phases, multiple
task collections can be used and processed in sequence ... multiple task
collections may be added to while one is being processed."  This example
runs a two-phase pipeline — phase 1 tasks produce inputs for phase 2
tasks in a *different* collection while phase 1 is still being processed
— and then reuses the first collection via ``tc_reset`` for a third
phase.

Run:
    python examples/phased_computation.py [nprocs]
"""

import sys
import threading

from repro.core import SciotoConfig, Task, TaskCollection
from repro.sim.engine import run_spmd

WIDTH = 24  # tasks per phase

_log_lock = threading.Lock()
phase_log: list[tuple[str, int, int]] = []  # (phase, item, rank)


def main(proc):
    tc_a = TaskCollection.create(proc, task_size=64)
    tc_b = TaskCollection.create(proc, task_size=64)

    def produce(tc, task):
        tc.proc.compute(3e-6)
        with _log_lock:
            phase_log.append(("produce", task.body, tc.rank))
        # spawn the consumer into the *other* collection mid-phase,
        # placed at a hashed rank to exercise remote adds
        dest = (task.body * 7) % tc.nprocs
        tc_b.add(Task(callback=h_consume, body=task.body * 10), rank=dest)

    def consume(tc, task):
        tc.proc.compute(2e-6)
        with _log_lock:
            phase_log.append(("consume", task.body, tc.rank))

    def finale(tc, task):
        with _log_lock:
            phase_log.append(("finale", task.body, tc.rank))

    h_produce = tc_a.register(produce)
    h_finale = tc_a.register(finale)
    h_consume = tc_b.register(consume)

    if proc.rank == 0:
        for i in range(WIDTH):
            tc_a.add(Task(callback=h_produce, body=i))
    stats1 = tc_a.process()   # phase 1 (spawns phase 2 work as it runs)
    stats2 = tc_b.process()   # phase 2
    tc_a.reset()              # reuse collection A for phase 3
    if proc.rank == 0:
        for i in range(WIDTH):
            tc_a.add(Task(callback=h_finale, body=i), rank=i % proc.nprocs)
    stats3 = tc_a.process()
    return (stats1.tasks_executed, stats2.tasks_executed, stats3.tasks_executed)


if __name__ == "__main__":
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    sim = run_spmd(nprocs, main, seed=0)
    per_phase = [sum(r[i] for r in sim.returns) for i in range(3)]
    print(f"three phases over {nprocs} ranks: tasks per phase = {per_phase}")
    produced = sorted(b for ph, b, _ in phase_log if ph == "produce")
    consumed = sorted(b for ph, b, _ in phase_log if ph == "consume")
    assert per_phase == [WIDTH, WIDTH, WIDTH]
    assert consumed == [10 * b for b in produced]
    print("every produced item was consumed exactly once:",
          consumed == [10 * i for i in range(WIDTH)])
    print(f"virtual time: {sim.elapsed * 1e6:.1f} us")
