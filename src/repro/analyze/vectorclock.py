"""Vector clocks: the partial order underlying happens-before analysis.

One :class:`VectorClock` per rank tracks how much of every other rank's
history the rank has (transitively) observed through synchronization.
Two accesses are ordered iff the later one's clock dominates the
earlier one's component for the earlier rank; otherwise they are
concurrent — and, if they conflict on the same shared region, a race.
"""

from __future__ import annotations

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-width vector clock over ``nprocs`` ranks."""

    __slots__ = ("c",)

    def __init__(self, nprocs: int, init: list[int] | None = None) -> None:
        self.c = list(init) if init is not None else [0] * nprocs

    def copy(self) -> "VectorClock":
        return VectorClock(len(self.c), self.c)

    def tick(self, rank: int) -> None:
        """Advance this rank's own component (a new local epoch)."""
        self.c[rank] += 1

    def join(self, other: "VectorClock") -> None:
        """Merge ``other`` into this clock (component-wise max)."""
        c, o = self.c, other.c
        for i in range(len(c)):
            if o[i] > c[i]:
                c[i] = o[i]

    def ordered_before(self, rank: int, other: "VectorClock") -> bool:
        """True if an event stamped with this clock on ``rank``
        happens-before an event stamped with ``other`` (on any rank).

        The standard epoch test: the later clock has observed the
        earlier rank's history up to and including the earlier event.
        """
        return self.c[rank] <= other.c[rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{self.c!r}"
