"""Figure 6: SCF & TCE raw runtimes, Scioto vs Original."""

from repro.bench.figure56 import run_figure56
from repro.bench.harness import scale
from repro.bench.report import render


def test_figure6_runtime(benchmark):
    result = benchmark.pedantic(run_figure56, args=(scale(),), rounds=1, iterations=1)
    runtimes = [s for s in result.series if s.label.endswith("runtime")]
    view = type(result)(experiment="figure6 (runtime)", series=runtimes,
                        notes=result.notes)
    print("\n" + render(view, fmt="{:.4g}"))
    for s in runtimes:
        xs = sorted(s.xs)
        # runtimes fall monotonically-ish with process count (paper's
        # log-log falling lines); allow a 10% wobble between steps
        for a, b in zip(xs, xs[1:]):
            assert s.y_at(b) < 1.1 * s.y_at(a), (s.label, a, b)
    big = max(runtimes[0].xs)
    assert result.get("TCE-runtime").y_at(big) < result.get("TCE-Original-runtime").y_at(big)
