"""Host-level split job deques — the paper's §5 queue, dogfooded.

Each fleet worker owns one :class:`WorkerDeque`, the meta-scheduler's
analogue of the simulated runtime's :class:`repro.core.queue.SplitQueue`:
a job list split into a *private* portion (head side — what the worker
will run next, touched only by its own dispatch path) and a *shared*
portion (tail side — what thieves may take).  The owner moves jobs
across the split with the same release/reacquire discipline:

* **release** — when the private portion holds surplus beyond
  ``release_threshold``, the surplus spills to the shared portion,
  making it stealable.
* **reacquire** — when the private portion drains, the owner reclaims
  half of the shared portion before looking for victims.
* **steal-half** — a thief takes ``ceil(shared/2)`` jobs from the tail,
  the paper's chunked steal: one migration halves the imbalance
  instead of trickling single jobs.

Everything runs in the scheduler parent (dispatch is single-threaded),
so the split needs no locks — what it preserves is the *policy*: the
private portion bounds how much locality a steal can destroy, and
steal-half bounds how many steals a rebalance needs.  Counters mirror
the simulated queue's (``release_ops``/``reacquire_ops``/``steals``)
so fleet metrics read like runtime metrics.

Victim selection is *neighbor-first* (Suksompong/Leiserson/Schardl's
localized stealing): a thief probes victims in increasing ring distance
(w+1, w-1, w+2, w-2, ...), so rebalancing traffic stays local and the
steal path degrades gracefully as the fleet widens.
"""

from __future__ import annotations

# The scheduler parent is single-threaded: every deque mutation happens
# on one thread, so RPR001's lock-before-shared-mutation rule (written
# for the *simulated* queue) does not apply at this layer.
# repro: lint-disable-file=RPR001

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.jobs import Job

__all__ = ["WorkerDeque", "neighbor_order"]


def neighbor_order(thief: int, nworkers: int) -> list[int]:
    """Victim candidates for ``thief``, nearest ring distance first.

    At equal distance the right neighbour (w+d) is probed before the
    left (w-d), matching the ring selector's direction in
    :mod:`repro.core.stealing`.
    """
    order = []
    for d in range(1, nworkers):
        for cand in ((thief + d) % nworkers, (thief - d) % nworkers):
            if cand != thief and cand not in order:
                order.append(cand)
    return order


class WorkerDeque:
    """One worker's split job queue inside the fleet scheduler."""

    def __init__(self, owner: int, release_threshold: int = 2) -> None:
        if release_threshold < 1:
            raise ValueError("release_threshold must be >= 1")
        self.owner = owner
        self.release_threshold = release_threshold
        # Index 0 is the head (next to run locally); steals take from
        # the tail of the shared portion, i.e. the jobs the owner would
        # reach last — the same affinity discipline as SplitQueue.
        self._private: list["Job"] = []
        self._shared: list["Job"] = []
        self.release_ops = 0
        self.reacquire_ops = 0
        self.steals_suffered = 0
        self.jobs_stolen_away = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def size(self) -> int:
        return len(self._private) + len(self._shared)

    def private_size(self) -> int:
        return len(self._private)

    def shared_size(self) -> int:
        return len(self._shared)

    def empty(self) -> bool:
        return not self._private and not self._shared

    # ------------------------------------------------------------------ #
    # Owner operations
    # ------------------------------------------------------------------ #
    def push(self, job: "Job") -> None:
        """Append ``job`` at the private tail, then release surplus."""
        self._private.append(job)
        self._release_surplus()

    def push_all(self, jobs: list["Job"]) -> None:
        self._private.extend(jobs)
        self._release_surplus()

    def _release_surplus(self) -> None:
        """Spill private surplus beyond the threshold to the shared tail."""
        surplus = len(self._private) - self.release_threshold
        if surplus > 0:
            self._shared.extend(self._private[-surplus:])
            del self._private[-surplus:]
            self.release_ops += 1

    def _reacquire(self) -> None:
        """Reclaim half the shared portion when the private side drains."""
        if not self._shared:
            return
        k = max(1, len(self._shared) // 2)
        self._private.extend(self._shared[:k])
        del self._shared[:k]
        self.reacquire_ops += 1

    def pop(self) -> "Job | None":
        """Owner's next job (head side), reacquiring across the split."""
        if not self._private:
            self._reacquire()
        if self._private:
            return self._private.pop(0)
        return None

    # ------------------------------------------------------------------ #
    # Thief operations
    # ------------------------------------------------------------------ #
    def steal_half(self) -> list["Job"]:
        """Take ``ceil(shared/2)`` jobs from the shared tail.

        Returns the stolen chunk (possibly empty).  Only the shared
        portion is stealable: the private portion stays with its owner,
        exactly as in the simulated protocol.
        """
        n = len(self._shared)
        if n == 0:
            return []
        k = (n + 1) // 2
        chunk = self._shared[-k:]
        del self._shared[-k:]
        self.steals_suffered += 1
        self.jobs_stolen_away += k
        return chunk
