"""Tests for the UTS benchmark: tree determinism and parallel correctness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.uts import (
    UTSParams,
    count_tree,
    root_node,
    run_uts_mpi,
    run_uts_scioto,
)
from repro.apps.uts.tree import children_of, num_children
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster

SMALL = UTSParams(b0=4.0, gen_mx=8, root_seed=6)  # a few hundred nodes


class TestTree:
    def test_tree_is_deterministic(self):
        a = count_tree(SMALL)
        b = count_tree(SMALL)
        assert (a.nodes, a.leaves, a.max_depth) == (b.nodes, b.leaves, b.max_depth)
        assert a.nodes > 50

    def test_children_deterministic_and_distinct(self):
        root = root_node(UTSParams(b0=8.0, root_seed=17))
        kids = children_of(UTSParams(b0=8.0, root_seed=17), root)
        assert len({k.digest for k in kids}) == len(kids)
        assert all(k.depth == 1 for k in kids)

    def test_geometric_depth_bounded(self):
        p = UTSParams(b0=4.0, gen_mx=5, root_seed=17)
        assert count_tree(p).max_depth <= 5

    def test_different_seeds_different_trees(self):
        a = count_tree(UTSParams(gen_mx=8, root_seed=1))
        b = count_tree(UTSParams(gen_mx=8, root_seed=2))
        assert a.nodes != b.nodes

    def test_binomial_tree(self):
        p = UTSParams(tree_type="binomial", b0=8, q=0.12, m=4, root_seed=3)
        stats = count_tree(p, max_nodes=100_000)
        assert stats.nodes >= 9  # root + b0 children at least
        assert stats.leaves > 0

    def test_binomial_supercritical_rejected(self):
        with pytest.raises(ValueError, match="supercritical"):
            UTSParams(tree_type="binomial", q=0.3, m=4)

    def test_unknown_tree_type_rejected(self):
        with pytest.raises(ValueError):
            UTSParams(tree_type="fibonacci")

    def test_max_nodes_guard(self):
        with pytest.raises(ValueError, match="max_nodes"):
            count_tree(UTSParams(b0=4.0, gen_mx=14, root_seed=17), max_nodes=100)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_leaves_consistent_with_nodes(self, seed):
        p = UTSParams(b0=3.0, gen_mx=6, root_seed=seed)
        stats = count_tree(p, max_nodes=50_000)
        assert 1 <= stats.leaves <= stats.nodes

    def test_num_children_zero_beyond_gen_mx(self):
        p = UTSParams(b0=4.0, gen_mx=3)
        deep = root_node(p)
        deep = type(deep)(digest=deep.digest, depth=3)
        assert num_children(p, deep) == 0


class TestParallelUTS:
    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_scioto_counts_match_sequential(self, nprocs):
        ref = count_tree(SMALL)
        r = run_uts_scioto(nprocs, SMALL, seed=2, max_events=3_000_000)
        assert (r.stats.nodes, r.stats.leaves, r.stats.max_depth) == (
            ref.nodes,
            ref.leaves,
            ref.max_depth,
        )

    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_mpi_counts_match_sequential(self, nprocs):
        ref = count_tree(SMALL)
        r = run_uts_mpi(nprocs, SMALL, seed=2, max_events=3_000_000)
        assert (r.stats.nodes, r.stats.leaves, r.stats.max_depth) == (
            ref.nodes,
            ref.leaves,
            ref.max_depth,
        )

    def test_binomial_parallel(self):
        p = UTSParams(tree_type="binomial", b0=12, q=0.12, m=4, root_seed=5)
        ref = count_tree(p, max_nodes=100_000)
        r = run_uts_scioto(4, p, seed=0, max_events=5_000_000)
        assert r.stats.nodes == ref.nodes

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000), nprocs=st.integers(2, 6))
    def test_scioto_exact_under_random_seeds(self, seed, nprocs):
        ref = count_tree(SMALL)
        r = run_uts_scioto(nprocs, SMALL, seed=seed, max_events=3_000_000)
        assert r.stats.nodes == ref.nodes

    def test_no_split_config_still_correct(self):
        ref = count_tree(SMALL)
        r = run_uts_scioto(
            4, SMALL, seed=1, config=SciotoConfig(split_queues=False),
            max_events=5_000_000,
        )
        assert r.stats.nodes == ref.nodes

    def test_heterogeneous_machine_faster_ranks_do_more(self):
        big = UTSParams(b0=4.0, gen_mx=10, root_seed=17)
        r = run_uts_scioto(
            4, big, machine=heterogeneous_cluster(4), seed=1, max_events=10_000_000
        )
        # Opteron ranks (even) are ~1.5x faster; with good load balancing
        # they should execute measurably more tasks than Xeon ranks (odd).
        fast = r.per_rank[0].tasks_executed + r.per_rank[2].tasks_executed
        slow = r.per_rank[1].tasks_executed + r.per_rank[3].tasks_executed
        assert fast > slow * 1.15

    def test_throughput_and_steals_reported(self):
        r = run_uts_scioto(3, SMALL, seed=4, max_events=3_000_000)
        assert r.throughput > 0
        assert r.elapsed > 0
        assert r.total_steals >= 1
