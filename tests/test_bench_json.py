"""The machine-readable bench record (``BENCH_sim.json``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import BENCH_SCHEMA, validate_bench_json, write_bench_json
from repro.bench.report import per_rank_table
from repro.core.stats import ProcessStats
from repro.util.records import Series, SweepResult


def _sweep():
    s = Series(label="scioto", unit="Mnodes/s")
    s.add(2, 1.5)
    s.add(4, 2.9)
    return SweepResult(experiment="figure7", series=[s], notes=["synthetic"])


def test_write_then_validate_roundtrip(tmp_path):
    path = write_bench_json([(_sweep(), 1.25)], tmp_path / "BENCH_sim.json", "quick")
    doc = json.loads(path.read_text())
    validate_bench_json(doc)  # must not raise
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["scale"] == "quick"
    (exp,) = doc["experiments"]
    assert exp["experiment"] == "figure7"
    assert exp["wall_seconds"] == 1.25
    assert exp["series"][0] == {
        "label": "scioto",
        "unit": "Mnodes/s",
        "xs": [2, 4],
        "ys": [1.5, 2.9],
    }
    assert exp["notes"] == ["synthetic"]


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        (lambda d: d.update(schema="bogus/9"), "schema"),
        (lambda d: d.update(scale="huge"), "scale"),
        (lambda d: d.update(experiments="nope"), "list"),
        (lambda d: d["experiments"][0].update(experiment=""), "name"),
        (lambda d: d["experiments"][0].update(wall_seconds=-1.0), "wall_seconds"),
        (
            lambda d: d["experiments"][0]["series"][0]["xs"].append(99),
            "lengths differ",
        ),
    ],
)
def test_validate_rejects_malformed_documents(tmp_path, mutation, fragment):
    path = write_bench_json([(_sweep(), 0.5)], tmp_path / "b.json", "quick")
    doc = json.loads(path.read_text())
    mutation(doc)
    with pytest.raises(ValueError, match=fragment):
        validate_bench_json(doc)


def test_bench_cli_writes_record(tmp_path):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_sim.json"
    assert main(["--only", "table1", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    validate_bench_json(doc)
    assert [e["experiment"] for e in doc["experiments"]] == ["table1"]
    assert doc["experiments"][0]["wall_seconds"] > 0


def test_process_stats_to_dict_includes_derived_fields():
    st = ProcessStats(rank=1, tasks_executed=7, time_total=4.0, time_working=3.0)
    d = st.to_dict()
    assert d["rank"] == 1 and d["tasks_executed"] == 7
    assert d["time_overhead"] == pytest.approx(1.0)
    assert d["efficiency"] == pytest.approx(0.75)
    assert "extra" not in d  # folded into the obs metrics registry


def test_per_rank_table_renders_stats():
    stats = [
        ProcessStats(rank=0, tasks_executed=10, time_total=2.0, time_working=1.0),
        ProcessStats(rank=1, tasks_executed=3, time_total=2.0, time_working=0.5),
    ]
    table = per_rank_table(stats, title="demo")
    assert "demo" in table
    assert "efficiency" in table
    assert "0.500" in table and "0.250" in table
