"""Tests for the split task queue: affinity ordering, split moves, stealing."""

from __future__ import annotations

import pytest

from repro.core.config import SciotoConfig
from repro.core.queue import SplitQueue
from repro.core.task import Task
from repro.sim.engine import Engine
from repro.sim.counters import Counters
from repro.util.errors import TaskCollectionError


def _queue_env(nprocs=2, capacity=100, cfg=None, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=500_000)
    cfg = cfg or SciotoConfig()
    counters = Counters()
    queues = [SplitQueue(eng, r, capacity, 64, cfg, counters) for r in range(nprocs)]
    return eng, queues, counters


def _run(eng, main, *args):
    eng.spawn_all(main, *args)
    return eng.run()


def _mk(i, affinity=0):
    return Task(callback=0, body=i, affinity=affinity, body_size=16)


class TestLocalOps:
    def test_push_pop_lifo_for_equal_affinity(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank != 0:
                return None
            q = queues[0]
            for i in range(5):
                q.push_local(proc, _mk(i))
            return [q.pop_local(proc).body for _ in range(5)]

        res = _run(eng, main)
        assert res.returns[0] == [4, 3, 2, 1, 0]

    def test_high_affinity_popped_first(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank != 0:
                return None
            q = queues[0]
            q.push_local(proc, _mk("low", affinity=0))
            q.push_local(proc, _mk("high", affinity=10))
            q.push_local(proc, _mk("mid", affinity=5))
            return [q.pop_local(proc).body for _ in range(3)]

        res = _run(eng, main)
        assert res.returns[0] == ["high", "mid", "low"]

    def test_pop_empty_returns_none(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            return queues[proc.rank].pop_local(proc)

        res = _run(eng, main)
        assert res.returns == [None, None]

    def test_capacity_overflow_raises(self):
        eng, queues, _ = _queue_env(capacity=3)

        def main(proc):
            if proc.rank == 0:
                for i in range(4):
                    queues[0].push_local(proc, _mk(i))

        with pytest.raises(TaskCollectionError, match="overflow"):
            _run(eng, main)

    def test_non_owner_local_ops_rejected(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank == 1:
                queues[0].push_local(proc, _mk(0))

        with pytest.raises(TaskCollectionError, match="non-owner"):
            _run(eng, main)

    def test_release_moves_surplus_to_shared(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank != 0:
                return None
            q = queues[0]
            for i in range(8):
                q.push_local(proc, _mk(i))
            return (q.private_size(), q.shared_size())

        res = _run(eng, main)
        priv, shr = res.returns[0]
        assert shr > 0, "surplus work must be released for stealing"
        assert priv + shr == 8

    def test_reacquire_reclaims_shared_work(self):
        eng, queues, counters = _queue_env()

        def main(proc):
            if proc.rank != 0:
                return None
            q = queues[0]
            for i in range(8):
                q.push_local(proc, _mk(i))
            got = [q.pop_local(proc) for _ in range(8)]
            return [t.body for t in got]

        res = _run(eng, main)
        assert sorted(res.returns[0]) == list(range(8))
        assert counters.get(0, "reacquire_ops") > 0


class TestStealing:
    def test_steal_takes_lowest_affinity_tail(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            q = queues[0]
            if proc.rank == 0:
                for i in range(6):
                    q.push_local(proc, _mk(i, affinity=i))
                proc.sleep(200e-6 - proc.now)
                # shared drained by the first steal; this push releases more
                q.push_local(proc, _mk(6, affinity=6))
                proc.sleep(400e-6 - proc.now)
                return sorted(t.affinity for t in q.drain())
            proc.sleep(100e-6)
            first = q.steal_from(proc, 2)  # drains the shared portion
            proc.sleep(300e-6 - proc.now)
            second = q.steal_from(proc, 2)
            return (sorted(t.affinity for t in first), sorted(t.affinity for t in second))

        res = _run(eng, main)
        first, second = res.returns[1]
        remaining = res.returns[0]
        assert len(first) >= 1
        assert len(second) == 2
        assert max(second) <= min(remaining), "thief must get the lowest-affinity tasks"

    def test_steal_from_empty_returns_nothing(self):
        eng, queues, counters = _queue_env()

        def main(proc):
            if proc.rank == 1:
                return queues[0].steal_from(proc, 5)
            return None

        res = _run(eng, main)
        assert res.returns[1] == []
        assert counters.get(1, "steal_attempt") == 1
        assert counters.get(1, "steal_success") == 0

    def test_steal_respects_chunk_size(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            q = queues[0]
            if proc.rank == 0:
                for i in range(20):
                    q.push_local(proc, _mk(i))
                proc.sleep(200e-6 - proc.now)
                q.push_local(proc, _mk(99))  # releases half of private
                proc.sleep(500e-6 - proc.now)
                return None
            proc.sleep(100e-6)
            q.steal_from(proc, 10)  # drain initial shared
            proc.sleep(300e-6 - proc.now)
            assert q.shared_size() >= 5
            return len(q.steal_from(proc, 3))

        res = _run(eng, main)
        assert res.returns[1] == 3

    def test_steal_only_touches_shared_portion(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            q = queues[0]
            if proc.rank == 0:
                q.push_local(proc, _mk(0))  # single task stays private
                proc.sleep(200e-6)
                return q.size()
            proc.sleep(50e-6)
            return len(q.steal_from(proc, 10))

        res = _run(eng, main)
        assert res.returns[1] == 0, "private-only work must not be stealable"
        assert res.returns[0] == 1

    def test_self_steal_rejected(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank == 0:
                queues[0].steal_from(proc, 1)

        with pytest.raises(TaskCollectionError, match="steal from itself"):
            _run(eng, main)

    def test_absorb_stolen_preserves_tasks_and_order(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank != 1:
                return None
            q = queues[1]
            q.absorb_stolen(proc, [_mk("a", 5), _mk("b", 1)])
            return [q.pop_local(proc).body for _ in range(2)]

        res = _run(eng, main)
        assert res.returns[1] == ["a", "b"]

    def test_remote_add_lands_in_shared_portion(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            q = queues[0]
            if proc.rank == 1:
                q.add_remote(proc, _mk("gift"))
                return None
            proc.sleep(100e-6)
            return (q.shared_size(), q.pop_local(proc).body)

        res = _run(eng, main)
        assert res.returns[0] == (1, "gift")

    def test_remote_add_by_owner_rejected(self):
        eng, queues, _ = _queue_env()

        def main(proc):
            if proc.rank == 0:
                queues[0].add_remote(proc, _mk(0))

        with pytest.raises(TaskCollectionError, match="use push_local"):
            _run(eng, main)


class TestCostModel:
    def test_local_ops_cheaper_than_remote(self):
        eng, queues, _ = _queue_env()
        costs = {}

        def main(proc):
            q = queues[0]
            if proc.rank == 0:
                t0 = proc.now
                q.push_local(proc, _mk(0))
                costs["local_push"] = proc.now - t0
                proc.sleep(500e-6)
            else:
                proc.sleep(100e-6)
                t0 = proc.now
                q.add_remote(proc, _mk(1))
                costs["remote_add"] = proc.now - t0

        _run(eng, main)
        assert costs["local_push"] * 10 < costs["remote_add"]

    def test_no_split_owner_blocks_behind_thief(self):
        """In locked (no-split) mode, the owner's local pop must wait for an
        in-progress steal — the contention §5 describes."""

        def elapsed_pop(cfg):
            eng, queues, _ = _queue_env(cfg=cfg)
            out = {}

            def main(proc):
                q = queues[0]
                if proc.rank == 0:
                    for i in range(4):
                        q.push_local(proc, _mk(i))
                    proc.sleep(100e-6 - proc.now)  # pop exactly at t=100us
                    t0 = proc.now
                    q.pop_local(proc)
                    out["pop"] = proc.now - t0
                else:
                    # model a thief holding the queue mutex across t=100us
                    proc.sleep(80e-6)
                    q.mutex.acquire(proc)
                    proc.sleep(30e-6)
                    q.mutex.release(proc)

            _run(eng, main)
            return out["pop"]

        locked = elapsed_pop(SciotoConfig(split_queues=False))
        split = elapsed_pop(SciotoConfig(split_queues=True))
        assert locked > 10e-6, locked
        assert split < 1e-6, split
