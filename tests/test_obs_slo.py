"""SLO engine: spec validation, burn-rate algebra, and the CI gate CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.slo import (
    SLO_SCHEMA,
    AlertRule,
    SloSpec,
    evaluate,
    load_spec,
    render_report,
)


def write_spec(tmp_path, slos, name="spec.json"):
    p = tmp_path / name
    p.write_text(json.dumps({"schema": SLO_SCHEMA, "slos": slos}))
    return p


def frame(value, metric="steal_latency", quantity="p99", label="run"):
    return {
        "kind": "frame", "label": label, "ev_s": 1000.0,
        "counters": {"steals": 4.0},
        "histograms": {metric: {quantity: value, "count": 1}},
    }


VALID = {
    "name": "tail",
    "objective": "steal_latency:p99",
    "threshold": 1e-3,
    "target": 0.9,
    "alerts": [{"long": 4, "short": 2, "factor": 2.0}],
}


class TestLoadSpec:
    def test_valid_spec_loads(self, tmp_path):
        (spec,) = load_spec(write_spec(tmp_path, [VALID]))
        assert spec.name == "tail" and spec.direction == "lower"
        assert spec.alerts == (AlertRule(4, 2, 2.0),)

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": "nope/1", "slos": [VALID]}))
        with pytest.raises(ValueError, match="unsupported"):
            load_spec(p)

    @pytest.mark.parametrize("key", ["name", "objective", "threshold", "target"])
    def test_missing_required_key_rejected(self, tmp_path, key):
        raw = {k: v for k, v in VALID.items() if k != key}
        with pytest.raises(ValueError, match=f"missing '{key}'"):
            load_spec(write_spec(tmp_path, [raw]))

    @pytest.mark.parametrize(
        "patch,match",
        [
            ({"direction": "sideways"}, "direction"),
            ({"target": 0.0}, "target"),
            ({"target": 1.5}, "target"),
            ({"objective": "steal_latency"}, "objective"),
            ({"objective": "steal_latency:p42"}, "objective"),
            ({"alerts": [{"long": 2, "short": 4, "factor": 1.0}]}, "short lookback"),
            ({"alerts": [{"long": 2, "factor": 1.0}]}, "missing 'short'"),
        ],
    )
    def test_invalid_fields_rejected(self, tmp_path, patch, match):
        with pytest.raises(ValueError, match=match):
            load_spec(write_spec(tmp_path, [{**VALID, **patch}]))

    def test_empty_spec_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no SLOs"):
            load_spec(write_spec(tmp_path, []))

    @pytest.mark.parametrize("objective", ["ev_s", "counter:steals", "h:mean"])
    def test_pseudo_objectives_accepted(self, tmp_path, objective):
        (spec,) = load_spec(write_spec(tmp_path, [{**VALID, "objective": objective}]))
        assert spec.objective == objective


class TestEvaluate:
    def test_compliance_counts_bad_frames(self):
        spec = SloSpec("s", "steal_latency:p99", threshold=1e-3, target=0.5)
        frames = [frame(1e-4), frame(2e-3), frame(5e-4), frame(9e-4)]
        (res,) = evaluate(frames, [spec])
        assert res.frames_scored == 4 and res.frames_bad == 1
        assert res.compliance == pytest.approx(0.75)
        assert res.met and not res.burning

    def test_frames_without_the_metric_are_skipped(self):
        spec = SloSpec("s", "wave_rtt:p95", threshold=1.0, target=0.9)
        (res,) = evaluate([frame(1e-4), frame(1e-4)], [spec])
        assert res.frames_scored == 0 and res.compliance is None
        assert res.met  # vacuously

    def test_higher_direction_flips_the_comparison(self):
        spec = SloSpec("s", "ev_s", threshold=500.0, target=0.9,
                       direction="higher")
        (res,) = evaluate([frame(0.0)], [spec])  # ev_s = 1000 >= 500: good
        assert res.frames_bad == 0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        rule = AlertRule(long=4, short=2, factor=2.0)
        spec = SloSpec("s", "steal_latency:p99", threshold=1e-3, target=0.9,
                       alerts=(rule,))
        # Last 4 frames: 2 bad; last 2 frames: 1 bad.  Budget = 0.1.
        frames = [frame(0.0), frame(2e-3), frame(0.0), frame(2e-3)]
        (res,) = evaluate(frames, [spec])
        ((_, long_burn, short_burn),) = res.burn_rates
        assert long_burn == pytest.approx(0.5 / 0.1)
        assert short_burn == pytest.approx(0.5 / 0.1)
        assert res.fired == [rule]

    def test_alert_needs_both_windows_burning(self):
        rule = AlertRule(long=4, short=2, factor=2.0)
        spec = SloSpec("s", "steal_latency:p99", threshold=1e-3, target=0.9,
                       alerts=(rule,))
        # Bad frames happened, but not recently: the short window is
        # clean, so the (stale) alert must not fire.
        frames = [frame(2e-3), frame(2e-3), frame(0.0), frame(0.0)]
        (res,) = evaluate(frames, [spec])
        assert res.fired == [] and not res.burning

    def test_target_one_means_any_bad_frame_burns(self):
        rule = AlertRule(long=2, short=1, factor=10.0)
        spec = SloSpec("s", "steal_latency:p99", threshold=1e-3, target=1.0,
                       alerts=(rule,))
        (res,) = evaluate([frame(2e-3), frame(2e-3)], [spec])
        ((_, long_burn, short_burn),) = res.burn_rates
        assert long_burn == float("inf") and short_burn == float("inf")
        assert res.burning and not res.met

    def test_label_filter(self):
        spec = SloSpec("s", "steal_latency:p99", threshold=1e-3, target=0.5)
        frames = [frame(2e-3, label="a"), frame(0.0, label="b")]
        (res,) = evaluate(frames, [spec], label="b")
        assert res.frames_scored == 1 and res.frames_bad == 0

    def test_render_report_states_verdicts(self):
        rule = AlertRule(2, 1, 0.5)
        specs = [
            SloSpec("good", "steal_latency:p99", threshold=1.0, target=0.9),
            SloSpec("bad", "steal_latency:p99", threshold=1e-9, target=1.0,
                    alerts=(rule,)),
        ]
        text = render_report(evaluate([frame(1e-4)], specs))
        assert "good: OK" in text
        assert "bad: BURNING" in text
        assert "FIRING" in text


class TestCli:
    @pytest.fixture()
    def feed(self, tmp_path):
        from repro.obs.__main__ import main

        path = tmp_path / "feed.jsonl"
        assert main(["run", "steals", "--live", str(path),
                     "--live-interval", "0.00005"]) == 0
        return path

    def test_passing_spec_exits_zero(self, tmp_path, feed, capsys):
        from repro.obs.__main__ import main

        spec = write_spec(tmp_path, [{
            "name": "lenient", "objective": "steal_fail_latency:p99",
            "threshold": 1.0, "target": 0.5,
            "alerts": [{"long": 4, "short": 2, "factor": 14.0}],
        }])
        assert main(["slo", str(feed), "--spec", str(spec),
                     "--fail-on-burn"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_burning_spec_exits_nonzero_only_with_flag(self, tmp_path, feed, capsys):
        from repro.obs.__main__ import main

        spec = write_spec(tmp_path, [{
            "name": "strict", "objective": "steal_fail_latency:p99",
            "threshold": 1e-12, "target": 1.0,
            "alerts": [{"long": 1, "short": 1, "factor": 0.5}],
        }])
        assert main(["slo", str(feed), "--spec", str(spec)]) == 0
        assert main(["slo", str(feed), "--spec", str(spec),
                     "--fail-on-burn"]) == 1
        err = capsys.readouterr().err
        assert "SLO FAILURE" in err
