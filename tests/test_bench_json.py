"""The machine-readable bench records (``BENCH_sim.json``, ``BENCH_wall.json``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import BENCH_SCHEMA, validate_bench_json, write_bench_json
from repro.bench.perf import (
    WALL_SCHEMA,
    measure_scenario,
    validate_wall_json,
    write_wall_json,
)
from repro.bench.report import per_rank_table
from repro.core.stats import ProcessStats
from repro.util.records import Series, SweepResult


def _sweep():
    s = Series(label="scioto", unit="Mnodes/s")
    s.add(2, 1.5)
    s.add(4, 2.9)
    return SweepResult(experiment="figure7", series=[s], notes=["synthetic"])


def test_write_then_validate_roundtrip(tmp_path):
    path = write_bench_json([(_sweep(), 1.25)], tmp_path / "BENCH_sim.json", "quick")
    doc = json.loads(path.read_text())
    validate_bench_json(doc)  # must not raise
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["scale"] == "quick"
    (exp,) = doc["experiments"]
    assert exp["experiment"] == "figure7"
    assert exp["wall_seconds"] == 1.25
    assert exp["series"][0] == {
        "label": "scioto",
        "unit": "Mnodes/s",
        "xs": [2, 4],
        "ys": [1.5, 2.9],
    }
    assert exp["notes"] == ["synthetic"]


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        (lambda d: d.update(schema="bogus/9"), "schema"),
        (lambda d: d.update(scale="huge"), "scale"),
        (lambda d: d.update(experiments="nope"), "list"),
        (lambda d: d["experiments"][0].update(experiment=""), "name"),
        (lambda d: d["experiments"][0].update(wall_seconds=-1.0), "wall_seconds"),
        (
            lambda d: d["experiments"][0]["series"][0]["xs"].append(99),
            "lengths differ",
        ),
    ],
)
def test_validate_rejects_malformed_documents(tmp_path, mutation, fragment):
    path = write_bench_json([(_sweep(), 0.5)], tmp_path / "b.json", "quick")
    doc = json.loads(path.read_text())
    mutation(doc)
    with pytest.raises(ValueError, match=fragment):
        validate_bench_json(doc)


def test_bench_cli_writes_record(tmp_path):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_sim.json"
    assert main(["--only", "table1", "--json", str(out)]) == 0
    doc = json.loads(out.read_text())
    validate_bench_json(doc)
    assert [e["experiment"] for e in doc["experiments"]] == ["table1"]
    assert doc["experiments"][0]["wall_seconds"] > 0


def _wall_entry(**over):
    entry = {
        "scenario": "queue",
        "backend": "thread",
        "nprocs": 4,
        "seed": 0,
        "reps": 1,
        "events": 1000,
        "best_wall_s": 0.01,
        "mean_wall_s": 0.012,
        "events_per_sec": 100_000.0,
    }
    entry.update(over)
    return entry


def test_wall_write_then_validate_roundtrip(tmp_path):
    path = write_wall_json([_wall_entry()], tmp_path / "BENCH_wall.json")
    doc = json.loads(path.read_text())
    validate_wall_json(doc)  # must not raise
    assert doc["schema"] == WALL_SCHEMA
    assert doc["entries"][0]["events_per_sec"] == 100_000.0
    assert "python" in doc["host"]


def test_wall_write_preserves_committed_baselines(tmp_path):
    path = tmp_path / "BENCH_wall.json"
    baseline = _wall_entry(backend="seed-thread", events_per_sec=30_000.0)
    write_wall_json([_wall_entry()], path, baselines=[baseline])
    # Regeneration without an explicit baselines argument keeps them.
    write_wall_json([_wall_entry(events_per_sec=90_000.0)], path)
    doc = json.loads(path.read_text())
    assert doc["baselines"] == [baseline]
    assert doc["entries"][0]["events_per_sec"] == 90_000.0


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        (lambda d: d.update(schema="bogus/9"), "schema"),
        (lambda d: d.update(entries=[]), "non-empty"),
        (lambda d: d["entries"][0].update(scenario=""), "scenario"),
        (lambda d: d["entries"][0].update(events=0), "events"),
        (lambda d: d["entries"][0].update(events_per_sec=0.0), "events_per_sec"),
        (lambda d: d["entries"][0].update(best_wall_s=-1.0), "best_wall_s"),
    ],
)
def test_wall_validate_rejects_malformed_documents(tmp_path, mutation, fragment):
    path = write_wall_json([_wall_entry()], tmp_path / "w.json")
    doc = json.loads(path.read_text())
    mutation(doc)
    with pytest.raises(ValueError, match=fragment):
        validate_wall_json(doc)


def test_wall_measure_scenario_smoke():
    entry = measure_scenario("queue", "thread", reps=1)
    assert entry["events"] > 0
    assert entry["events_per_sec"] > 0
    assert entry["best_wall_s"] > 0


def test_wall_perf_cli_writes_record(tmp_path):
    from repro.bench.__main__ import main

    out = tmp_path / "BENCH_wall.json"
    code = main(
        ["perf", "--quick", "--only", "queue", "--backends", "thread",
         "--json", str(out)]
    )
    assert code == 0
    doc = json.loads(out.read_text())
    validate_wall_json(doc)
    assert doc["entries"][0]["scenario"] == "queue"
    assert doc["entries"][0]["backend"] == "thread"


def test_process_stats_to_dict_includes_derived_fields():
    st = ProcessStats(rank=1, tasks_executed=7, time_total=4.0, time_working=3.0)
    d = st.to_dict()
    assert d["rank"] == 1 and d["tasks_executed"] == 7
    assert d["time_overhead"] == pytest.approx(1.0)
    assert d["efficiency"] == pytest.approx(0.75)
    assert "extra" not in d  # folded into the obs metrics registry


def test_per_rank_table_renders_stats():
    stats = [
        ProcessStats(rank=0, tasks_executed=10, time_total=2.0, time_working=1.0),
        ProcessStats(rank=1, tasks_executed=3, time_total=2.0, time_working=0.5),
    ]
    table = per_rank_table(stats, title="demo")
    assert "demo" in table
    assert "efficiency" in table
    assert "0.500" in table and "0.250" in table
