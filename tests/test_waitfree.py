"""Tests for the wait-free steal protocol (§8 future-work extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.uts import UTSParams, count_tree, run_uts_scioto
from repro.core import SciotoConfig, Task, TaskCollection
from repro.core.queue import SplitQueue
from repro.core.task import Task as TaskT
from repro.sim.engine import Engine
from repro.sim.counters import Counters

WF = SciotoConfig(wait_free_steals=True)
SMALL = UTSParams(b0=4.0, gen_mx=8, root_seed=6)


class TestWaitFreeQueue:
    def test_steal_transfers_tasks(self):
        eng = Engine(2, max_events=500_000)
        q = SplitQueue(eng, 0, 1000, 32, WF, Counters())
        out = {}

        def main(proc):
            if proc.rank == 0:
                for i in range(8):
                    q.push_local(proc, TaskT(callback=0, body=i))
                proc.sleep(1.0 - proc.now)
                out["left"] = [t.body for t in q.drain()]
            else:
                proc.sleep(100e-6)
                out["stolen"] = [t.body for t in q.steal_from(proc, 3)]

        eng.spawn_all(main)
        eng.run()
        assert len(out["stolen"]) >= 1
        assert sorted(out["stolen"] + out["left"]) == list(range(8))

    def test_owner_never_blocks_behind_thief(self):
        """Unlike the locked queue, the owner's pop proceeds while a thief
        holds no lock — even mid-steal the mutex stays free."""
        eng = Engine(2, max_events=500_000)
        q = SplitQueue(eng, 0, 1000, 32, WF, Counters())
        out = {}

        def main(proc):
            if proc.rank == 0:
                for i in range(20):
                    q.push_local(proc, TaskT(callback=0, body=i))
                proc.sleep(100e-6 - proc.now)
                t0 = proc.now
                q.pop_local(proc)
                out["pop_cost"] = proc.now - t0
            else:
                proc.sleep(97e-6)  # steal in flight across t=100us
                q.steal_from(proc, 10)

        eng.spawn_all(main)
        eng.run()
        # the owner may serialize behind the thief's metadata *atomic*
        # (a few us), but never behind a whole locked steal (~20us+)
        assert out["pop_cost"] < 6e-6
        assert not q.mutex.locked()
        assert q.mutex.acquires == 0, "wait-free mode must never take the mutex"

    def test_empty_steal_returns_nothing(self):
        eng = Engine(2, max_events=500_000)
        q = SplitQueue(eng, 0, 1000, 32, WF, Counters())

        def main(proc):
            if proc.rank == 1:
                return q.steal_from(proc, 5)
            return None

        eng.spawn_all(main)
        res = eng.run()
        assert res.returns[1] == []


class TestWaitFreeEndToEnd:
    def test_uts_exact(self):
        ref = count_tree(SMALL)
        r = run_uts_scioto(4, SMALL, seed=3, config=WF, max_events=3_000_000)
        assert r.stats.nodes == ref.nodes
        assert r.total_steals > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2000), nprocs=st.integers(2, 6), chunk=st.integers(1, 6))
    def test_exactly_once_random(self, seed, nprocs, chunk):
        cfg = SciotoConfig(wait_free_steals=True, chunk_size=chunk)
        ran = []

        def main(proc):
            tc = TaskCollection.create(proc, config=cfg)

            def node(tc_, t):
                tc_.proc.compute(1e-6)
                ran.append(t.body)
                if t.body < 40:
                    tc_.add(Task(callback=h, body=2 * t.body + 1))
                    tc_.add(Task(callback=h, body=2 * t.body + 2))

            h = tc.register(node)
            if proc.rank == 0:
                tc.add(Task(callback=h, body=0))
            tc.process()

        eng = Engine(nprocs, seed=seed, max_events=3_000_000)
        eng.spawn_all(main)
        eng.run()
        assert sorted(ran) == sorted(set(ran))
        expected = {0}
        frontier = [0]
        while frontier:
            b = frontier.pop()
            if b < 40:
                for c in (2 * b + 1, 2 * b + 2):
                    expected.add(c)
                    frontier.append(c)
        assert set(ran) == expected

    def test_waitfree_remote_add(self):
        ran_on = []
        cfg = SciotoConfig(wait_free_steals=True, load_balancing=False)

        def main(proc):
            tc = TaskCollection.create(proc, config=cfg)
            h = tc.register(lambda tc_, t: ran_on.append(tc_.rank))
            if proc.rank == 0:
                for dest in range(proc.nprocs):
                    tc.add(Task(callback=h), rank=dest)
            tc.process()

        eng = Engine(4, max_events=2_000_000)
        eng.spawn_all(main)
        eng.run()
        assert sorted(ran_on) == [0, 1, 2, 3]

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(10))
    def test_waitfree_protocol_clean_under_random_schedules(self, seed):
        """Schedule sweep: the reservation-atomic steal path must preserve
        exactly-once and queue consistency under adversarial interleavings,
        not just the deterministic default schedule."""
        from repro.check.runner import run_once
        from repro.check.scenarios import make_scenario
        from repro.check.strategies import RandomWalk

        outcome = run_once(make_scenario("waitfree"), RandomWalk(seed=seed))
        assert outcome.error is None
        assert outcome.violations == []

    def test_waitfree_steal_cheaper_than_locked(self):
        """Cost comparison on one loaded queue (the A6 ablation's core)."""

        def steal_cost(cfg):
            eng = Engine(2, max_events=500_000)
            q = SplitQueue(eng, 0, 10_000, 960, cfg, Counters())
            out = {}

            def main(proc):
                if proc.rank == 0:
                    for i in range(200):
                        q.push_local(proc, TaskT(callback=0, body=i, body_size=960))
                    q._private, q._shared = [], q._private + q._shared
                    proc.sleep(1.0 - proc.now)
                else:
                    proc.sleep(0.5)
                    t0 = proc.now
                    for _ in range(10):
                        assert len(q.steal_from(proc, 10)) == 10
                    out["cost"] = (proc.now - t0) / 10

            eng.spawn_all(main)
            eng.run()
            return out["cost"]

        locked = steal_cost(SciotoConfig())
        waitfree = steal_cost(WF)
        assert waitfree < locked
