"""Wall-clock perf harness: events/second per scenario per backend.

Everything else in ``repro.bench`` measures *virtual* time — what the
simulated machine would do.  This module measures the *host*: how fast
the engine itself turns over scheduling events, which is what bounds the
paper-figure sweeps, the ``repro.check`` explorer, and the test suite.

``python -m repro.bench perf`` runs every perf scenario (the six
``repro.check`` scenarios plus the UTS/SCF/TCE application presets) on
every context-switch backend available in this environment and writes
``BENCH_wall.json`` (schema ``repro-bench-wall/1``) at the repo root,
so engine throughput is tracked commit to commit alongside the
virtual-time record ``BENCH_sim.json``.

Scenario runs go through :func:`repro.obs.scenarios.run_target` with
recording off, so the measured work is exactly what ``repro.obs
verify`` fingerprints — and since all backends produce bit-for-bit
identical results (``tests/test_sim_backends.py``), the per-backend
series differ *only* in switch mechanism.

The committed record also carries a ``baselines`` section — reference
measurements (e.g. the pre-redesign engine at its seed commit) that
regeneration preserves rather than re-measures, so speedup claims stay
anchored to the numbers they were made against.  ``--profile`` adds a
``notes.profile`` section: per-scenario host wall-time attribution by
runtime subsystem from the sampling self-profiler
(:mod:`repro.bench.selfprof`).  See ``docs/performance.md`` for how to
read the record.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any

from repro.obs.scenarios import run_target
from repro.sim.backends import available_backends
from repro.util.io import atomic_write_text

__all__ = [
    "WALL_SCHEMA",
    "PERF_SCENARIOS",
    "QUICK_SCENARIOS",
    "MICRO_BENCHMARKS",
    "measure_scenario",
    "measure_micro_switch",
    "run_micro",
    "run_perf",
    "write_wall_json",
    "validate_wall_json",
    "main",
]

#: Schema tag stamped into every ``BENCH_wall.json`` document.
WALL_SCHEMA = "repro-bench-wall/1"

#: Full scenario set: every check scenario plus the application presets.
PERF_SCENARIOS = (
    "queue",
    "queue-wf",
    "termination",
    "steals",
    "waitfree",
    "graph",
    "uts-tiny",
    "uts-small",
    "scf",
    "tce",
)

#: ``--quick`` subset: enough to validate the schema and every backend
#: without paying for the big presets (CI runs this).
QUICK_SCENARIOS = ("queue", "steals", "uts-tiny")

#: Microbenchmarks selectable with ``--micro``.
MICRO_BENCHMARKS = ("switch",)


def measure_scenario(
    name: str, backend: str, reps: int = 3, nprocs: int = 4, seed: int = 0,
    profile: bool = False, profile_interval: float = 0.001,
) -> dict[str, Any]:
    """Measure one scenario on one backend; return a record entry.

    Runs ``reps`` times and reports the best wall time (least
    interference from the host) alongside the mean.  Events/second uses
    the best run.  The run itself is virtual-time deterministic, so
    ``events`` is identical across reps and backends by construction.

    With ``profile=True`` an *extra*, untimed run executes under the
    sampling self-profiler (:mod:`repro.bench.selfprof`) and its
    subsystem attribution table rides along as ``entry["profile"]`` —
    kept out of the timed reps so sampling overhead never pollutes the
    recorded walls.
    """
    walls = []
    events = None
    for _ in range(reps):
        # Sanctioned wall-clock site: measuring host throughput is the
        # entire point of this harness.
        t0 = time.perf_counter()  # repro: lint-disable=RPR002
        run = run_target(name, nprocs=nprocs, seed=seed, record=False)
        walls.append(time.perf_counter() - t0)  # repro: lint-disable=RPR002
        if events is None:
            events = run.events
        elif events != run.events:
            raise RuntimeError(
                f"{name}/{backend}: event count changed across reps "
                f"({events} vs {run.events}); engine is nondeterministic"
            )
    best = min(walls)
    entry = {
        "scenario": name,
        "backend": backend,
        "nprocs": nprocs,
        "seed": seed,
        "reps": reps,
        "events": events,
        "best_wall_s": best,
        "mean_wall_s": sum(walls) / len(walls),
        "events_per_sec": events / best if best > 0 else 0.0,
    }
    if profile:
        from repro.bench.selfprof import SubsystemProfiler

        prof = SubsystemProfiler(interval=profile_interval).start()
        try:
            run_target(name, nprocs=nprocs, seed=seed, record=False)
        finally:
            entry["profile"] = prof.stop()
    return entry


def measure_micro_switch(
    backend: str, switches: int = 20000, reps: int = 3
) -> dict[str, Any]:
    """Measure the raw cost of one context switch on ``backend``.

    Two simulated processes ping-pong: each loop iteration advances the
    local clock by one microsecond and syncs, which always finds the
    peer globally earliest — so sync elision never fires and *every*
    event is a genuine handoff through the backend's switch mechanism.
    The reported ``ns_per_switch`` therefore prices one end-to-end
    scheduling event: heap push + pop, bookkeeping, and the context
    switch itself — a generator ``send`` on ``coro``, a kernel wakeup
    (or two semaphore round trips) on the thread backends.
    """
    from repro.sim.engine import Engine

    def micro_main(proc):
        for _ in range(switches):
            yield from proc.co_sleep(1e-6)

    walls = []
    events = None
    for _ in range(reps):
        engine = Engine(2, backend=backend)
        engine.spawn_all(micro_main)
        # Sanctioned wall-clock site (see measure_scenario).
        t0 = time.perf_counter()  # repro: lint-disable=RPR002
        engine.run()
        walls.append(time.perf_counter() - t0)  # repro: lint-disable=RPR002
        if events is None:
            events = engine.events
        elif events != engine.events:
            raise RuntimeError(
                f"micro-switch/{backend}: event count changed across reps "
                f"({events} vs {engine.events}); engine is nondeterministic"
            )
    best = min(walls)
    return {
        "scenario": "micro-switch",
        "backend": backend,
        "nprocs": 2,
        "seed": 0,
        "reps": reps,
        "events": events,
        "best_wall_s": best,
        "mean_wall_s": sum(walls) / len(walls),
        "events_per_sec": events / best if best > 0 else 0.0,
        "ns_per_switch": best / events * 1e9 if events else 0.0,
    }


def run_micro(
    backends: tuple[str, ...] | list[str] | None = None,
    switches: int = 20000,
    reps: int = 3,
    verbose: bool = True,
) -> list[dict[str, Any]]:
    """Measure the switch microbenchmark on every backend."""
    backends = tuple(backends) if backends is not None else available_backends()
    entries = []
    for backend in backends:
        entry = measure_micro_switch(backend, switches=switches, reps=reps)
        entries.append(entry)
        if verbose:
            print(
                f"  micro-switch [{backend:<10}] {entry['events']:>8} events  "
                f"best {entry['best_wall_s'] * 1e3:8.1f} ms  "
                f"{entry['ns_per_switch']:>8,.0f} ns/switch"
            )
    return entries


def run_perf(
    scenarios: tuple[str, ...] | list[str] = PERF_SCENARIOS,
    backends: tuple[str, ...] | list[str] | None = None,
    reps: int = 3,
    nprocs: int = 4,
    seed: int = 0,
    verbose: bool = True,
    profile: bool = False,
    profile_interval: float = 0.001,
) -> list[dict[str, Any]]:
    """Measure ``scenarios`` x ``backends`` and return record entries."""
    import os

    backends = tuple(backends) if backends is not None else available_backends()
    entries = []
    saved = os.environ.get("REPRO_SIM_BACKEND")
    try:
        for backend in backends:
            os.environ["REPRO_SIM_BACKEND"] = backend
            for name in scenarios:
                entry = measure_scenario(
                    name, backend, reps=reps, nprocs=nprocs, seed=seed,
                    profile=profile, profile_interval=profile_interval,
                )
                entries.append(entry)
                if verbose:
                    print(
                        f"  {name:<12} [{backend:<10}] {entry['events']:>8} events  "
                        f"best {entry['best_wall_s'] * 1e3:8.1f} ms  "
                        f"{entry['events_per_sec']:>10,.0f} ev/s"
                    )
                    if "profile" in entry:
                        from repro.bench.selfprof import render_attribution

                        print(render_attribution(entry["profile"], indent="      "))
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_BACKEND", None)
        else:
            os.environ["REPRO_SIM_BACKEND"] = saved
    return entries


def _host_info() -> dict[str, Any]:
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def write_wall_json(
    entries: list[dict[str, Any]],
    path: str | Path,
    baselines: list[dict[str, Any]] | None = None,
    notes: dict[str, Any] | None = None,
) -> Path:
    """Write ``BENCH_wall.json``, preserving any committed baselines.

    If ``path`` already exists and carries a ``baselines`` section,
    those entries survive regeneration verbatim (unless ``baselines``
    is passed explicitly) — they are reference points measured once,
    not part of the sweep.  A ``notes`` section is preserved the same
    way; per-entry self-profiler tables (``--profile``) are lifted out
    of the entries into ``notes.profile`` keyed ``scenario/backend``,
    so the entry schema stays purely measurements.
    """
    path = Path(path)
    existing: dict[str, Any] = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
    if baselines is None:
        baselines = existing.get("baselines")
    if notes is None:
        notes = existing.get("notes")
    profiles: dict[str, Any] = {}
    cleaned = []
    for e in entries:
        if "profile" in e:
            e = dict(e)
            profiles[f"{e['scenario']}/{e['backend']}"] = e.pop("profile")
        cleaned.append(e)
    entries = cleaned
    if profiles:
        notes = {**(notes or {}), "profile": profiles}
    doc = {
        "schema": WALL_SCHEMA,
        "host": _host_info(),
        "entries": entries,
    }
    if baselines:
        doc["baselines"] = baselines
    if notes:
        doc["notes"] = notes
    validate_wall_json(doc)
    # Atomic write: a run interrupted mid-emission (or racing a fleet
    # campaign) can never leave a torn record behind.
    return atomic_write_text(path, json.dumps(doc, indent=2) + "\n")


def validate_wall_json(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid wall-clock record.

    Checked: the schema tag, and for every entry (and baseline) a
    scenario name, a backend name, a positive event count, and a
    positive throughput — zero throughput means the measurement is
    broken, so it fails validation rather than being recorded.
    """
    if doc.get("schema") != WALL_SCHEMA:
        raise ValueError(f"bad schema tag {doc.get('schema')!r}; want {WALL_SCHEMA!r}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("entries must be a non-empty list")
    for e in entries + list(doc.get("baselines") or []):
        where = f"{e.get('scenario')!r}/{e.get('backend')!r}"
        if not e.get("scenario") or not e.get("backend"):
            raise ValueError(f"entry missing scenario/backend: {e!r}")
        if not isinstance(e.get("events"), int) or e["events"] <= 0:
            raise ValueError(f"{where}: bad events {e.get('events')!r}")
        eps = e.get("events_per_sec")
        if not isinstance(eps, (int, float)) or eps <= 0:
            raise ValueError(f"{where}: bad events_per_sec {eps!r}")
        wall = e.get("best_wall_s")
        if not isinstance(wall, (int, float)) or wall <= 0:
            raise ValueError(f"{where}: bad best_wall_s {wall!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench perf",
        description="measure engine events/second per scenario per backend",
    )
    parser.add_argument("--quick", action="store_true",
                        help=f"small scenario subset {QUICK_SCENARIOS} with 1 rep "
                             "(CI schema validation)")
    parser.add_argument("--only", nargs="*", choices=PERF_SCENARIOS,
                        help="measure only these scenarios")
    parser.add_argument("--micro", nargs="*", choices=MICRO_BENCHMARKS,
                        metavar="NAME",
                        help="measure only these microbenchmarks "
                             f"(choices: {', '.join(MICRO_BENCHMARKS)}); "
                             "the full sweep always includes them")
    parser.add_argument("--switches", type=int, default=20000,
                        help="ping-pong iterations per rank for the switch "
                             "microbenchmark (default: %(default)s)")
    parser.add_argument("--backends", nargs="*",
                        help="backends to measure (default: all available)")
    parser.add_argument("--profile", action="store_true",
                        help="also run each scenario once under the sampling "
                             "self-profiler and persist the subsystem "
                             "attribution under notes.profile in the record")
    parser.add_argument("--profile-interval", type=float, default=0.001,
                        metavar="SEC",
                        help="host-time sampling interval for --profile "
                             "(default: %(default)s)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per measurement (default: 3, quick: 1)")
    parser.add_argument("--nprocs", type=int, default=4,
                        help="rank count for application presets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default="BENCH_wall.json", metavar="PATH",
                        help="record path (default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON record")
    args = parser.parse_args(argv)

    scenarios = tuple(args.only) if args.only else (
        QUICK_SCENARIOS if args.quick else PERF_SCENARIOS
    )
    reps = args.reps if args.reps is not None else (1 if args.quick else 3)
    backends = tuple(args.backends) if args.backends else available_backends()
    print(f"# engine wall-clock perf — backends: {', '.join(backends)}\n")
    if args.micro is not None:
        # --micro alone measures just the microbenchmarks.
        entries = run_micro(backends=backends, switches=args.switches,
                            reps=reps)
    else:
        entries = run_perf(scenarios, backends=backends, reps=reps,
                           nprocs=args.nprocs, seed=args.seed,
                           profile=args.profile,
                           profile_interval=args.profile_interval)
        if not args.only and not args.quick:
            # The full sweep carries the switch microbenchmark too, so
            # the regenerated record always prices the raw primitive
            # alongside end-to-end scenario throughput.
            entries += run_micro(backends=backends, switches=args.switches,
                                 reps=reps)
    if not args.no_json:
        out = write_wall_json(entries, args.json)
        print(f"\nwall-clock record -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
