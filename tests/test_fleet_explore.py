"""Determinism regression: a sharded campaign equals the serial one.

The acceptance bar from the fleet issue: for a fixed campaign
(targets, strategy, seed, schedules), ``--jobs N`` must produce a
byte-identical deduplicated failing-schedule set for any ``N`` — same
digest, same merged failures, same persisted trace files.  These tests
pin jobs=1 vs jobs=2 (and odd batch partitions) on a campaign with a
non-empty failing set (the ``no_dirty_mark`` mutation on the steals
scenario, which random-walk exploration reliably catches).
"""

from __future__ import annotations

import pytest

from repro.fleet.jobs import JobResult, explore_jobs
from repro.fleet.results import failing_set_digest, merge_explore, persist_failures
from repro.fleet.scheduler import FleetScheduler
from repro.fleet.seeds import derive_seed, derive_seeds

TARGET = "steals"
MUTATION = "no_dirty_mark"
SCHEDULES = 60


def run_campaign(nworkers, inline=True, batch=None, tmp_dir=None):
    jobs = explore_jobs(
        [TARGET], SCHEDULES, seed=0, mutation=MUTATION,
        batch=batch, nworkers=nworkers,
    )
    report = FleetScheduler(nworkers, inline=inline).run(jobs)
    assert report.ok
    summary = merge_explore(report.completed)
    if tmp_dir is not None:
        persist_failures(summary, tmp_dir, mutation=MUTATION)
    return summary


class TestSeedDerivation:
    def test_pinned_values(self):
        """Derived seeds are part of the campaign contract: changing the
        derivation silently changes every committed digest."""
        assert derive_seed("queue", "random", 0, 0) == 3521436104167924406
        assert derive_seed("steals", "random", 0, 5) == 4376423859564137318

    def test_pure_function_of_coordinates(self):
        a = derive_seeds("queue", "random", 7, range(20))
        b = [derive_seed("queue", "random", 7, i) for i in range(20)]
        assert a == b

    def test_distinct_across_scenario_strategy_and_index(self):
        seeds = {
            derive_seed(sc, st, 0, i)
            for sc in ("queue", "steals")
            for st in ("random", "pct")
            for i in range(50)
        }
        assert len(seeds) == 2 * 2 * 50

    def test_base_seed_shifts_the_whole_stream(self):
        assert derive_seeds("queue", "random", 0, range(5)) != derive_seeds(
            "queue", "random", 1, range(5)
        )


class TestShardingEquality:
    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("serial")
        return run_campaign(1, tmp_dir=d), d

    def test_campaign_actually_fails(self, serial):
        summary, _ = serial
        assert summary.failures, (
            "mutation campaign found no failures; the equality tests "
            "below would be vacuous"
        )
        assert summary.schedules_run == SCHEDULES

    def test_two_workers_same_digest_and_failures(self, serial, tmp_path):
        base, base_dir = serial
        sharded = run_campaign(2, tmp_dir=tmp_path)
        assert failing_set_digest(sharded) == failing_set_digest(base)
        assert sharded.failures == base.failures
        assert sharded.per_target == base.per_target
        # Persisted traces are byte-identical, file for file.
        base_files = sorted(p.name for p in base_dir.iterdir())
        new_files = sorted(p.name for p in tmp_path.iterdir())
        assert new_files == base_files
        for name in base_files:
            assert (tmp_path / name).read_bytes() == (base_dir / name).read_bytes()

    def test_odd_batch_partition_same_digest(self, serial):
        base, _ = serial
        # batch=7 does not divide 60: shards of uneven length, last short.
        sharded = run_campaign(3, batch=7)
        assert failing_set_digest(sharded) == failing_set_digest(base)
        assert sharded.failures == base.failures

    def test_process_pool_same_digest(self, serial, tmp_path):
        """The real thing: two worker *processes*, results over pipes."""
        base, base_dir = serial
        sharded = run_campaign(2, inline=False, tmp_dir=tmp_path)
        assert failing_set_digest(sharded) == failing_set_digest(base)
        assert sharded.failures == base.failures
        for p in base_dir.iterdir():
            assert (tmp_path / p.name).read_bytes() == p.read_bytes()


class TestMergeExplore:
    def _result(self, key, target, failures, schedules=5, events=50):
        return JobResult(
            key=key, kind="explore", worker=0,
            payload={
                "target": target, "strategy": "random",
                "schedules": schedules, "events": events,
                "failures": failures, "metrics": {},
            },
        )

    def _failure(self, index, signature, fingerprint):
        return {
            "index": index, "strategy_seed": 100 + index,
            "signature": signature, "failure": f"invariant at {index}",
            "decisions": [{"kind": "step", "rank": 0}],
            "fingerprint": fingerprint,
        }

    def test_dedup_keeps_lowest_index_per_signature(self):
        sig = ["lost_task", 1]
        results = [
            self._result("b", "queue", [self._failure(9, sig, "fp9")]),
            self._result("a", "queue", [self._failure(2, sig, "fp2")]),
        ]
        summary = merge_explore(results)
        assert len(summary.failures) == 1
        assert summary.failures[0].index == 2
        assert summary.all_failure_fingerprints == ["fp2", "fp9"]
        assert summary.per_target["queue"]["failures"] == 1

    def test_same_signature_different_targets_both_kept(self):
        sig = ["lost_task", 1]
        results = [
            self._result("a", "queue", [self._failure(1, sig, "fpq")]),
            self._result("b", "steals", [self._failure(1, sig, "fps")]),
        ]
        assert len(merge_explore(results).failures) == 2

    def test_digest_independent_of_result_order(self):
        results = [
            self._result("a", "queue", [self._failure(3, ["x"], "fp3")]),
            self._result("b", "queue", [self._failure(1, ["y"], "fp1")]),
        ]
        d1 = failing_set_digest(merge_explore(results))
        d2 = failing_set_digest(merge_explore(list(reversed(results))))
        assert d1 == d2

    def test_errored_and_foreign_results_skipped(self):
        results = [
            self._result("a", "queue", []),
            JobResult(key="bad", kind="explore", error="boom"),
            JobResult(key="bench", kind="bench", payload={"experiment": "t"}),
        ]
        summary = merge_explore(results)
        assert summary.schedules_run == 5
        assert summary.ok
