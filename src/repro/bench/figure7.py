"""Figure 7: UTS on the heterogeneous cluster — split queues vs MPI vs no-split.

Three lines, throughput in nodes/second: Scioto with split queues (the
paper's design), the MPI work-stealing implementation of UTS, and
Scioto with the original fully-locked queues.  Expected shape: all three
scale; Split-Queues > MPI-WS > No-Split, with the locked queues costing
roughly a factor of two.
"""

from __future__ import annotations

from repro.apps.uts import UTSParams, run_uts_mpi, run_uts_scioto
from repro.bench.harness import sweep_procs
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster
from repro.util.records import Series, SweepResult

__all__ = ["run_figure7", "uts_tree"]


def uts_tree(scale: str) -> UTSParams:
    """The UTS instance: ~122k nodes at full scale, ~31k quick."""
    if scale == "full":
        return UTSParams(b0=4.0, gen_mx=12, root_seed=17)
    return UTSParams(b0=4.0, gen_mx=10, root_seed=17)


def run_figure7(scale: str = "quick") -> SweepResult:
    params = uts_tree(scale)
    procs = sweep_procs(scale, max_full=64, max_quick=16)
    result = SweepResult(experiment="figure7")
    split = Series(label="Split-Queues", unit="Mnodes/s")
    mpi = Series(label="MPI-WS", unit="Mnodes/s")
    nosplit = Series(label="No-Split", unit="Mnodes/s")
    for p in procs:
        mach = heterogeneous_cluster(p)
        split.add(p, run_uts_scioto(p, params, machine=mach, seed=1).throughput / 1e6)
        mpi.add(p, run_uts_mpi(p, params, machine=mach, seed=1).throughput / 1e6)
        nosplit.add(
            p,
            run_uts_scioto(
                p, params, machine=mach, seed=1,
                config=SciotoConfig(split_queues=False),
            ).throughput
            / 1e6,
        )
    result.series = [split, mpi, nosplit]
    result.notes.append(f"geometric tree, gen_mx={params.gen_mx}, seed={params.root_seed}")
    return result
