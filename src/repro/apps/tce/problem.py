"""Block-sparse tensor contraction problem definition.

A deterministic instance of ``C = A @ B`` where A and B are block
matrices over an ``nblocks x nblocks`` grid of ``blocksize``-square
blocks, and each block is nonzero with probability ``density``
(independently, from a seeded RNG).  The nonzero masks are replicated
metadata — exactly how block-sparse tensor runtimes store them — so any
rank can test a block for zero locally, but the block *data* lives in
Global Arrays.

The contraction work list is the set of triples ``(i, j, k)`` with
``A[i,k]`` and ``B[k,j]`` both nonzero; its size concentrates around
``nblocks^3 * density^2``, a small fraction of the ``nblocks^3`` triples
the original counter scheme enumerates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.scf.problem import stable_hash

__all__ = ["TCEProblem"]


@dataclass
class TCEProblem:
    """A deterministic block-sparse contraction instance.

    Attributes:
        nblocks: Blocks per matrix dimension.
        blocksize: Edge length of one square block.
        density: Probability that a block of A (or B) is nonzero.
        seed: Seed for masks and block contents.
    """

    nblocks: int = 12
    blocksize: int = 16
    density: float = 0.25
    seed: int = 11
    _cache: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 < self.density <= 1.0):
            raise ValueError("density must be in (0, 1]")

    @property
    def n(self) -> int:
        """Full matrix dimension."""
        return self.nblocks * self.blocksize

    # ------------------------------------------------------------------ #
    # Replicated sparsity metadata
    # ------------------------------------------------------------------ #
    def _mask(self, which: str) -> np.ndarray:
        key = ("mask", which)
        if key not in self._cache:
            rng = np.random.default_rng(stable_hash(self.seed, "mask", which))
            self._cache[key] = rng.random((self.nblocks, self.nblocks)) < self.density
        return self._cache[key]

    def nonzero_a(self, i: int, k: int) -> bool:
        return bool(self._mask("A")[i, k])

    def nonzero_b(self, k: int, j: int) -> bool:
        return bool(self._mask("B")[k, j])

    def all_triples(self) -> list[tuple[int, int, int]]:
        """Every (i, j, k) triple — the original code's counter domain."""
        nb = self.nblocks
        return [(i, j, k) for i in range(nb) for j in range(nb) for k in range(nb)]

    def nonzero_triples(self) -> list[tuple[int, int, int]]:
        """Triples with real work, in deterministic order."""
        return [t for t in self.all_triples() if self.nonzero_a(t[0], t[2]) and self.nonzero_b(t[2], t[1])]

    # ------------------------------------------------------------------ #
    # Deterministic block data
    # ------------------------------------------------------------------ #
    def block_a(self, i: int, k: int) -> np.ndarray:
        """Contents of A's block (i, k); zeros when masked out."""
        b = self.blocksize
        if not self.nonzero_a(i, k):
            return np.zeros((b, b))
        rng = np.random.default_rng(stable_hash(self.seed, "A", i, k))
        return rng.standard_normal((b, b)) / np.sqrt(self.n)

    def block_b(self, k: int, j: int) -> np.ndarray:
        """Contents of B's block (k, j); zeros when masked out."""
        b = self.blocksize
        if not self.nonzero_b(k, j):
            return np.zeros((b, b))
        rng = np.random.default_rng(stable_hash(self.seed, "B", k, j))
        return rng.standard_normal((b, b)) / np.sqrt(self.n)

    def dense_a(self) -> np.ndarray:
        """Assemble A densely (reference / GA initialization)."""
        return self._assemble(self.block_a)

    def dense_b(self) -> np.ndarray:
        return self._assemble(self.block_b)

    def _assemble(self, block_fn) -> np.ndarray:
        n, b = self.n, self.blocksize
        out = np.zeros((n, n))
        for i in range(self.nblocks):
            for j in range(self.nblocks):
                out[i * b : (i + 1) * b, j * b : (j + 1) * b] = block_fn(i, j)
        return out

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def gemm_flops(self) -> float:
        """Flops of one block GEMM (C block += A block @ B block)."""
        return 2.0 * self.blocksize**3

    def triple_scan_flops(self) -> float:
        """Flops spent discovering that a claimed triple is zero."""
        return 40.0
