"""Atomic file I/O for persisted artifacts.

Decision traces, benchmark records, and fleet trajectories are written
by tools that may run concurrently (parallel fleet workers, an explore
campaign racing a bench regeneration) and may be interrupted at any
point (a worker SIGKILL mid-write, ctrl-C during a campaign).  A plain
``Path.write_text`` truncates the destination before writing, so a
reader — or a crash — can observe a torn file.

:func:`atomic_write_text` writes to a uniquely named temporary file in
the destination directory and publishes it with :func:`os.replace`,
which is atomic on POSIX when source and destination share a
filesystem.  Readers therefore see either the old complete document or
the new complete document, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "append_text_line"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically write ``text`` to ``path``; returns the path written.

    Creates parent directories as needed.  The temporary file lives in
    the destination directory (same filesystem), so the final
    ``os.replace`` is a single atomic rename.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        # Never leave the temp file behind, even on KeyboardInterrupt.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def append_text_line(path: str | Path, line: str) -> Path:
    """Append ``line`` (newline added if missing) to ``path``; atomic-ish.

    For append-only JSONL feeds (the live telemetry bus) the atomicity
    requirement differs from :func:`atomic_write_text`: the file must
    *grow*, so rename-replace is the wrong tool.  Instead the record is
    written with a single ``os.write`` on an ``O_APPEND`` descriptor —
    POSIX guarantees the seek-to-end and the write are one atomic step,
    so concurrent tailers (``repro.obs top --follow``) never observe a
    record interleaved with another writer's, and a crash leaves at most
    one truncated final line, which readers skip.
    """
    if not line.endswith("\n"):
        line += "\n"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)
    return path
