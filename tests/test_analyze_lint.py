"""Fixture tests for the RPR lint rules: each rule must fire on a
known-bad snippet and stay quiet on the sanctioned version."""

from __future__ import annotations

import textwrap

import pytest

from repro.analyze.lint import RULES, lint_file, lint_paths


def _lint(code: str, rule: str | None = None):
    rules = [rule] if rule else None
    return lint_file("fixture.py", source=textwrap.dedent(code), rules=rules)


def _ids(findings):
    return [f.rule for f in findings]


class TestFramework:
    def test_all_rules_registered(self):
        assert set(RULES) == {
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"
        }

    def test_syntax_error_reported_not_raised(self):
        findings = _lint("def broken(:\n")
        assert _ids(findings) == ["RPR000"]

    def test_line_suppression(self):
        code = """
        import time
        t = time.time()  # repro: lint-disable=RPR002
        """
        assert _lint(code, "RPR002") == []

    def test_file_suppression(self):
        code = """
        # repro: lint-disable-file=RPR002
        import time
        a = time.time()
        b = time.time()
        """
        assert _lint(code, "RPR002") == []

    def test_suppression_is_per_rule(self):
        code = """
        import time
        t = time.time()  # repro: lint-disable=RPR001
        """
        assert _ids(_lint(code, "RPR002")) == ["RPR002"]

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        findings, nfiles = lint_paths([tmp_path])
        assert nfiles == 2
        assert _ids(findings) == ["RPR002"]


class TestRPR001SharedMutation:
    def test_flags_unlocked_mutation(self):
        code = """
        class Q:
            def bad_pop(self, proc):
                return self._shared.pop(0)
        """
        findings = _lint(code, "RPR001")
        assert _ids(findings) == ["RPR001"]
        assert "bad_pop" in findings[0].message

    def test_flags_unlocked_assignment_and_del(self):
        code = """
        class Q:
            def clobber(self):
                self._shared = []
                del self._shared[:2]
        """
        assert _ids(_lint(code, "RPR001")) == ["RPR001", "RPR001"]

    def test_quiet_under_lock(self):
        code = """
        class Q:
            def good_pop(self, proc):
                self.mutex.acquire(proc)
                task = self._shared.pop(0)
                self.mutex.release(proc)
                return task
        """
        assert _lint(code, "RPR001") == []

    def test_quiet_in_closure_passed_to_runner(self):
        code = """
        class Q:
            def steal(self, proc):
                def _take():
                    return self._shared.pop()
                return self.armci.rmw(proc, self.owner, _take)
        """
        assert _lint(code, "RPR001") == []

    def test_quiet_in_init_and_reads(self):
        code = """
        class Q:
            def __init__(self):
                self._shared = []
            def peek(self):
                return self._shared[0] if self._shared else None
        """
        assert _lint(code, "RPR001") == []


class TestRPR002WallClock:
    def test_flags_time_time(self):
        assert _ids(_lint("import time\nt = time.time()\n", "RPR002")) == ["RPR002"]

    def test_flags_perf_counter_and_monotonic(self):
        code = """
        import time
        a = time.perf_counter()
        b = time.monotonic()
        """
        assert _ids(_lint(code, "RPR002")) == ["RPR002", "RPR002"]

    def test_flags_global_random(self):
        code = """
        import random
        x = random.random()
        y = random.randint(0, 3)
        """
        assert _ids(_lint(code, "RPR002")) == ["RPR002", "RPR002"]

    def test_flags_argless_datetime_now(self):
        code = """
        from datetime import datetime
        t = datetime.now()
        """
        assert _ids(_lint(code, "RPR002")) == ["RPR002"]

    def test_quiet_on_seeded_rng_and_virtual_time(self):
        code = """
        import random
        rng = random.Random(42)
        x = rng.uniform(0.0, 1.0)
        def body(proc):
            return proc.now + proc.rng.random()
        """
        assert _lint(code, "RPR002") == []


class TestRPR003PollLoop:
    def test_flags_busy_wait_on_flag(self):
        code = """
        def wait_done(self):
            while not self.done:
                pass
        """
        assert _ids(_lint(code, "RPR003")) == ["RPR003"]

    def test_flags_spin_on_mailbox_probe(self):
        code = """
        def drain(self, proc):
            spins = 0
            while not self.armci.mailbox_empty(proc, self.tag):
                spins += 1
        """
        assert _ids(_lint(code, "RPR003")) == ["RPR003"]

    def test_quiet_when_loop_yields(self):
        code = """
        def wait_done(self, proc):
            while not self.done:
                proc.sleep(1e-6)
        """
        assert _lint(code, "RPR003") == []

    def test_quiet_on_local_worklist(self):
        code = """
        def toposort(ready):
            while ready:
                ready.pop()
        """
        assert _lint(code, "RPR003") == []

    def test_quiet_when_helper_may_yield(self):
        code = """
        def run(self, proc):
            while not self.done:
                self.service(proc)
        """
        assert _lint(code, "RPR003") == []


class TestRPR004TaskCapture:
    def test_flags_lambda_capturing_proc(self):
        code = """
        def setup(tc, proc):
            h = tc.register(lambda tc_, t: proc.compute(1e-6))
            return h
        """
        findings = _lint(code, "RPR004")
        assert _ids(findings) == ["RPR004"]
        assert "proc" in findings[0].message

    def test_flags_nested_def_capturing_engine(self):
        code = """
        def setup(tc, engine):
            def body(tc_, t):
                engine.wake(t, 0.0)
            return tc.register(body)
        """
        assert _ids(_lint(code, "RPR004")) == ["RPR004"]

    def test_quiet_when_body_uses_executing_rank(self):
        code = """
        def setup(tc):
            def body(tc_, t):
                tc_.proc.compute(1e-6)
                data = tc_.clo(t.body)
                data.append(t.body)
            return tc.register(body)
        """
        assert _lint(code, "RPR004") == []

    def test_quiet_on_portable_captures(self):
        code = """
        def setup(tc, limit):
            def body(tc_, t):
                if t.body < limit:
                    tc_.add(t)
            return tc.register(body)
        """
        assert _lint(code, "RPR004") == []


class TestRPR005UnfencedFlagPut:
    def test_flags_flag_put_without_fence(self):
        code = """
        def note_steal(self, proc, victim):
            det = self.peers[victim]
            self.armci.put(proc, victim, 8, lambda: det._mark_dirty())
        """
        assert _ids(_lint(code, "RPR005")) == ["RPR005"]

    def test_flags_assignment_style_flag_store(self):
        code = """
        def signal(self, proc, victim):
            def _set():
                self.peers[victim].done = True
            self.armci.put(proc, victim, 8, _set)
        """
        assert _ids(_lint(code, "RPR005")) == ["RPR005"]

    def test_quiet_with_preceding_fence(self):
        code = """
        def note_steal(self, proc, victim):
            det = self.peers[victim]
            self.armci.fence(proc, victim)
            self.armci.put(proc, victim, 8, lambda: det._mark_dirty())
        """
        assert _lint(code, "RPR005") == []

    def test_quiet_on_plain_data_put(self):
        code = """
        def update_index(self, proc, victim):
            self.armci.put(proc, victim, 24, None)
        """
        assert _lint(code, "RPR005") == []

    def test_quiet_on_observability_edge_marks_in_callback(self):
        # repro.obs recording calls (edge_mark, instant, ...) are pure
        # observers; their names match the flag hint but store nothing.
        code = """
        def add_remote(self, proc, task):
            def _insert():
                self.peers[proc].append(task)
                edge_mark(proc, ("spawn", task.uid))
                instant(proc, "dirty-mark", "termination")
            self.armci.put(proc, self.owner, 64, _insert)
        """
        assert _lint(code, "RPR005") == []

    def test_observer_names_do_not_mask_real_flag_stores(self):
        code = """
        def add_remote(self, proc, task):
            def _insert():
                edge_mark(proc, ("spawn", task.uid))
                self.peers[proc].done = True
            self.armci.put(proc, self.owner, 64, _insert)
        """
        assert _ids(_lint(code, "RPR005")) == ["RPR005"]


class TestRPR006LockOrder:
    def test_flags_locks_nested_in_both_orders(self):
        code = """
        def forward(a, b):
            a.lock.acquire()
            b.lock.acquire()
            b.lock.release()
            a.lock.release()

        def backward(a, b):
            b.lock.acquire()
            a.lock.acquire()
            a.lock.release()
            b.lock.release()
        """
        findings = _lint(code, "RPR006")
        assert _ids(findings) == ["RPR006"]
        assert "both nestings" in findings[0].message

    def test_self_prefix_unifies_fields_across_methods(self):
        code = """
        class Q:
            def up(self):
                self._m.acquire()
                self._n.acquire()
                self._n.release()
                self._m.release()

            def down(self):
                self._n.acquire()
                self._m.acquire()
                self._m.release()
                self._n.release()
        """
        assert _ids(_lint(code, "RPR006")) == ["RPR006"]

    def test_quiet_on_consistent_global_order(self):
        code = """
        def ordered_twice(a, b):
            a.lock.acquire()
            b.lock.acquire()
            b.lock.release()
            a.lock.release()
            a.lock.acquire()
            b.lock.acquire()
            b.lock.release()
            a.lock.release()
        """
        assert _lint(code, "RPR006") == []

    def test_quiet_on_sequential_not_nested_reversal(self):
        code = """
        def one_at_a_time(a, b):
            b.lock.acquire()
            b.lock.release()
            a.lock.acquire()
            a.lock.release()

        def other_way(a, b):
            a.lock.acquire()
            a.lock.release()
            b.lock.acquire()
            b.lock.release()
        """
        assert _lint(code, "RPR006") == []

    def test_quiet_on_reacquisition_of_same_lock_name(self):
        code = """
        def nested_same(a):
            a.lock.acquire()
            a.lock.acquire()
            a.lock.release()
            a.lock.release()
        """
        assert _lint(code, "RPR006") == []


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        findings, nfiles = lint_paths(["src/repro"])
        assert nfiles > 50
        assert findings == []

    def test_cli_lint_exit_codes(self, tmp_path, capsys):
        from repro.analyze.__main__ import main

        assert main(["lint", "src/repro"]) == 0
        capsys.readouterr()
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(bad)]) == 1
        assert "RPR002" in capsys.readouterr().out


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
