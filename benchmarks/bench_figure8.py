"""Figure 8: UTS on the Cray XT4 — Scioto vs MPI up to 512 procs."""

from repro.bench.figure8 import run_figure8
from repro.bench.harness import scale
from repro.bench.report import render


def test_figure8_uts_xt4(benchmark):
    result = benchmark.pedantic(run_figure8, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, fmt="{:.2f}"))
    scioto = result.get("UTS-Scioto")
    mpi = result.get("UTS-MPI")
    for p in scioto.xs:
        # comparable performance with Scioto ahead (paper §6.3)
        assert scioto.y_at(p) > 0.95 * mpi.y_at(p), p
    big, small = max(scioto.xs), min(scioto.xs)
    assert scioto.y_at(big) > 1.5 * scioto.y_at(small)
