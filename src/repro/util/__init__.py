"""Shared utilities: errors, formatting, and experiment records."""

from repro.util.errors import (
    ReproError,
    SimDeadlockError,
    SimLimitError,
    SimShutdown,
    CommError,
    TaskCollectionError,
)
from repro.util.format import format_table, format_us, format_rate
from repro.util.records import ExperimentRecord, Series, SweepResult

__all__ = [
    "ReproError",
    "SimDeadlockError",
    "SimLimitError",
    "SimShutdown",
    "CommError",
    "TaskCollectionError",
    "format_table",
    "format_us",
    "format_rate",
    "ExperimentRecord",
    "Series",
    "SweepResult",
]
