"""Tests for the application command-line drivers."""

from __future__ import annotations

import pytest

from repro.apps.scf.__main__ import main as scf_main
from repro.apps.tce.__main__ import main as tce_main
from repro.apps.uts.__main__ import main as uts_main


class TestUtsCli:
    def test_default_run(self, capsys):
        rc = uts_main(["--nprocs", "4", "--gen-mx", "8", "--root-seed", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Mnodes/s" in out
        assert "tree:" in out

    def test_mpi_impl(self, capsys):
        rc = uts_main(["--nprocs", "3", "--impl", "mpi", "--gen-mx", "8",
                       "--root-seed", "6"])
        assert rc == 0
        assert "mpi on 3" in capsys.readouterr().out

    def test_binomial_and_flags(self, capsys):
        rc = uts_main([
            "--nprocs", "3", "--tree", "binomial", "--b0", "10",
            "--q", "0.1", "--m", "4", "--no-split", "--steal-policy", "ring",
        ])
        assert rc == 0

    def test_wait_free_flag(self, capsys):
        rc = uts_main(["--nprocs", "3", "--gen-mx", "8", "--root-seed", "6",
                       "--wait-free"])
        assert rc == 0


class TestScfCli:
    def test_verified_run(self, capsys):
        rc = scf_main(["--nprocs", "3", "--nblocks", "8", "--blocksize", "4",
                       "--iters", "2", "--verify"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches sequential reference: True" in out

    def test_original_scheduler(self, capsys):
        rc = scf_main(["--nprocs", "2", "--nblocks", "8", "--blocksize", "4",
                       "--iters", "1", "--scheduler", "original"])
        assert rc == 0
        assert "original" in capsys.readouterr().out


class TestTceCli:
    def test_verified_run(self, capsys):
        rc = tce_main(["--nprocs", "3", "--nblocks", "6", "--blocksize", "8",
                       "--verify"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "matches dense reference: True" in out

    def test_counter_scheduler_reports_claims(self, capsys):
        rc = tce_main(["--nprocs", "2", "--nblocks", "6", "--blocksize", "8",
                       "--scheduler", "original"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "counter claims 2" in out or "counter claims" in out

    def test_roundrobin_placement(self, capsys):
        rc = tce_main(["--nprocs", "3", "--nblocks", "6", "--blocksize", "8",
                       "--placement", "roundrobin"])
        assert rc == 0
