"""Tests for the two-sided MPI-like layer."""

from __future__ import annotations

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Mpi
from repro.sim.engine import Engine
from repro.util.errors import CommError, SimDeadlockError


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=500_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


def test_send_recv_basic():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        if proc.rank == 0:
            mpi.send(proc, 1, tag=5, payload="hi")
            return None
        return mpi.recv(proc, source=0, tag=5)

    _, res = _run(2, main)
    assert res.returns[1] == (0, 5, "hi")


def test_recv_blocks_until_message_arrives():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        if proc.rank == 1:
            src, tag, payload = mpi.recv(proc)
            return (payload, proc.now)
        proc.advance(50e-6)
        mpi.send(proc, 1, tag=0, payload="late")
        return None

    _, res = _run(2, main)
    payload, t = res.returns[1]
    assert payload == "late"
    assert t >= 50e-6


def test_recv_filters_by_source_and_tag():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        if proc.rank == 0:
            mpi.send(proc, 2, tag=1, payload="a")
            return None
        if proc.rank == 1:
            proc.advance(1e-6)
            mpi.send(proc, 2, tag=2, payload="b")
            return None
        first = mpi.recv(proc, source=1, tag=2)
        second = mpi.recv(proc, source=ANY_SOURCE, tag=ANY_TAG)
        return (first, second)

    _, res = _run(3, main)
    assert res.returns[2] == ((1, 2, "b"), (0, 1, "a"))


def test_iprobe_nonblocking():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        if proc.rank == 0:
            early = mpi.iprobe(proc)
            proc.advance(100e-6)
            late = mpi.iprobe(proc, source=1, tag=3)
            return (early, late)
        mpi.send(proc, 0, tag=3, payload=None)
        return None

    _, res = _run(2, main)
    assert res.returns[0] == (False, True)


def test_iprobe_charges_poll_cost():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        t0 = proc.now
        mpi.iprobe(proc)
        return proc.now - t0

    eng, res = _run(2, main)
    assert res.returns[0] == pytest.approx(eng.machine.poll_cost)
    assert Mpi.attach(eng).counters.total("polls") == 2


def test_send_to_self_rejected():
    def main(proc):
        Mpi.attach(proc.engine).send(proc, proc.rank, tag=0, payload=None)

    with pytest.raises(CommError):
        _run(1, main)


def test_unmatched_recv_deadlocks_cleanly():
    def main(proc):
        if proc.rank == 0:
            Mpi.attach(proc.engine).recv(proc, source=1, tag=99)

    with pytest.raises(SimDeadlockError, match="MPI_Recv"):
        _run(2, main)


def test_barrier_synchronizes():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        proc.advance(proc.rank * 5e-6)
        mpi.barrier(proc)
        return proc.now

    _, res = _run(4, main)
    assert len({round(t, 12) for t in res.returns}) == 1


def test_many_messages_fifo_between_pair():
    def main(proc):
        mpi = Mpi.attach(proc.engine)
        if proc.rank == 0:
            for i in range(20):
                mpi.send(proc, 1, tag=0, payload=i)
            return None
        return [mpi.recv(proc, source=0)[2] for _ in range(20)]

    _, res = _run(2, main)
    assert res.returns[1] == list(range(20))
