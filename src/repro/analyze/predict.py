"""Predictive concurrency analysis: find bugs in *unexecuted* schedules.

The observed-schedule detector (:mod:`repro.analyze.race`) answers "did
this run race?".  This module answers the stronger question "could a
*different* legal schedule of this run have raced, deadlocked, or
broken the termination protocol?" — from a single benign trace, usually
the default deterministic schedule.

Four passes share one captured trace (:mod:`repro.analyze.capture`):

1. **Lockset** (:mod:`repro.analyze.lockset`) — Eraser-style empty
   lockset intersection over lock-disciplined regions.  Schedule
   insensitive; may over-report accesses ordered by non-lock sync.
2. **Weakened happens-before** (here) — recompute vector clocks keeping
   only the ordering a scheduler cannot reverse (program order,
   collectives, message delivery, target-serialized atomic chains) and
   *dropping* reversible edges (lock release→acquire, flag-cell joins).
   Conflicting accesses unordered under the weak relation with no
   common lock are predicted races with a witness reordering.
3. **Steal/mark obligation** (here) — every steal transfer must carry a
   §5.3 mark decision from the thief's (unmutated) termination
   detector; an unattested transfer in a trace with live wave activity
   predicts the steal-after-vote family of termination bugs.  Release
   flag stores that the weak relation leaves unordered before the
   victim's next vote are folded in (the mark-delivery race).
4. **Lock-order graph** (:mod:`repro.analyze.lockgraph`) — cycles in
   nested-acquisition order, with gate-lock and single-rank pruning.

Every prediction then goes through **confirmation**: it is compiled to
a :class:`~repro.check.witness.WitnessStrategy` that steers a
``repro.check`` replay toward the predicted reordering.  A confirming
run either fails outright (invariant violation, protocol error,
:class:`~repro.analyze.capture.PredictedDeadlockError`), re-observes
the race under the standard detector, or exhibits the mark-after-vote
window in its capture; the prediction is upgraded PREDICTED →
CONFIRMED and the decision trace persisted for ``repro.check replay``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Sequence

from repro.analyze.capture import TraceEvent
from repro.analyze.lockgraph import deadlock_pass
from repro.analyze.lockset import lockset_pass
from repro.analyze.race import RaceDetector, region_class
from repro.analyze.vectorclock import VectorClock

__all__ = [
    "Prediction",
    "PredictReport",
    "capture_trace",
    "weakened_hb_pass",
    "obligation_pass",
    "analyze_trace",
    "find_mark_window",
    "confirm_prediction",
    "predict",
]


# ---------------------------------------------------------------------- #
# Trace capture of one (target, mutation) run
# ---------------------------------------------------------------------- #
@dataclass
class CaptureRun:
    """One instrumented default-schedule run of a check scenario."""

    target: str
    mutation: str | None
    engine_seed: int
    nprocs: int
    events: list[TraceEvent]
    observed_races: int
    error: str | None


def capture_trace(
    target: str, mutation: str | None = None, engine_seed: int = 0
) -> CaptureRun:
    """Run ``target`` on the default deterministic schedule with full
    trace capture (and the observed-schedule detector) attached."""
    import repro.core.task as task_mod
    from repro.check.mutations import apply_mutation
    from repro.check.scenarios import make_scenario
    from repro.sim.engine import Engine
    from repro.util.errors import ReproError, SimDeadlockError

    scenario = make_scenario(target)
    task_mod._uid_counter = itertools.count(1)
    error: str | None = None
    with apply_mutation(mutation):
        engine = Engine(
            scenario.nprocs, seed=engine_seed, max_events=scenario.max_events
        )
        det = RaceDetector.attach(engine, capture=True)
        scenario.build(engine)
        try:
            engine.run()
        except SimDeadlockError as exc:
            error = f"{type(exc).__name__}: {exc}"
        except (ReproError, RuntimeError, AssertionError) as exc:
            error = f"{type(exc).__name__}: {exc}"
    return CaptureRun(
        target=target,
        mutation=mutation,
        engine_seed=engine_seed,
        nprocs=scenario.nprocs,
        events=det.capture.events if det.capture is not None else [],
        observed_races=len(det.races),
        error=error,
    )


# ---------------------------------------------------------------------- #
# Weakened happens-before
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class WeakHbFinding:
    """Conflicting accesses unordered under the weakened relation."""

    region: Hashable
    region_cls: tuple
    sites: tuple[str, str]
    ranks: tuple[int, int]
    seqs: tuple[int, int]

    def describe(self) -> str:
        return (
            f"predicted race on {self.region!r}: rank {self.ranks[0]} at "
            f"{self.sites[0]} and rank {self.ranks[1]} at {self.sites[1]} "
            "are reorderable (no must-edge, no common lock)"
        )


def _weak_snapshots(
    events: list[TraceEvent], nprocs: int
) -> dict[int, Sequence[int]]:
    """Per-rank clocks over must-edges only; snapshot at data/flag events.

    Must-edges kept: program order, collectives, post→poll delivery of
    the matched message, and rmw reservation chains per target (the
    reservation order could change in another schedule, but each order
    is a serialization — treating the executed one as fixed only ever
    *hides* reorderings, it cannot invent them, so it is the
    false-positive-safe choice).  Dropped: mutex release→acquire (the
    scheduler may hand the lock over in either order; mutual exclusion
    itself is handled by the common-lockset test) and flag-cell joins
    (the §5.3 analyses reason about those explicitly).
    """
    vc = [VectorClock(nprocs) for _ in range(nprocs)]
    for r in range(nprocs):
        vc[r].tick(r)
    fifo: dict[tuple[int, str], list[VectorClock]] = {}
    rmw_cells: dict[int, VectorClock] = {}
    pending_coll: dict[tuple[int, ...], list[int]] = {}
    # Snapshots are consumed by integer indexing only, so they stay in
    # the clock's native array representation: one memcpy per snapshot
    # instead of boxing every component into a tuple.
    snaps: dict[int, Sequence[int]] = {}
    for ev in events:
        r = ev.rank
        kind = ev.kind
        if kind == "access" or kind == "flag-write" or kind == "flag-read":
            vc[r].tick(r)
            snaps[ev.seq] = vc[r].snapshot()
        elif kind == "collective":
            ranks = ev.data["ranks"]
            group = pending_coll.setdefault(ranks, [])
            group.append(r)
            if len(group) == len(ranks):
                joined = VectorClock(nprocs)
                for p in ranks:
                    joined.join(vc[p])
                for p in ranks:
                    vc[p].join(joined)
                    vc[p].tick(p)
                del pending_coll[ranks]
        elif kind == "post":
            key = (ev.data["target"], ev.data["tag"])
            fifo.setdefault(key, []).append(vc[r].copy())
            vc[r].tick(r)
        elif kind == "poll":
            box = fifo.get((r, ev.data["tag"]))
            if box:
                vc[r].join(box.pop(0))
            vc[r].tick(r)
        elif kind == "rmw":
            cell = rmw_cells.get(ev.data["target"])
            if cell is not None:
                vc[r].join(cell)
            vc[r].tick(r)
        elif kind == "rmw-done":
            rmw_cells[ev.data["target"]] = vc[r].copy()
            vc[r].tick(r)
    return snaps


def weakened_hb_pass(
    events: list[TraceEvent], nprocs: int
) -> list[WeakHbFinding]:
    """Predicted races: weak-unordered conflicts with no common lock."""
    snaps = _weak_snapshots(events, nprocs)
    # region -> rank -> last (op, site, held, snap, seq) per access class
    reads: dict[Hashable, dict[int, tuple]] = {}
    writes: dict[Hashable, dict[int, tuple]] = {}
    atomics: dict[Hashable, dict[int, tuple]] = {}
    findings: list[WeakHbFinding] = []
    dedup: set[tuple] = set()

    def conflict(prior: tuple, cur: tuple, region: Hashable) -> None:
        p_op, p_site, p_held, p_snap, p_seq, p_rank = prior
        c_op, c_site, c_held, c_snap, c_seq, c_rank = cur
        if p_snap[p_rank] <= c_snap[p_rank]:  # weak-ordered (epoch test)
            return
        if set(p_held) & set(c_held):  # mutually excluded
            return
        key = (region_class(region), tuple(sorted((p_site, c_site))))
        if key in dedup:
            return
        dedup.add(key)
        findings.append(
            WeakHbFinding(
                region=region,
                region_cls=key[0],
                sites=(p_site, c_site),
                ranks=(p_rank, c_rank),
                seqs=(p_seq, c_seq),
            )
        )

    for ev in events:
        if ev.kind != "access":
            continue
        region = ev.data["region"]
        op = ev.data["op"]
        cur = (op, ev.data["site"], ev.held, snaps[ev.seq], ev.seq, ev.rank)
        r_tab = reads.setdefault(region, {})
        w_tab = writes.setdefault(region, {})
        a_tab = atomics.setdefault(region, {})
        if op == "a":
            against = (r_tab, w_tab)
        elif op == "r":
            against = (w_tab, a_tab)
        else:
            against = (r_tab, w_tab, a_tab)
        for table in against:
            for rank, prior in table.items():
                if rank != ev.rank:
                    conflict(prior, cur, region)
        if op == "a":
            a_tab[ev.rank] = cur
        else:
            if op != "r":
                w_tab[ev.rank] = cur
            if op in ("r", "rw"):
                r_tab[ev.rank] = cur
    return findings


# ---------------------------------------------------------------------- #
# Steal/mark obligation (§5.3 family)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ObligationFinding:
    """Steal transfers with no mark decision from the thief's detector."""

    thief: int
    victim: int
    count: int
    first_seq: int
    #: "unattested" (no mark decision at all) or "unordered-mark" (a
    #: release mark was sent but nothing orders it before the victim's
    #: next vote).
    mode: str

    def describe(self) -> str:
        if self.mode == "unattested":
            return (
                f"steal-after-vote hazard: {self.count} transfer(s) rank "
                f"{self.thief} <- rank {self.victim} carry no §5.3 mark "
                "decision; a schedule where the thief votes white first "
                "terminates early with the stolen work in flight"
            )
        return (
            f"mark-delivery hazard: dirty mark rank {self.thief} -> rank "
            f"{self.victim} is not ordered before the victim's next vote "
            f"({self.count} instance(s))"
        )


def obligation_pass(events: list[TraceEvent]) -> list[ObligationFinding]:
    """Match transfers against mark decisions; flag the unattested."""
    if not any(
        e.kind == "protocol" and e.data.get("what") == "wave-start"
        for e in events
    ):
        return []  # no termination protocol in play, no obligation
    decisions: dict[tuple[int, int], list[int]] = {}
    used: dict[tuple[int, int], int] = {}
    unattested: dict[tuple[int, int], list[int]] = {}
    for ev in events:
        if ev.kind != "protocol":
            continue
        what = ev.data.get("what")
        if what == "mark-decision":
            decisions.setdefault((ev.rank, ev.data["victim"]), []).append(ev.seq)
        elif what == "steal-transfer":
            key = (ev.rank, ev.data["victim"])
            avail = decisions.get(key, [])
            i = used.get(key, 0)
            # the decision is emitted just before its transfer in program
            # order; consume the next unconsumed decision preceding us
            if i < len(avail) and avail[i] < ev.seq:
                used[key] = i + 1
            else:
                unattested.setdefault(key, []).append(ev.seq)
    findings = [
        ObligationFinding(
            thief=t, victim=v, count=len(seqs), first_seq=seqs[0],
            mode="unattested",
        )
        for (t, v), seqs in sorted(unattested.items())
    ]
    # Release-mode marks (a message-based §5.3 protocol): the weak
    # relation has no edge from the mark's landing to the victim's next
    # vote, so a vote can precede it in another schedule.
    snaps: dict[int, Sequence[int]] | None = None
    nprocs = 1 + max((e.rank for e in events), default=0)
    late: dict[tuple[int, int], list[int]] = {}
    for ev in events:
        if ev.kind != "flag-write" or not ev.data.get("release"):
            continue
        target = ev.data.get("target")
        if target is None or target == ev.rank:
            continue
        if snaps is None:
            snaps = _weak_snapshots(events, nprocs)
        vote = next(
            (
                e
                for e in events[ev.seq + 1 :]
                if e.kind == "flag-read"
                and e.rank == target
                and e.data["region"] == ev.data["region"]
            ),
            None,
        )
        if vote is None or snaps[ev.seq][ev.rank] > snaps[vote.seq][ev.rank]:
            late.setdefault((ev.rank, target), []).append(ev.seq)
    findings.extend(
        ObligationFinding(
            thief=t, victim=v, count=len(seqs), first_seq=seqs[0],
            mode="unordered-mark",
        )
        for (t, v), seqs in sorted(late.items())
        if (t, v) not in unattested
    )
    return findings


# ---------------------------------------------------------------------- #
# The mark-after-vote window (confirmation oracle)
# ---------------------------------------------------------------------- #
def find_mark_window(events: list[TraceEvent]) -> dict | None:
    """Did an executed schedule exhibit the §5.3 ordering violation?

    Looks for a steal transfer by a thief that had already voted in its
    current wave, where the victim casts a WHITE vote before the dirty
    mark lands (or no mark lands at all) — i.e. the victim's detector
    declared innocence while stolen work was in flight.  A black vote
    in between self-heals (the victim was dirty for its own reasons),
    so the oracle anchors on the first white vote after the transfer.
    The legitimate votes-before elision (victim a spanning-tree
    descendant of the thief) is exempt.  Returns a summary dict, or
    None.
    """
    from repro.core.termination import is_descendant

    last_vote: dict[int, int] = {}
    last_down: dict[int, int] = {}
    transfers: list[tuple[int, int, int]] = []  # (seq, thief, victim)
    votes: list[tuple[int, int, int]] = []  # (seq, rank, color)
    marks: list[tuple[int, int, int]] = []  # (seq, writer, victim)
    for ev in events:
        if ev.kind == "protocol":
            what = ev.data.get("what")
            if what == "vote":
                votes.append((ev.seq, ev.rank, ev.data["color"]))
                last_vote[ev.rank] = ev.seq
            elif what == "wave-down":
                last_down[ev.rank] = ev.seq
            elif what == "steal-transfer":
                voted = last_vote.get(ev.rank, -1) > last_down.get(ev.rank, -1)
                if voted:
                    transfers.append((ev.seq, ev.rank, ev.data["victim"]))
        elif ev.kind == "flag-write":
            target = ev.data.get("target")
            if target is not None and target != ev.rank:
                marks.append((ev.seq, ev.rank, target))
    for seq, thief, victim in transfers:
        if is_descendant(victim, thief):
            continue
        vote = next(
            (v for v in votes if v[1] == victim and v[0] > seq and v[2] == 0),
            None,
        )
        if vote is None:
            continue
        mark = next(
            (m for m in marks if m[1] == thief and m[2] == victim and m[0] > seq),
            None,
        )
        if mark is None or mark[0] > vote[0]:
            return {
                "thief": thief,
                "victim": victim,
                "transfer_seq": seq,
                "vote_seq": vote[0],
                "vote_color": vote[2],
                "mark_seq": mark[0] if mark else None,
            }
    return None


# ---------------------------------------------------------------------- #
# Predictions
# ---------------------------------------------------------------------- #
@dataclass
class Prediction:
    """One predicted concurrency bug, possibly upgraded by confirmation."""

    kind: str  # "data-race" | "steal-after-vote" | "deadlock"
    tiers: list[str]
    title: str
    detail: str
    data: dict = field(default_factory=dict)
    status: str = "PREDICTED"
    confirmed_how: str | None = None
    trace_path: str | None = None
    replay_ok: bool | None = None

    def describe(self) -> str:
        head = f"[{self.status}] {self.kind} ({'+'.join(self.tiers)}): {self.title}"
        if self.confirmed_how:
            head += f"\n    confirmed via {self.confirmed_how}"
            if self.trace_path:
                head += f"\n    witness trace: {self.trace_path}"
            if self.replay_ok is not None:
                head += f" (replay {'ok' if self.replay_ok else 'DIVERGED'})"
        return head + "\n    " + self.detail.replace("\n", "\n    ")


def analyze_trace(events: list[TraceEvent], nprocs: int) -> list[Prediction]:
    """Run all predictive passes over one captured trace."""
    predictions: list[Prediction] = []

    race_by_key: dict[tuple, Prediction] = {}
    for f in lockset_pass(events):
        key = (f.region_cls, tuple(sorted(f.sites)))
        p = Prediction(
            kind="data-race",
            tiers=["lockset"],
            title=f"unlocked conflicting access on {f.region_cls}",
            detail=f.describe(),
            data={"region_cls": list(f.region_cls), "sites": list(f.sites)},
        )
        race_by_key[key] = p
        predictions.append(p)
    for f in weakened_hb_pass(events, nprocs):
        key = (f.region_cls, tuple(sorted(f.sites)))
        if key in race_by_key:
            race_by_key[key].tiers.append("weak-hb")
            continue
        predictions.append(
            Prediction(
                kind="data-race",
                tiers=["weak-hb"],
                title=f"reorderable conflicting access on {f.region_cls}",
                detail=f.describe(),
                data={"region_cls": list(f.region_cls), "sites": list(f.sites)},
            )
        )

    obligations = obligation_pass(events)
    if obligations:
        pairs = sorted({(f.thief, f.victim) for f in obligations})
        predictions.append(
            Prediction(
                kind="steal-after-vote",
                tiers=["obligation"],
                title="§5.3 dirty-mark discipline violated on steal path",
                detail="\n".join(f.describe() for f in obligations),
                data={"pairs": [list(p) for p in pairs]},
            )
        )

    for f in deadlock_pass(events):
        predictions.append(
            Prediction(
                kind="deadlock",
                tiers=["lock-graph"],
                title=f"lock-order cycle {' -> '.join(f.cycle)}",
                detail=f.describe(),
                data={"cycle": list(f.cycle)},
            )
        )
    return predictions


# ---------------------------------------------------------------------- #
# Confirmation
# ---------------------------------------------------------------------- #
class _NoGates:
    """Controller that never defers: the engine-default schedule,
    recorded pick-by-pick so it can be persisted and replayed."""

    def start(self, strategy) -> None:
        pass

    def on_event(self, ev, strategy) -> None:
        pass


def _witness_run(scenario, controller, engine_seed, mutation):
    """One monitored run under a witness controller; returns
    (outcome, detector)."""
    from repro.check.runner import run_once
    from repro.check.witness import WitnessStrategy

    holder = {}

    def hook(engine):
        det = RaceDetector.attach(engine, capture=True)
        det.capture.listeners.append(strategy.on_event)
        holder["det"] = det

    strategy = WitnessStrategy(controller)
    outcome = run_once(
        scenario, strategy, engine_seed=engine_seed, mutation=mutation,
        engine_hook=hook,
    )
    return outcome, holder["det"]


def _replay_run(scenario, decisions, engine_seed, mutation):
    """Replay a recorded decision list with the monitor re-attached."""
    from repro.check.runner import run_once
    from repro.check.strategies import ReplayStrategy

    holder = {}

    def hook(engine):
        holder["det"] = RaceDetector.attach(engine, capture=True)

    outcome = run_once(
        scenario, ReplayStrategy(decisions), engine_seed=engine_seed,
        mutation=mutation, engine_hook=hook,
    )
    return outcome, holder["det"]


def _persist_witness(
    pred, target, mutation, engine_seed, scenario, outcome, out_dir, ordinal=0
) -> None:
    from repro.check.traces import DecisionTrace

    if out_dir is None:
        return
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace = DecisionTrace(
        target=target,
        strategy="witness",
        strategy_seed=0,
        engine_seed=engine_seed,
        nprocs=scenario.nprocs,
        schedule_index=0,
        failure=outcome.describe(),
        mutation=mutation if mutation else "none",
        signature=outcome.signature_json,
        decisions=list(outcome.decisions),
    )
    stem = f"predict-{target}-{trace.mutation}-{pred.kind}-{ordinal}"
    pred.trace_path = str(trace.save(out_dir / f"{stem}.trace.json"))


def confirm_prediction(
    pred: Prediction,
    target: str,
    mutation: str | None = None,
    engine_seed: int = 0,
    out_dir: str | Path | None = None,
    ordinal: int = 0,
) -> Prediction:
    """Steer replays toward ``pred``'s reordering; upgrade on success."""
    from repro.check.scenarios import make_scenario
    from repro.check.witness import DeadlockWitness, DirtyMarkWitness

    scenario = make_scenario(target)

    def upgraded(outcome, how: str, window_check: bool) -> bool:
        """Persist + replay-verify a successful witness run."""
        pred.status = "CONFIRMED"
        pred.confirmed_how = how
        _persist_witness(
            pred, target, mutation, engine_seed, scenario, outcome, out_dir,
            ordinal=ordinal,
        )
        re_out, re_det = _replay_run(
            scenario, list(outcome.decisions), engine_seed, mutation
        )
        if window_check:
            pred.replay_ok = (
                find_mark_window(re_det.capture.events) is not None
            )
        else:
            pred.replay_ok = re_out.signature == outcome.signature
        return True

    if pred.kind == "data-race":
        outcome, det = _witness_run(scenario, _NoGates(), engine_seed, mutation)
        cls = tuple(pred.data.get("region_cls", []))
        hit = any(region_class(r.region) == cls for r in det.races)
        if hit:
            return pred if not upgraded(outcome, "observed-race-replay", False) else pred
        return pred

    if pred.kind == "steal-after-vote":
        # The predicted (thief, victim) castings first, then every other
        # non-root pairing: the discipline violation is global (the mark
        # path is gone for *all* steals), so any casting that opens the
        # window confirms it.  Root-involved castings are skipped — the
        # root has no vote for the witness to race against.
        variants: list[tuple[int, int]] = []
        for t, v in [tuple(p) for p in pred.data.get("pairs", [])]:
            if t != 0 and v != 0 and (t, v) not in variants:
                variants.append((t, v))
        for t in range(1, scenario.nprocs):
            for v in range(1, scenario.nprocs):
                if v != t and (t, v) not in variants:
                    variants.append((t, v))
        for t, v in variants[:6]:
            outcome, det = _witness_run(
                scenario, DirtyMarkWitness(t, v), engine_seed, mutation
            )
            if outcome.failed:
                upgraded(outcome, f"witness-replay-failure:{outcome.describe()}", False)
                return pred
            window = find_mark_window(det.capture.events)
            if window is not None:
                upgraded(
                    outcome,
                    "mark-after-vote-window (transfer seq "
                    f"{window['transfer_seq']} -> victim vote seq "
                    f"{window['vote_seq']} -> mark seq {window['mark_seq']})",
                    True,
                )
                return pred
        return pred

    if pred.kind == "deadlock":
        outcome, _det = _witness_run(
            scenario, DeadlockWitness(), engine_seed, mutation
        )
        if outcome.error is not None and outcome.error.startswith(
            "PredictedDeadlockError"
        ):
            upgraded(outcome, "deadlock-cycle-closed", False)
        return pred

    return pred  # pragma: no cover - exhaustive over kinds


# ---------------------------------------------------------------------- #
# Entry point
# ---------------------------------------------------------------------- #
@dataclass
class PredictReport:
    """Everything one ``repro.analyze predict`` invocation learned."""

    target: str
    mutation: str | None
    engine_seed: int
    events_captured: int
    base_error: str | None
    predictions: list[Prediction]

    @property
    def confirmed(self) -> int:
        return sum(1 for p in self.predictions if p.status == "CONFIRMED")

    def describe(self) -> str:
        mut = self.mutation or "none"
        head = (
            f"predict {self.target} (mutation {mut}): "
            f"{self.events_captured} events captured"
        )
        if self.base_error:
            head += f"; base run failed: {self.base_error}"
        if not self.predictions:
            return head + "\n  no predictions — trace is schedule-robust"
        lines = [
            head,
            f"  {len(self.predictions)} prediction(s), {self.confirmed} confirmed:",
        ]
        for p in self.predictions:
            lines.append("  " + p.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def predict(
    target: str,
    mutation: str | None = None,
    engine_seed: int = 0,
    confirm: bool = True,
    out_dir: str | Path | None = None,
) -> PredictReport:
    """Capture one default-schedule trace, analyze it, confirm findings."""
    run = capture_trace(target, mutation=mutation, engine_seed=engine_seed)
    predictions = analyze_trace(run.events, run.nprocs)
    if run.error is not None and run.error.startswith("PredictedDeadlockError"):
        # The wait-for monitor caught a cycle closing at request time —
        # the base run never actually wedged, so this is a prediction
        # too (of the hang the unmonitored run would have become), and
        # it preempts the lock-order graph seeing the nested acquires.
        if not any(p.kind == "deadlock" for p in predictions):
            predictions.append(
                Prediction(
                    kind="deadlock",
                    tiers=["wait-for"],
                    title="lock-acquisition cycle closed under monitoring",
                    detail=run.error,
                )
            )
    if confirm:
        for i, p in enumerate(predictions):
            confirm_prediction(
                p, target, mutation=mutation, engine_seed=engine_seed,
                out_dir=out_dir, ordinal=i,
            )
    return PredictReport(
        target=target,
        mutation=mutation,
        engine_seed=engine_seed,
        events_captured=len(run.events),
        base_error=run.error,
        predictions=predictions,
    )
