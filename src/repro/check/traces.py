"""Decision traces: persistence, replay metadata, and minimization.

A failing exploration run is summarized by a :class:`DecisionTrace` —
everything needed to re-execute the exact interleaving: the target
scenario, the engine seed, the mutation in force, and the strategy's
recorded decision list.  Traces serialize to JSON so a failure found in
CI can be replayed locally with ``python -m repro.check --replay``.

Minimization is delta debugging over the decision list: repeatedly
remove chunks (halving down to single decisions — the "drop-one" limit)
and keep any removal that still reproduces the failure.  Replay treats
missing decisions as "fall back to the deterministic order", so a
shortened trace remains executable; the minimizer only keeps removals
the failure survives.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.util.io import atomic_write_text

__all__ = ["DecisionTrace", "minimize_decisions"]

_FORMAT = 1


@dataclass
class DecisionTrace:
    """A replayable record of one explored schedule."""

    target: str
    strategy: str
    strategy_seed: int
    engine_seed: int
    nprocs: int
    schedule_index: int
    failure: str
    mutation: str = "none"
    #: JSON form of the failure signature (see ``RunOutcome.signature``);
    #: replay compares against this to decide "same failure".
    signature: list = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the trace as JSON (atomically); returns the path written.

        Atomic temp-file + ``os.replace``: parallel fleet workers
        persisting into one directory, or an interrupted campaign, can
        never leave a torn trace file.
        """
        path = Path(path)
        payload = {
            "format": _FORMAT,
            "target": self.target,
            "strategy": self.strategy,
            "strategy_seed": self.strategy_seed,
            "engine_seed": self.engine_seed,
            "nprocs": self.nprocs,
            "schedule_index": self.schedule_index,
            "failure": self.failure,
            "mutation": self.mutation,
            "signature": self.signature,
            "decisions": self.decisions,
        }
        return atomic_write_text(path, json.dumps(payload, indent=1))

    @classmethod
    def load(cls, path: str | Path) -> "DecisionTrace":
        """Read a trace previously written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        if data.get("format") != _FORMAT:
            raise ValueError(f"unsupported trace format {data.get('format')!r}")
        return cls(
            target=data["target"],
            strategy=data["strategy"],
            strategy_seed=data["strategy_seed"],
            engine_seed=data["engine_seed"],
            nprocs=data["nprocs"],
            schedule_index=data["schedule_index"],
            failure=data["failure"],
            mutation=data.get("mutation", "none"),
            signature=data.get("signature", []),
            decisions=data["decisions"],
        )


def minimize_decisions(
    decisions: list[dict],
    reproduces: Callable[[list[dict]], bool],
    max_replays: int = 200,
) -> tuple[list[dict], int]:
    """Shrink ``decisions`` while ``reproduces`` stays True.

    Chunked delta debugging: try dropping contiguous chunks, halving the
    chunk size down to one decision (greedy drop-one).  ``reproduces``
    is called with a candidate decision list and must return whether the
    original failure still occurs.  Stops after ``max_replays`` replay
    attempts so minimizing a long trace stays bounded.

    Returns:
        ``(minimized_decisions, replays_used)``.
    """
    current = list(decisions)
    replays = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        progressed = False
        while i < len(current):
            if replays >= max_replays:
                return current, replays
            candidate = current[:i] + current[i + chunk :]
            replays += 1
            if reproduces(candidate):
                current = candidate
                progressed = True
                # keep i: the next chunk has shifted into place
            else:
                i += chunk
        if chunk == 1 and not progressed:
            break
        chunk = max(1, chunk // 2) if chunk > 1 else (1 if progressed else 0)
    return current, replays
