"""Plain-text table and unit formatting for benchmark reports.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable without external
dependencies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_us(seconds: float, digits: int = 4) -> str:
    """Render a duration in seconds as microseconds, e.g. ``18.0819us``."""
    return f"{seconds * 1e6:.{digits}f}us"


def format_rate(per_second: float) -> str:
    """Render a rate as millions per second, e.g. ``63.1 M/s``."""
    return f"{per_second / 1e6:.2f} M/s"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
