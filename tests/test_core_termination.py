"""Tests for wave-based termination detection (§5.2-5.3)."""

from __future__ import annotations

import math

import pytest

from repro.armci.runtime import Armci
from repro.core.termination import (
    TerminationDetector,
    is_descendant,
    tree_children,
    tree_parent,
)
from repro.sim.engine import Engine
from repro.sim.counters import Counters


class TestTree:
    def test_parent_child_inverse(self):
        for n in (1, 2, 5, 16, 33):
            for r in range(n):
                for c in tree_children(r, n):
                    assert tree_parent(c) == r

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            tree_parent(0)

    def test_children_bounds(self):
        assert tree_children(0, 1) == []
        assert tree_children(0, 2) == [1]
        assert tree_children(0, 3) == [1, 2]
        assert tree_children(3, 8) == [7]

    def test_is_descendant(self):
        # tree: 0 -> (1, 2); 1 -> (3, 4); 2 -> (5, 6)
        assert is_descendant(3, 1)
        assert is_descendant(3, 0)
        assert is_descendant(6, 2)
        assert not is_descendant(3, 2)
        assert not is_descendant(1, 3)  # ancestor, not descendant
        assert not is_descendant(5, 5)  # proper descendant only

    def test_votes_before_means_descendant_votes_first(self):
        """In the up-wave, every node votes after all its descendants."""
        for r in range(1, 31):
            p = tree_parent(r)
            assert is_descendant(r, p)


def _make_detectors(eng, optimize=True, tag="td:test"):
    counters = Counters()
    dets: list[TerminationDetector] = []
    for r in range(eng.nprocs):
        dets.append(
            TerminationDetector(eng, r, tag, dets, optimize, counters)
        )
    return dets, counters


class TestDetection:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8, 16, 33])
    def test_all_idle_terminates(self, nprocs):
        eng = Engine(nprocs, max_events=500_000)
        dets, _ = _make_detectors(eng)

        def main(proc):
            td = dets[proc.rank]
            while not td.progress(proc, idle=True):
                proc.sleep(1e-6)
            return proc.now

        eng.spawn_all(main)
        res = eng.run()
        assert all(t < 1.0 for t in res.finish_times)

    def test_busy_process_delays_termination(self):
        eng = Engine(4, max_events=500_000)
        dets, _ = _make_detectors(eng)
        busy_until = 200e-6

        def main(proc):
            td = dets[proc.rank]
            while proc.rank == 3 and proc.now < busy_until:
                # active: forwards tokens but never votes
                td.progress(proc, idle=False)
                proc.sleep(5e-6)
            while not td.progress(proc, idle=True):
                proc.sleep(1e-6)
            return proc.now

        eng.spawn_all(main)
        res = eng.run()
        assert min(res.finish_times) >= busy_until

    def test_dirty_flag_forces_extra_wave(self):
        """A dirty rank makes the first wave come back black (re-vote)."""
        eng = Engine(4, max_events=500_000)
        dets, counters = _make_detectors(eng)
        dets[2].dirty = True

        def main(proc):
            td = dets[proc.rank]
            while not td.progress(proc, idle=True):
                proc.sleep(1e-6)

        eng.spawn_all(main)
        eng.run()
        assert counters.get(0, "waves") >= 2

    def test_clean_run_is_single_wave(self):
        eng = Engine(8, max_events=500_000)
        dets, counters = _make_detectors(eng)

        def main(proc):
            td = dets[proc.rank]
            while not td.progress(proc, idle=True):
                proc.sleep(1e-6)

        eng.spawn_all(main)
        eng.run()
        assert counters.get(0, "waves") == 1

    def test_message_count_is_order_p_per_wave(self):
        """§5.2: detection needs O(p) messages total, ~log(p) critical path."""
        for nprocs in (8, 32):
            eng = Engine(nprocs, max_events=500_000)
            dets, counters = _make_detectors(eng)

            def main(proc):
                td = dets[proc.rank]
                while not td.progress(proc, idle=True):
                    proc.sleep(1e-6)

            eng.spawn_all(main)
            eng.run()
            msgs = counters.total("td_msgs")
            # one wave: down (p-1) + up (p-1) + done (p-1)
            assert msgs == 3 * (nprocs - 1)


class TestDirtyMarkOptimization:
    def _steal_scenario(self, optimize: bool, thief: int, victim: int, voted: bool):
        eng = Engine(8, max_events=500_000)
        dets, counters = _make_detectors(eng, optimize=optimize)
        dets[thief].voted = voted

        def main(proc):
            if proc.rank == thief:
                # mirror the scheduler: the §5.3 mark applies inside the
                # steal's transfer, then note_steal records bookkeeping
                mark = dets[thief].steal_mark(proc, victim)
                if mark is not None:
                    mark()
                dets[thief].note_steal(proc, victim)
            proc.sync()

        eng.spawn_all(main)
        eng.run()
        return dets, counters

    def test_unoptimized_always_marks(self):
        dets, counters = self._steal_scenario(False, thief=1, victim=3, voted=False)
        assert counters.total("dirty_msgs") == 1
        assert dets[3].dirty

    def test_optimized_skips_when_thief_has_not_voted(self):
        dets, counters = self._steal_scenario(True, thief=1, victim=2, voted=False)
        assert counters.total("dirty_msgs") == 0
        assert counters.total("dirty_msgs_skipped") == 1
        assert dets[1].dirty, "thief must account for the steal itself"
        assert not dets[2].dirty

    def test_optimized_skips_when_victim_is_descendant(self):
        # 3 is a descendant of 1: pv votes-before pt
        dets, counters = self._steal_scenario(True, thief=1, victim=3, voted=True)
        assert counters.total("dirty_msgs") == 0
        assert counters.total("dirty_msgs_skipped") == 1

    def test_optimized_marks_when_needed(self):
        # thief 1 has voted and victim 2 is not its descendant
        dets, counters = self._steal_scenario(True, thief=1, victim=2, voted=True)
        assert counters.total("dirty_msgs") == 1
        assert dets[2].dirty

    def test_remote_add_marks_target_without_message(self):
        eng = Engine(4, max_events=500_000)
        dets, counters = _make_detectors(eng)

        def main(proc):
            if proc.rank == 0:
                dets[0].note_remote_add(proc, 2)
            proc.sync()

        eng.spawn_all(main)
        eng.run()
        assert dets[2].dirty
        assert dets[0].dirty
        assert counters.total("dirty_msgs") == 0

    def test_detection_time_about_2x_barrier(self):
        """§5.2 / Figure 4: termination is detected in roughly twice the
        time of a barrier (we allow 1x-8x to assert the order of magnitude)."""
        from repro.armci.collectives import armci_barrier_cost

        nprocs = 64
        eng = Engine(nprocs, max_events=2_000_000)
        dets, _ = _make_detectors(eng)

        def main(proc):
            td = dets[proc.rank]
            while not td.progress(proc, idle=True):
                proc.sleep(0.5e-6)
            return proc.now

        eng.spawn_all(main)
        res = eng.run()
        detect_time = max(res.finish_times)
        barrier = armci_barrier_cost(eng.machine, nprocs)
        assert barrier < detect_time < 8 * barrier


class TestScheduleSweep:
    """Seed sweeps via the model checker's RandomWalk strategy: the full
    protocol stack (split queues + stealing + wave termination) must stay
    clean under many adversarially-randomized schedules, not just the
    deterministic default one."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12))
    def test_termination_protocol_clean_under_random_schedules(self, seed):
        from repro.check.runner import run_once
        from repro.check.scenarios import make_scenario
        from repro.check.strategies import RandomWalk

        outcome = run_once(make_scenario("termination"), RandomWalk(seed=seed))
        assert outcome.error is None
        assert outcome.violations == []

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(12))
    def test_steal_only_workload_clean_under_random_schedules(self, seed):
        from repro.check.runner import run_once
        from repro.check.scenarios import make_scenario
        from repro.check.strategies import RandomWalk

        outcome = run_once(make_scenario("steals"), RandomWalk(seed=seed))
        assert outcome.error is None
        assert outcome.violations == []

