#!/usr/bin/env python3
"""Self-Consistent Field over Global Arrays: Scioto vs the original counter.

Runs the paper's §6.2 SCF comparison on a synthetic model Hamiltonian:
the Fock build is decomposed into screened, irregular block tasks;
the Scioto version seeds them at the owners of their Fock blocks, the
original version claims (all, including screened-out) pairs through a
shared global counter.  Both must produce bit-identical energies to the
sequential reference — the schedule cannot change the chemistry.

Run:
    python examples/scf_demo.py [nprocs]
"""

import sys

import numpy as np

from repro.apps.scf import (
    SCFProblem,
    run_scf_original,
    run_scf_scioto,
    run_scf_sequential,
)
from repro.sim.machines import heterogeneous_cluster


def main(nprocs: int = 8) -> None:
    problem = SCFProblem(nblocks=20, blocksize=5)
    iters = 4
    print(f"SCF: {problem.nbf} basis functions, "
          f"{len(problem.significant_pairs())} significant of "
          f"{len(problem.all_pairs())} block pairs, {iters} iterations\n")

    seq = run_scf_sequential(problem, iterations=iters)
    machine = heterogeneous_cluster(nprocs)
    scioto = run_scf_scioto(nprocs, problem, iterations=iters, machine=machine)
    orig = run_scf_original(nprocs, problem, iterations=iters, machine=machine)

    print("iter   E(sequential)      E(scioto)          E(original)")
    for it, (e0, e1, e2) in enumerate(zip(seq, scioto.energies, orig.energies)):
        print(f"{it:3d}   {e0:+.12f}  {e1:+.12f}  {e2:+.12f}")
    assert np.allclose(seq, scioto.energies, atol=1e-10)
    assert np.allclose(seq, orig.energies, atol=1e-10)

    print(f"\nvirtual runtime on {nprocs} ranks: "
          f"scioto {scioto.elapsed * 1e3:.1f} ms "
          f"(fock {scioto.fock_time * 1e3:.1f} ms), "
          f"original {orig.elapsed * 1e3:.1f} ms "
          f"(fock {orig.fock_time * 1e3:.1f} ms)")
    print("energies identical across schedulers: True")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
