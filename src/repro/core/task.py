"""Task descriptors: a standard header wrapping an opaque user body (§2.1).

A task descriptor is the unit of transfer between queues.  The header
carries the callback handle, the task's affinity for the process it was
placed on, and size bookkeeping; the body is an arbitrary user payload
(the paper's "contiguous buffer", here any deep-copyable Python object).
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Task", "AFFINITY_HIGH", "AFFINITY_LOW", "TASK_HEADER_BYTES"]

_uid_counter = itertools.count(1)

#: Types whose instances need no copying: immutable all the way down.
_ATOMIC_TYPES = (type(None), bool, int, float, complex, str, bytes, frozenset)
#: Same set, as exact types for the hot membership test.  Subclasses of
#: an atomic type fall through to ``deepcopy`` — the safe direction,
#: since a subclass may add mutable state.
_ATOMIC_TYPE_SET = frozenset(_ATOMIC_TYPES)

_frozen_dataclass_cache: dict[type, bool] = {}


def _is_frozen_dataclass(tp: type) -> bool:
    cached = _frozen_dataclass_cache.get(tp)
    if cached is None:
        params = getattr(tp, "__dataclass_params__", None)
        cached = params is not None and bool(params.frozen)
        _frozen_dataclass_cache[tp] = cached
    return cached


def _copy_body(body: Any) -> Any:
    """Copy-in/out a task body, sharing immutable payloads.

    ``deepcopy`` dominates ``tc_add`` cost for the benchmark apps even
    though their bodies (UTS node digests, SCF index tuples) are
    immutable; atomic values — and tuples or frozen dataclasses holding
    only atomic values — are safe to share since neither side can mutate
    them through the reference.
    """
    tp = type(body)
    if tp in _ATOMIC_TYPE_SET:
        return body
    if tp is tuple:
        if all(type(v) in _ATOMIC_TYPE_SET for v in body):
            return body
    elif _is_frozen_dataclass(tp):
        try:
            values = vars(body).values()
        except TypeError:  # slotted dataclass: no __dict__
            return copy.deepcopy(body)
        if all(type(v) in _ATOMIC_TYPE_SET for v in values):
            return body
    return copy.deepcopy(body)

#: Bytes of task meta-data (Figure 1's header) charged on every transfer.
TASK_HEADER_BYTES = 64

#: Convenience affinity levels matching the paper's example usage.
AFFINITY_HIGH = 100
AFFINITY_LOW = 0


@dataclass
class Task:
    """A task descriptor.

    Attributes:
        callback: Handle returned by ``TaskCollection.register``; looked
            up in the executing rank's local callback table at dispatch.
        body: User-supplied arguments; any deep-copyable object.  Copied
            on ``tc_add`` (copy-in/out semantics, §3.1) so the caller's
            buffer is immediately reusable.
        affinity: Priority of the task for the process it is placed on.
            High-affinity tasks execute locally first; low-affinity tasks
            are stolen first (§5.1).
        body_size: Wire size of the body in bytes, used by the cost
            model.  Defaults to the collection's ``task_size`` when added.
        created_by: Rank that created the task (set by ``add``).
        uid: Process-wide unique identity of this descriptor instance.
            ``clone`` allocates a fresh uid, so the instance queued by
            ``tc_add`` is distinguishable from the caller's buffer — this
            is what the ``repro.check`` invariants (exactly-once
            execution, queue consistency) track through the event stream.
    """

    callback: int
    body: Any = None
    affinity: int = AFFINITY_LOW
    body_size: int | None = None
    created_by: int = field(default=-1, compare=False)
    uid: int = field(
        default_factory=lambda: next(_uid_counter), compare=False, repr=False
    )

    def wire_size(self, default_body_size: int) -> int:
        """Total bytes moved when this descriptor is transferred."""
        body = self.body_size if self.body_size is not None else default_body_size
        return TASK_HEADER_BYTES + body

    def clone(self) -> "Task":
        """Deep copy, implementing the copy-in/out semantics of ``tc_add``.

        Built via ``__new__`` plus direct attribute stores: ``tc_add``
        clones every descriptor, so the dataclass ``__init__`` (default
        processing, keyword binding) is measurable overhead on the
        scheduler's hot path.
        """
        t = Task.__new__(Task)
        t.callback = self.callback
        t.body = _copy_body(self.body)
        t.affinity = self.affinity
        t.body_size = self.body_size
        t.created_by = self.created_by
        t.uid = next(_uid_counter)
        return t
