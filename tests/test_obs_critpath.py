"""Causal graph, critical path, blame decomposition, what-if projection."""

from __future__ import annotations

import pytest

from repro.obs.critpath import (
    BLAME_CATEGORIES,
    CausalGraph,
    blame_profile,
    critical_path,
    edge_blame,
    render_critical_path,
)
from repro.obs.record import EdgeRecord, SpanRecord
from repro.obs.scenarios import run_target
from repro.obs.whatif import parse_scales, project, render_projection


def _span(rank, name, cat, start, end):
    return SpanRecord(rank=rank, name=name, category=cat, start=start, end=end)


def _edge(eid, kind, src_rank, src_time, dst_rank, dst_time, detail=None):
    return EdgeRecord(eid, kind, src_rank, src_time, dst_rank, dst_time, detail)


class TestBlameProfile:
    def test_covers_window_exactly(self):
        spans = [_span(0, "t", "task", 1.0, 3.0)]
        pieces = blame_profile(spans, 0.0, 4.0)
        assert pieces[0] == (0.0, 1.0, "idle")
        assert pieces[1] == (1.0, 3.0, "task")
        assert pieces[2] == (3.0, 4.0, "idle")
        assert sum(e - s for s, e, _ in pieces) == 4.0

    def test_innermost_span_wins(self):
        spans = [
            _span(0, "outer", "task", 0.0, 10.0),
            _span(0, "inner", "steal", 2.0, 5.0),
        ]
        pieces = blame_profile(spans, 0.0, 10.0)
        assert (2.0, 5.0, "steal") in pieces

    def test_transparent_comm_falls_through_to_enclosing(self):
        spans = [
            _span(0, "steal", "steal", 0.0, 4.0),
            _span(0, "get", "comm", 1.0, 2.0),  # comm inside a steal = steal
        ]
        pieces = blame_profile(spans, 0.0, 4.0)
        assert pieces == [(0.0, 4.0, "steal")]

    def test_bare_comm_blames_comm(self):
        spans = [_span(0, "get", "comm", 0.0, 1.0)]
        assert blame_profile(spans, 0.0, 1.0) == [(0.0, 1.0, "comm")]

    def test_empty_and_degenerate_windows(self):
        assert blame_profile([], 0.0, 2.0) == [(0.0, 2.0, "idle")]
        assert blame_profile([], 1.0, 1.0) == []


class TestCausalGraph:
    def test_segments_cut_at_edge_endpoints(self):
        spans = [_span(0, "t", "task", 0.0, 10.0), _span(1, "u", "task", 0.0, 10.0)]
        edges = [_edge(0, "steal", 0, 4.0, 1, 6.0)]
        g = CausalGraph.build(spans, edges, nprocs=2)
        assert g.points[0] == [0.0, 4.0, 10.0]
        assert g.points[1] == [0.0, 6.0, 10.0]
        assert g.makespan == 10.0

    def test_segment_blame_durations_cover_rank_timeline(self):
        spans = [_span(0, "t", "task", 2.0, 8.0)]
        g = CausalGraph.build(spans, [], nprocs=1)
        total = sum(sum(b.values()) for b in g.segments[0])
        assert total == pytest.approx(g.makespan)

    def test_end_rank_is_the_rank_whose_activity_reaches_t1(self):
        spans = [
            _span(0, "short", "task", 0.0, 4.0),
            _span(1, "long", "task", 0.0, 10.0),
        ]
        g = CausalGraph.build(spans, [], nprocs=2)
        assert g.end_rank == 1


class TestCriticalPath:
    def test_single_rank_path_is_its_whole_timeline(self):
        spans = [_span(0, "t", "task", 0.0, 5.0)]
        g = CausalGraph.build(spans, [], nprocs=1)
        path = critical_path(g)
        assert path.makespan == 5.0
        assert sum(path.blame().values()) == pytest.approx(5.0)
        assert path.blame()["task"] == pytest.approx(5.0)
        assert path.hops() == 0

    def test_path_hops_across_edge_when_destination_was_waiting(self):
        # Rank 1 idles until a steal edge releases it at t=6, then works.
        spans = [
            _span(0, "work", "task", 0.0, 6.0),
            _span(1, "stolen", "task", 6.0, 10.0),
        ]
        edges = [_edge(0, "steal", 0, 4.0, 1, 6.0)]
        g = CausalGraph.build(spans, edges, nprocs=2)
        path = critical_path(g)
        assert path.hops() == 1
        kinds = [s.kind for s in path.steps]
        assert kinds[-1] == "local" and "edge" in kinds
        # contiguity => exact decomposition
        assert sum(path.blame().values()) == pytest.approx(path.makespan)
        assert path.blame()["steal"] == pytest.approx(2.0)  # the 4->6 hop

    def test_path_stays_local_when_destination_was_busy(self):
        # Rank 1 was computing when the edge arrived: no hop.
        spans = [
            _span(0, "work", "task", 0.0, 6.0),
            _span(1, "busy", "task", 0.0, 10.0),
        ]
        edges = [_edge(0, "steal", 0, 4.0, 1, 6.0)]
        g = CausalGraph.build(spans, edges, nprocs=2)
        path = critical_path(g)
        assert path.hops() == 0
        assert all(s.rank == 1 for s in path.steps)

    def test_zero_latency_edge_cannot_bind(self):
        spans = [_span(1, "w", "task", 4.0, 10.0)]
        edges = [_edge(0, "dirty", 0, 4.0, 1, 4.0)]
        g = CausalGraph.build(spans, edges, nprocs=2)
        path = critical_path(g)  # must terminate and stay contiguous
        assert sum(path.blame().values()) == pytest.approx(path.makespan)

    def test_steps_are_time_ordered_and_contiguous(self):
        run = run_target("steals")
        g = CausalGraph.from_recorder(run.recorder)
        path = critical_path(g)
        assert path.steps
        t = path.t0
        for step in path.steps:
            assert step.start == pytest.approx(t)
            t = step.end
        assert t == pytest.approx(path.t1)

    def test_blame_sums_to_makespan_on_real_run(self):
        run = run_target("uts-tiny")
        g = CausalGraph.from_recorder(run.recorder)
        path = critical_path(g)
        assert g.makespan == pytest.approx(run.elapsed)
        assert sum(path.blame().values()) == pytest.approx(path.makespan)
        assert sum(path.blame_fractions().values()) == pytest.approx(1.0)
        assert set(path.blame()) <= set(BLAME_CATEGORIES)

    def test_render_mentions_every_blamed_category(self):
        run = run_target("steals")
        g = CausalGraph.from_recorder(run.recorder)
        path = critical_path(g)
        text = render_critical_path(path, g, top=3)
        assert "critical path:" in text
        for cat in path.blame():
            assert cat in text


class TestEdgeBlame:
    def test_kind_mapping(self):
        assert edge_blame(_edge(0, "steal", 0, 0, 1, 1)) == "steal"
        assert edge_blame(_edge(0, "lock", 0, 0, 1, 1)) == "lock"
        assert edge_blame(_edge(0, "dirty", 0, 0, 1, 1)) == "wave"
        assert edge_blame(_edge(0, "spawn", 0, 0, 1, 1)) == "task"
        assert edge_blame(_edge(0, "msg", 0, 0, 1, 1, detail="td:tc0:g1")) == "wave"
        assert edge_blame(_edge(0, "msg", 0, 0, 1, 1, detail="app")) == "comm"


class TestWhatIf:
    def test_identity_scales_reproduce_measured_makespan(self):
        run = run_target("uts-tiny")
        g = CausalGraph.from_recorder(run.recorder)
        proj = project(g, {})
        assert proj.projected_makespan == pytest.approx(proj.measured_makespan)
        assert proj.speedup == pytest.approx(1.0)

    def test_shrinking_any_category_never_slows_the_projection(self):
        run = run_target("uts-tiny")
        g = CausalGraph.from_recorder(run.recorder)
        for cat in ("task", "steal", "lock", "wave", "comm"):
            proj = project(g, {cat: 0.5})
            assert proj.projected_makespan <= proj.measured_makespan + 1e-12

    def test_halving_everything_projects_a_real_speedup(self):
        run = run_target("uts-tiny")
        g = CausalGraph.from_recorder(run.recorder)
        scales = {cat: 0.5 for cat in BLAME_CATEGORIES}
        proj = project(g, scales)
        assert proj.speedup > 1.0
        assert "projected speedup" in render_projection(proj)

    def test_elastic_wait_shrinks_with_its_releasing_edge(self):
        # Rank 1's idle until the steal landed is slack: halving the
        # producer's task time must pull the whole makespan in.
        spans = [
            _span(0, "work", "task", 0.0, 6.0),
            _span(1, "stolen", "task", 6.0, 10.0),
        ]
        edges = [_edge(0, "steal", 0, 6.0, 1, 6.0)]
        g = CausalGraph.build(spans, edges, nprocs=2)
        proj = project(g, {"task": 0.5})
        assert proj.projected_makespan == pytest.approx(5.0)  # 3 + 2

    def test_non_elastic_idle_is_not_shrunk(self):
        # No edge explains the gap, so the projection refuses to close it.
        spans = [
            _span(0, "a", "task", 0.0, 2.0),
            _span(0, "b", "task", 6.0, 8.0),
        ]
        g = CausalGraph.build(spans, [], nprocs=1)
        proj = project(g, {"task": 0.5})
        assert proj.projected_makespan == pytest.approx(6.0)  # 1 + 4 + 1

    def test_parse_scales(self):
        assert parse_scales(["steal=0.5", "task=2"]) == {"steal": 0.5, "task": 2.0}
        with pytest.raises(ValueError):
            parse_scales(["steal"])
        with pytest.raises(ValueError):
            parse_scales(["bogus=0.5"])
        with pytest.raises(ValueError):
            parse_scales(["steal=-1"])


class TestDeterminism:
    def test_path_and_projection_identical_across_runs(self):
        def once():
            run = run_target("steals")
            g = CausalGraph.from_recorder(run.recorder)
            path = critical_path(g)
            proj = project(g, {"steal": 0.5})
            return (
                [(s.kind, s.rank, s.start, s.end) for s in path.steps],
                path.blame(),
                proj.projected_makespan,
            )

        assert once() == once()
