"""Trajectory differ: schema walkers, direction heuristics, CLI gate."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs.diff import diff_documents, diff_files, render_diff
from repro.obs.export import metrics_dict, write_metrics_json
from repro.obs.scenarios import run_target


def _bench_doc():
    return {
        "schema": "repro-bench/1",
        "experiments": [
            {
                "experiment": "table1",
                "series": [
                    {"label": "cluster-measured", "unit": "us",
                     "xs": [0, 1], "ys": [0.5, 20.0]},
                    {"label": "speedup", "unit": "x",
                     "xs": [1, 2], "ys": [1.0, 1.9]},
                ],
            }
        ],
    }


def _wall_doc():
    return {
        "schema": "repro-bench-wall/1",
        "entries": [
            {"scenario": "queue", "backend": "thread", "nprocs": 4, "seed": 0,
             "events": 234, "best_wall_s": 0.002},
        ],
    }


class TestBenchDiff:
    def test_identical_documents_are_clean(self):
        report = diff_documents(_bench_doc(), _bench_doc())
        assert report.ok
        assert not report.changes
        assert "0 regressed" in render_diff(report)

    def test_time_series_regress_upward(self):
        new = _bench_doc()
        new["experiments"][0]["series"][0]["ys"][1] = 30.0  # +50% on a us series
        report = diff_documents(_bench_doc(), new)
        assert not report.ok
        (regress,) = report.regressions
        assert regress.key == "table1/cluster-measured"
        assert regress.metric == "ys[1]"
        assert regress.rel == pytest.approx(0.5)

    def test_time_series_improve_downward(self):
        new = _bench_doc()
        new["experiments"][0]["series"][0]["ys"][1] = 10.0
        report = diff_documents(_bench_doc(), new)
        assert report.ok
        assert any(e.status == "improve" for e in report.entries)

    def test_speedup_series_regress_downward(self):
        new = _bench_doc()
        new["experiments"][0]["series"][1]["ys"][1] = 1.0  # speedup dropped
        report = diff_documents(_bench_doc(), new)
        assert not report.ok
        assert report.regressions[0].key == "table1/speedup"

    def test_within_threshold_is_noise(self):
        new = _bench_doc()
        new["experiments"][0]["series"][0]["ys"][1] = 21.0  # +5%
        assert diff_documents(_bench_doc(), new, threshold=0.10).ok

    def test_removed_series_reported(self):
        new = _bench_doc()
        del new["experiments"][0]["series"][1]
        report = diff_documents(_bench_doc(), new)
        assert any(e.status == "removed" for e in report.entries)

    def test_length_mismatch_is_a_regression(self):
        new = _bench_doc()
        new["experiments"][0]["series"][0]["ys"] = [0.5]
        new["experiments"][0]["series"][0]["xs"] = [0]
        report = diff_documents(_bench_doc(), new)
        assert any(e.status == "mismatch" for e in report.regressions)


class TestWallDiff:
    def test_event_count_drift_is_a_mismatch_even_below_threshold(self):
        new = _wall_doc()
        new["entries"][0]["events"] = 235  # <1% off, but exact-match metric
        report = diff_documents(_wall_doc(), new)
        assert any(
            e.metric == "events" and e.status == "mismatch"
            for e in report.regressions
        )

    def test_wall_time_regresses_with_threshold(self):
        new = _wall_doc()
        new["entries"][0]["best_wall_s"] = 0.004
        report = diff_documents(_wall_doc(), new, threshold=0.5)
        assert any(e.metric == "best_wall_s" for e in report.regressions)
        assert diff_documents(_wall_doc(), new, threshold=2.0).ok


class TestMetricsDiff:
    def test_real_metrics_roundtrip_is_clean(self):
        doc = metrics_dict(run_target("steals").recorder)
        report = diff_documents(doc, copy.deepcopy(doc))
        assert report.ok and not report.changes

    def test_counter_drift_warns_without_regressing(self):
        doc = metrics_dict(run_target("steals").recorder)
        doc["counters"]["total"]["steal_attempts"] = 100.0
        new = copy.deepcopy(doc)
        new["counters"]["total"]["steal_attempts"] = 250.0
        report = diff_documents(doc, new)
        assert report.ok  # counters are direction-neutral
        assert any(e.status == "changed" for e in report.changes)

    def test_v1_document_diffs_against_v2(self):
        doc = metrics_dict(run_target("steals").recorder)
        old = copy.deepcopy(doc)
        old["schema"] = "repro-obs-metrics/1"
        for h in old["histograms"].values():  # /1 had no stored percentiles
            for k in ("p50", "p95", "p99"):
                h.pop(k, None)
        report = diff_documents(old, doc)
        assert report.ok


class TestWindowsDiff:
    def _doc(self):
        return metrics_dict(run_target("steals", window=50e-6).recorder)

    def test_windowed_roundtrip_is_clean(self):
        doc = self._doc()
        assert doc["windows"]["series"]  # windows actually present
        report = diff_documents(doc, copy.deepcopy(doc))
        assert report.ok and not report.changes

    def test_worst_window_latency_spike_regresses(self):
        old = self._doc()
        new = copy.deepcopy(old)
        for w in new["windows"]["series"]:
            h = w["histograms"].get("steal_fail_latency")
            if h:
                h["p99"] *= 3.0
        report = diff_documents(old, new)
        (regress,) = [e for e in report.regressions
                      if e.key == "windows/steal_fail_latency"]
        assert regress.metric == "worst p99"

    def test_count_style_window_metrics_warn_without_regressing(self):
        old = self._doc()
        new = copy.deepcopy(old)
        for w in new["windows"]["series"]:
            h = w["histograms"].get("steal_chunk")
            if h:
                h["p99"] *= 3.0
        report = diff_documents(old, new)
        assert report.ok  # chunk sizes are direction-neutral
        assert any(e.key == "windows/steal_chunk" for e in report.changes)

    def test_interval_change_is_a_mismatch(self):
        old = self._doc()
        new = copy.deepcopy(old)
        new["windows"]["interval"] *= 2
        report = diff_documents(old, new)
        assert any(
            e.key == "windows" and e.status == "mismatch"
            for e in report.regressions
        )


class TestSchemaHandling:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            diff_documents({"schema": "bogus/1"}, {"schema": "bogus/1"})

    def test_cross_schema_rejected(self):
        with pytest.raises(ValueError, match="schema mismatch"):
            diff_documents(_bench_doc(), _wall_doc())


class TestCli:
    def test_diff_command_warn_only_by_default(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        doc = _bench_doc()
        old.write_text(json.dumps(doc))
        doc["experiments"][0]["series"][0]["ys"][1] = 40.0
        new.write_text(json.dumps(doc))
        assert main(["diff", str(old), str(new)]) == 0  # warn-only
        assert "regress" in capsys.readouterr().out
        assert main(["diff", str(old), str(new), "--fail-on-regress"]) == 1
        assert main(["diff", str(old), str(old), "--fail-on-regress"]) == 0

    def test_diff_files_on_committed_baseline(self):
        report = diff_files("BENCH_sim.json", "BENCH_sim.json")
        assert report.ok and report.entries

    def test_critpath_check_and_whatif_commands(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        trace = tmp_path / "crit.json"
        assert main(["critpath", "uts-tiny", "--check",
                     "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "check ok" in out and "critical path:" in out
        doc = json.loads(trace.read_text())
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert {"s", "f"} <= phs  # causal-edge flow arrows
        assert any(e.get("pid") == 1 for e in doc["traceEvents"])  # highlight
        assert main(["whatif", "uts-tiny", "--scale", "steal=0.5"]) == 0
        assert "projected speedup" in capsys.readouterr().out
        assert main(["whatif", "uts-tiny", "--scale", "nope=1"]) == 2

    def test_summarize_prints_percentiles_with_metrics(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        run = run_target("steals")
        trace = tmp_path / "t.json"
        metrics = write_metrics_json(run.recorder, tmp_path / "m.json")
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(run.recorder, trace)
        assert main(["summarize", str(trace), "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "histogram percentiles" in out and "p95" in out
