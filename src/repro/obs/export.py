"""Exporters: Chrome ``trace_event`` JSON, metrics JSON, ASCII timeline.

Three views of one recording:

* :func:`chrome_trace` — the Chrome/Perfetto ``trace_event`` format
  (load the file at https://ui.perfetto.dev or ``chrome://tracing``).
  One track (``tid``) per rank, spans as complete (``"ph": "X"``)
  events, marker events as instants (``"ph": "i"``), and cross-rank
  causal edges as flow arrows (``"ph": "s"``/``"f"`` pairs sharing an
  ``id``) — Perfetto draws an arrow from, e.g., the victim-side queue
  release to the thief's steal span.  Spawn edges are omitted by
  default (tens of thousands of arrows hide the interesting ones).
  When a :class:`repro.obs.critpath.CritPath` is passed, its steps are
  rendered as a separate "critical path" process (``pid`` 1) so the
  makespan-determining chain is visible above the rank tracks.
  Timestamps are microseconds of *virtual* time.
* :func:`metrics_dict` — a flat JSON document with counter totals,
  per-rank counters, gauges, and histograms (each carrying its
  mergeable quantile sketch), suitable for diffing between runs.
* :func:`ascii_timeline` + :func:`summary_table` — terminal rendering:
  one row per rank, one character per time bucket, colored by the
  dominant span category, plus a per-rank breakdown of where virtual
  time went.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.obs.record import EdgeRecord, InstantRecord, Recorder, SpanRecord
from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.tracing import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dict",
    "write_metrics_json",
    "ascii_timeline",
    "summary_table",
    "self_times",
    "meta_events",
    "span_event",
    "instant_event",
    "flow_event_pair",
    "METRICS_SCHEMA",
    "FLOW_KINDS",
]

#: Schema tag stamped into every metrics JSON document.  ``/2`` added
#: p50/p95/p99 to each histogram; readers accept both (see
#: :func:`repro.obs.analyze.load_metrics_json`).  Each ``/2`` histogram
#: also carries a ``sketch`` key — the serialized
#: :class:`~repro.obs.metrics.QuantileSketch` — so documents from
#: different runs/workers merge into exact percentile estimates
#: (:meth:`~repro.obs.metrics.MetricsRegistry.merge_dict`); readers
#: that predate the key ignore it.
METRICS_SCHEMA = "repro-obs-metrics/2"

#: Causal-edge kinds exported as Perfetto flow arrows by default.
FLOW_KINDS: tuple[str, ...] = ("steal", "msg", "lock", "dirty")

#: Category -> single character used by the ASCII timeline, in priority
#: order (earlier wins when a bucket holds several categories).
CATEGORY_CHARS: tuple[tuple[str, str], ...] = (
    ("task", "T"),
    ("steal", "S"),
    ("queue", "Q"),
    ("lock", "L"),
    ("termination", "W"),
    ("comm", "C"),
    ("idle", "i"),
    ("runtime", "r"),
)


def _span_args(span: SpanRecord) -> dict | None:
    if span.detail is None:
        return None
    return {"detail": str(span.detail)}


# ---------------------------------------------------------------------- #
# Shared event builders: one definition of each Chrome event's exact
# shape (and dict key order — the streamed pack in repro.obs.stream
# reuses these to stay byte-identical with the in-memory exporter).
# ---------------------------------------------------------------------- #
def meta_events(nprocs: int, pid: int = 0, process: str = "scioto-sim") -> list[dict]:
    """Process/thread metadata events for one simulated engine's tracks."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process},
        }
    ]
    if pid != 0:
        # Fleet-merged traces: keep worker processes in worker-id order.
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for r in range(nprocs):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": r,
                "args": {"name": f"rank {r}"},
            }
        )
        # Perfetto sorts tracks by this index; keep rank order.
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": r,
                "args": {"sort_index": r},
            }
        )
    return events


def span_event(span: SpanRecord, pid: int = 0) -> dict:
    """One finished span as a complete (``"ph": "X"``) event."""
    ev = {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": pid,
        "tid": span.rank,
    }
    args = _span_args(span)
    if args is not None:
        ev["args"] = args
    return ev


def instant_event(inst: InstantRecord, pid: int = 0) -> dict:
    """One marker as a thread-scoped instant (``"ph": "i"``) event."""
    return {
        "name": inst.name,
        "cat": inst.category,
        "ph": "i",
        "s": "t",  # thread-scoped instant
        "ts": inst.time * 1e6,
        "pid": pid,
        "tid": inst.rank,
    }


def flow_event_pair(
    edge: EdgeRecord, pid: int = 0, eid_offset: int = 0
) -> tuple[dict, dict]:
    """One causal edge as a Perfetto flow-arrow ``("s", "f")`` pair."""
    base = {
        "name": edge.kind,
        "cat": "causal",
        "id": edge.eid + eid_offset,
        "pid": pid,
    }
    if edge.detail is not None:
        base["args"] = {"detail": str(edge.detail)}
    start = {**base, "ph": "s", "ts": edge.src_time * 1e6, "tid": edge.src_rank}
    # bp:"e" binds the arrow head to the enclosing slice (the steal
    # span / lock-wait span the edge released).
    finish = {
        **base, "ph": "f", "bp": "e", "ts": edge.dst_time * 1e6,
        "tid": edge.dst_rank,
    }
    return start, finish


def chrome_trace(
    recorder: Recorder,
    tracer: "Tracer | None" = None,
    critpath: "object | None" = None,
    flow_kinds: tuple[str, ...] = FLOW_KINDS,
) -> dict:
    """Build a Chrome ``trace_event`` document from a recording.

    Args:
        recorder: The engine's span/metrics recorder.
        tracer: Optional structured-event tracer; its events are added
            as instant events on the owning rank's track.
        critpath: Optional :class:`repro.obs.critpath.CritPath`; its
            steps become a highlighted "critical path" process.
        flow_kinds: Causal-edge kinds to draw as flow arrows.
    """
    events: list[dict] = meta_events(recorder.engine.nprocs)
    span_events = []
    for span in recorder.spans:
        if span.end is None:
            continue  # still open: the run aborted inside this span
        span_events.append(span_event(span))
    # Spans recorded out-of-stack (Recorder.complete_span) are appended
    # at close time; re-sort so each rank's track is start-ordered, with
    # the enclosing span first on ties.
    span_events.sort(key=lambda e: (e["tid"], e["ts"], -e["dur"]))
    events.extend(span_events)
    for inst in recorder.instants:
        events.append(instant_event(inst))
    if tracer is not None:
        for e in tracer.events:
            events.append(
                {
                    "name": e.kind,
                    "cat": "trace",
                    "ph": "i",
                    "s": "t",
                    "ts": e.time * 1e6,
                    "pid": 0,
                    "tid": e.rank,
                    "args": {} if e.detail is None else {"detail": str(e.detail)},
                }
            )
    flows = 0
    for edge in recorder.edges:
        if edge.kind not in flow_kinds:
            continue
        flows += 1
        start, finish = flow_event_pair(edge)
        events.append(start)
        events.append(finish)
    if critpath is not None:
        events.extend(_critpath_events(critpath))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs",
            "spans_recorded": recorder.span_count,
            "spans_dropped": recorder.dropped,
            "edges_recorded": recorder.edge_count,
            "flow_events": flows,
        },
    }


def _critpath_events(critpath) -> list[dict]:
    """Render a ``CritPath`` as its own Perfetto process (``pid`` 1)."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "critical path"},
        },
        {
            "name": "process_sort_index",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"sort_index": -1},  # above the rank tracks
        },
    ]
    for step in critpath.steps:
        blame = max(step.blame.items(), key=lambda kv: kv[1])[0] if step.blame else "idle"
        name = f"{step.name} hop" if step.kind == "edge" else blame
        events.append(
            {
                "name": name,
                "cat": "critpath",
                "ph": "X",
                "ts": step.start * 1e6,
                "dur": step.duration * 1e6,
                "pid": 1,
                "tid": 0,
                "args": {
                    "rank": step.rank,
                    "kind": step.kind,
                    "blame": blame,
                },
            }
        )
    return events


def write_chrome_trace(
    recorder: Recorder,
    path: str | Path,
    tracer: "Tracer | None" = None,
    critpath: "object | None" = None,
) -> Path:
    """Write the Chrome trace JSON to ``path`` (atomically) and return it."""
    path = Path(path)
    atomic_write_text(
        path, json.dumps(chrome_trace(recorder, tracer, critpath=critpath))
    )
    return path


def metrics_dict(
    recorder: Recorder, process_stats: list[dict] | None = None
) -> dict:
    """Flat metrics document: counters, gauges, histograms, span stats."""
    doc = {
        "schema": METRICS_SCHEMA,
        "nprocs": recorder.engine.nprocs,
        **recorder.metrics.to_dict(),
        "spans": {
            "recorded": recorder.span_count,
            "dropped": recorder.dropped,
            "instants": recorder.instant_count,
            "by_category": dict(sorted(recorder.category_counts.items())),
        },
    }
    if recorder.windows is not None:
        doc["windows"] = recorder.windows.to_dict()
    if process_stats is not None:
        doc["process_stats"] = process_stats
    return doc


def write_metrics_json(
    recorder: Recorder,
    path: str | Path,
    process_stats: list[dict] | None = None,
) -> Path:
    """Write the metrics JSON to ``path`` (atomically) and return it."""
    path = Path(path)
    atomic_write_text(
        path, json.dumps(metrics_dict(recorder, process_stats), indent=2)
    )
    return path


# ---------------------------------------------------------------------- #
# Terminal rendering
# ---------------------------------------------------------------------- #
def _category_priority() -> dict[str, int]:
    return {cat: i for i, (cat, _) in enumerate(CATEGORY_CHARS)}


def ascii_timeline(
    spans: list[SpanRecord], nprocs: int, width: int = 80
) -> str:
    """One row per rank, one character per time bucket.

    The character is the highest-priority span category active in that
    bucket (``T`` task, ``S`` steal, ``Q`` queue move, ``L`` lock,
    ``W`` termination, ``C`` comm, ``i`` idle, ``.`` nothing recorded).
    """
    finished = [s for s in spans if s.end is not None]
    if not finished:
        return "(no finished spans)"
    t0 = min(s.start for s in finished)
    t1 = max(s.end for s in finished)
    extent = max(t1 - t0, 1e-12)
    prio = _category_priority()
    chars = dict(CATEGORY_CHARS)
    # grid[rank][bucket] = priority index of the best category seen
    grid = [[None] * width for _ in range(nprocs)]
    for s in finished:
        p = prio.get(s.category, len(prio))
        b0 = int((s.start - t0) / extent * width)
        b1 = int((s.end - t0) / extent * width)
        b0 = min(b0, width - 1)
        b1 = min(b1, width - 1)
        row = grid[s.rank]
        for b in range(b0, b1 + 1):
            if row[b] is None or p < row[b]:
                row[b] = p
    cats = [c for c, _ in CATEGORY_CHARS]
    lines = [
        f"timeline: {extent * 1e6:.3f} us across {width} buckets "
        f"({extent / width * 1e6:.3f} us/bucket)"
    ]
    for r in range(nprocs):
        row = "".join(
            "." if p is None else chars.get(cats[p], "?") if p < len(cats) else "?"
            for p in grid[r]
        )
        lines.append(f"rank {r:3d} |{row}|")
    legend = "  ".join(f"{ch}={cat}" for cat, ch in CATEGORY_CHARS)
    lines.append(f"legend: {legend}  .=no span")
    return "\n".join(lines)


def self_times(spans: list[SpanRecord]) -> dict[int, dict[str, float]]:
    """Per-rank exclusive (self) time by category.

    A span's self time is its duration minus its *immediate* children's
    durations, so nested spans are not double counted.  Nesting is
    decided by time containment on each rank's track (the same rule
    Perfetto uses), which also handles spans recorded out-of-stack via
    ``Recorder.complete_span`` (waves, lock waits, ``tc_process``).
    """
    by_rank: dict[int, list[SpanRecord]] = defaultdict(list)
    for s in spans:
        if s.end is not None:
            by_rank[s.rank].append(s)
    out: dict[int, dict[str, float]] = {}
    for rank, rs in by_rank.items():
        # Parents sort before children: earlier start first, and on a
        # tie the longer (enclosing) span first.
        rs.sort(key=lambda s: (s.start, -s.end))
        self_time = [s.duration for s in rs]
        stack: list[int] = []  # indexes into rs, innermost open span last
        for i, s in enumerate(rs):
            while stack and rs[stack[-1]].end <= s.start:
                stack.pop()
            if stack:
                self_time[stack[-1]] -= s.duration
            stack.append(i)
        cat_time: dict[str, float] = defaultdict(float)
        for s, t in zip(rs, self_time):
            cat_time[s.category] += max(t, 0.0)
        out[rank] = dict(cat_time)
    return out


def summary_table(spans: list[SpanRecord], nprocs: int) -> str:
    """Per-rank breakdown of exclusive span time by category."""
    times = self_times(spans)
    cats = sorted({c for v in times.values() for c in v})
    if not cats:
        return "(no finished spans)"
    header = ["rank"] + [f"{c}(us)" for c in cats] + ["spans"]
    counts: dict[int, int] = defaultdict(int)
    for s in spans:
        if s.end is not None:
            counts[s.rank] += 1
    lines = ["  ".join(f"{h:>12}" for h in header)]
    for r in range(nprocs):
        row = [str(r)]
        for c in cats:
            row.append(f"{times.get(r, {}).get(c, 0.0) * 1e6:.3f}")
        row.append(str(counts.get(r, 0)))
        lines.append("  ".join(f"{v:>12}" for v in row))
    return "\n".join(lines)
