"""Tests for task descriptors and configuration."""

from __future__ import annotations

import pytest

from repro.core.config import SciotoConfig
from repro.core.task import AFFINITY_HIGH, AFFINITY_LOW, TASK_HEADER_BYTES, Task


class TestTask:
    def test_wire_size_uses_body_size_when_set(self):
        t = Task(callback=0, body_size=100)
        assert t.wire_size(1024) == TASK_HEADER_BYTES + 100

    def test_wire_size_defaults_to_collection_task_size(self):
        t = Task(callback=0)
        assert t.wire_size(1024) == TASK_HEADER_BYTES + 1024

    def test_clone_deep_copies_body(self):
        body = {"block": [1, 2, 3]}
        t = Task(callback=1, body=body, affinity=AFFINITY_HIGH)
        c = t.clone()
        body["block"].append(4)
        assert c.body == {"block": [1, 2, 3]}
        assert c.callback == 1
        assert c.affinity == AFFINITY_HIGH

    def test_affinity_constants_ordered(self):
        assert AFFINITY_HIGH > AFFINITY_LOW

    def test_clone_allocates_fresh_uid(self):
        t = Task(callback=1, body=(1, 2))
        assert t.clone().uid != t.uid

    def test_clone_shares_immutable_bodies(self):
        # Copy-in/out is observationally identical for immutable
        # payloads, so clone may (and does) share them.
        for body in (None, 7, 1.5, "abc", b"xy", (1, "a", b"z"), frozenset({1})):
            t = Task(callback=0, body=body)
            assert t.clone().body is body

    def test_clone_shares_frozen_dataclass_of_atomics(self):
        from repro.apps.uts.tree import UTSNode

        node = UTSNode(digest=b"\x00" * 20, depth=3)
        assert Task(callback=0, body=node).clone().body is node

    def test_clone_still_copies_mutable_bodies(self):
        from dataclasses import dataclass, field

        for body in ([1, 2], {"k": 1}, (1, [2]), {1, 2}):
            t = Task(callback=0, body=body)
            c = t.clone()
            assert c.body == body and c.body is not body

        @dataclass(frozen=True)
        class FrozenWithList:
            items: list = field(default_factory=lambda: [1, 2])

        f = FrozenWithList()
        c = Task(callback=0, body=f).clone()
        assert c.body == f and c.body is not f  # mutable field: deep copy


class TestSciotoConfig:
    def test_defaults_match_paper(self):
        cfg = SciotoConfig()
        assert cfg.split_queues is True
        assert cfg.load_balancing is True
        assert cfg.chunk_size == 10
        assert cfg.termination_opt is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"release_fraction": 0.0},
            {"release_fraction": 1.5},
            {"reacquire_fraction": -0.1},
            {"idle_backoff": -1e-6},
            {"max_idle_backoff": 1e-7},
            {"steal_policy": "psychic"},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SciotoConfig(**kwargs)

    def test_frozen(self):
        cfg = SciotoConfig()
        with pytest.raises(Exception):
            cfg.chunk_size = 5  # type: ignore[misc]
