"""Tests for the TaskCollection API: lifecycle, registration, CLOs, adds."""

from __future__ import annotations

import pytest

from repro.core import SciotoConfig, Task, TaskCollection
from repro.sim.engine import Engine
from repro.util.errors import TaskCollectionError


def _run(nprocs, main, *args, seed=0, max_events=2_000_000):
    eng = Engine(nprocs, seed=seed, max_events=max_events)
    eng.spawn_all(main, *args)
    return eng, eng.run()


def test_create_and_destroy():
    def main(proc):
        tc = TaskCollection.create(proc, task_size=128)
        tc.destroy()
        with pytest.raises(TaskCollectionError):
            tc.add(Task(callback=0))

    _run(2, main)


def test_create_mismatch_rejected():
    def main(proc):
        TaskCollection.create(proc, task_size=64 if proc.rank == 0 else 128)

    with pytest.raises(TaskCollectionError, match="mismatch"):
        _run(2, main)


def test_invalid_create_params():
    def main(proc):
        TaskCollection.create(proc, task_size=-1)

    with pytest.raises(ValueError):
        _run(1, main)


def test_register_returns_sequential_handles():
    def main(proc):
        tc = TaskCollection.create(proc)
        h0 = tc.register(lambda tc, t: None)
        h1 = tc.register(lambda tc, t: None)
        return (h0, h1)

    _, res = _run(3, main)
    assert res.returns == [(0, 1)] * 3


def test_register_non_callable_rejected():
    def main(proc):
        tc = TaskCollection.create(proc)
        tc.register("not a function")  # type: ignore[arg-type]

    with pytest.raises(TypeError):
        _run(1, main)


def test_add_unregistered_callback_rejected():
    def main(proc):
        tc = TaskCollection.create(proc)
        tc.add(Task(callback=3))

    with pytest.raises(TaskCollectionError, match="not registered"):
        _run(1, main)


def test_add_invalid_rank_rejected():
    def main(proc):
        tc = TaskCollection.create(proc)
        tc.register(lambda tc, t: None)
        tc.add(Task(callback=0), rank=99)

    with pytest.raises(TaskCollectionError, match="invalid destination"):
        _run(2, main)


def test_add_copies_body():
    """tc_add has copy-in/out semantics: mutating the buffer afterwards
    must not affect the queued task (§3.1)."""
    seen = []

    def main(proc):
        tc = TaskCollection.create(proc)

        def cb(tc, task):
            seen.append(tuple(task.body))

        h = tc.register(cb)
        if proc.rank == 0:
            buf = Task(callback=h, body=[1, 2])
            tc.add(buf)
            buf.body.append(99)  # reuse/mutate the buffer
            tc.add(buf)
        tc.process()

    _run(2, main)
    assert sorted(seen) == [(1, 2), (1, 2, 99)]


def test_remote_add_reaches_other_rank():
    ran_on = []

    def main(proc):
        tc = TaskCollection.create(proc, config=SciotoConfig(load_balancing=False))
        h = tc.register(lambda tc, t: ran_on.append(tc.rank))
        if proc.rank == 0:
            for dest in range(proc.nprocs):
                tc.add(Task(callback=h), rank=dest)
        tc.process()

    _run(4, main)
    assert sorted(ran_on) == [0, 1, 2, 3]


def test_clo_resolves_to_local_instance():
    def main(proc):
        tc = TaskCollection.create(proc)
        handle = tc.register_clo({"rank": proc.rank})
        return tc.clo(handle)["rank"]

    _, res = _run(4, main)
    assert res.returns == [0, 1, 2, 3]


def test_clo_bad_handle():
    def main(proc):
        tc = TaskCollection.create(proc)
        tc.clo(0)

    with pytest.raises(TaskCollectionError, match="common local object"):
        _run(1, main)


def test_reset_empties_queues_for_reuse():
    def main(proc):
        tc = TaskCollection.create(proc)
        h = tc.register(lambda tc, t: None)
        tc.add(Task(callback=h))
        tc.reset()
        assert tc.local_size() == 0
        # collection is reusable after reset
        tc.add(Task(callback=h))
        stats = tc.process()
        return stats.tasks_executed

    _, res = _run(2, main)
    assert sum(res.returns) == 2


def test_two_collections_coexist():
    """§3.1: multiple collections may be used for phased parallelism."""
    phase_log = []

    def main(proc):
        tc1 = TaskCollection.create(proc)
        tc2 = TaskCollection.create(proc)

        def phase1(tc, task):
            phase_log.append(("p1", task.body))
            # spawn into the *other* collection while this one is processed
            tc2.add(Task(callback=h2, body=task.body * 10))

        def phase2(tc, task):
            phase_log.append(("p2", task.body))

        h1 = tc1.register(phase1)
        h2 = tc2.register(phase2)
        if proc.rank == 0:
            tc1.add(Task(callback=h1, body=1))
            tc1.add(Task(callback=h1, body=2))
        tc1.process()
        tc2.process()

    _run(2, main)
    p1 = sorted(b for p, b in phase_log if p == "p1")
    p2 = sorted(b for p, b in phase_log if p == "p2")
    assert p1 == [1, 2]
    assert p2 == [10, 20]


def test_local_and_total_size():
    def main(proc):
        tc = TaskCollection.create(proc)
        h = tc.register(lambda tc, t: None)
        for _ in range(proc.rank + 1):
            tc.add(Task(callback=h))
        proc.sync()
        return (tc.local_size(), None)

    eng, res = _run(3, main)
    assert [r[0] for r in res.returns] == [1, 2, 3]


def test_process_stats_fields():
    def main(proc):
        tc = TaskCollection.create(proc)

        def work(tc, task):
            tc.proc.compute(5e-6)

        h = tc.register(work)
        if proc.rank == 0:
            for _ in range(20):
                tc.add(Task(callback=h))
        stats = tc.process()
        return stats

    _, res = _run(4, main)
    total = sum(s.tasks_executed for s in res.returns)
    assert total == 20
    for s in res.returns:
        assert s.time_total > 0
        assert 0 <= s.time_working <= s.time_total
        assert s.time_overhead >= 0
        assert 0 <= s.efficiency <= 1
    # work was seeded on rank 0 only; someone must have stolen
    assert sum(s.steals_successful for s in res.returns) > 0
    assert sum(s.tasks_stolen for s in res.returns) > 0
