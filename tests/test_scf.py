"""Tests for the SCF application: problem structure and schedule-invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.scf import (
    SCFProblem,
    run_scf_original,
    run_scf_scioto,
    run_scf_sequential,
)
from repro.apps.scf.problem import stable_hash
from repro.apps.scf.reference import build_fock_sequential
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster

# decay high enough that distant pairs actually screen out at this size
PROB = SCFProblem(nblocks=8, blocksize=4, decay=0.9)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(1, "x", (2, 3)) == stable_hash(1, "x", (2, 3))

    def test_distinct_keys(self):
        assert stable_hash(1, 2) != stable_hash(2, 1)

    def test_nonnegative_63bit(self):
        h = stable_hash("anything")
        assert 0 <= h < (1 << 63)


class TestProblem:
    def test_hamiltonian_symmetric(self):
        h = PROB.core_hamiltonian()
        assert np.allclose(h, h.T)
        assert h.shape == (32, 32)

    def test_screening_monotone_in_distance(self):
        # far-apart blocks should (on average) have smaller magnitudes
        near = np.mean([PROB.pair_magnitude(i, i) for i in range(8)])
        far = np.mean([PROB.pair_magnitude(i, (i + 7) % 8) for i in range(8)])
        assert far < near

    def test_significant_pairs_subset_of_all(self):
        sig = set(PROB.significant_pairs())
        assert sig <= set(PROB.all_pairs())
        assert 0 < len(sig) < len(PROB.all_pairs())

    def test_task_flops_irregular(self):
        sig = PROB.significant_pairs()
        costs = {PROB.task_flops(i, j) for (i, j) in sig}
        assert len(costs) > len(sig) // 2, "costs should vary across pairs"

    def test_fock_linear_in_density(self):
        d1 = np.random.default_rng(0).random((4, 4))
        d2 = np.random.default_rng(1).random((4, 4))
        f1 = PROB.fock_block(1, 2, d1, d2)
        f2 = PROB.fock_block(1, 2, 2 * d1, 2 * d2)
        h = PROB.core_hamiltonian()[PROB.block_slice(1), PROB.block_slice(2)]
        assert np.allclose(f2 - h, 2 * (f1 - h))

    def test_density_trace_preserved(self):
        d = PROB.initial_density()
        f = build_fock_sequential(PROB, d)
        d2 = PROB.next_density(f, d, damping=0.0)
        assert np.trace(d2) == pytest.approx(2.0 * PROB.occupied())


class TestSequential:
    def test_energies_deterministic(self):
        assert run_scf_sequential(PROB, 3) == run_scf_sequential(PROB, 3)

    def test_energy_decreases_initially(self):
        e = run_scf_sequential(PROB, 4)
        assert e[1] < e[0]


class TestParallelSCF:
    @pytest.mark.parametrize("nprocs", [1, 3, 6])
    def test_scioto_matches_sequential(self, nprocs):
        seq = run_scf_sequential(PROB, 2)
        r = run_scf_scioto(nprocs, PROB, iterations=2, max_events=10_000_000)
        assert np.allclose(r.energies, seq, atol=1e-10)

    @pytest.mark.parametrize("nprocs", [1, 3, 6])
    def test_original_matches_sequential(self, nprocs):
        seq = run_scf_sequential(PROB, 2)
        r = run_scf_original(nprocs, PROB, iterations=2, max_events=10_000_000)
        assert np.allclose(r.energies, seq, atol=1e-10)

    def test_schedule_invariance_across_seeds(self):
        a = run_scf_scioto(4, PROB, iterations=2, seed=1, max_events=10_000_000)
        b = run_scf_scioto(4, PROB, iterations=2, seed=99, max_events=10_000_000)
        assert np.allclose(a.energies, b.energies, atol=1e-10)

    def test_heterogeneous_machine_correct(self):
        seq = run_scf_sequential(PROB, 2)
        r = run_scf_scioto(
            4, PROB, iterations=2, machine=heterogeneous_cluster(4),
            max_events=10_000_000,
        )
        assert np.allclose(r.energies, seq, atol=1e-10)

    def test_no_split_correct(self):
        seq = run_scf_sequential(PROB, 2)
        r = run_scf_scioto(
            3, PROB, iterations=2, config=SciotoConfig(split_queues=False),
            max_events=10_000_000,
        )
        assert np.allclose(r.energies, seq, atol=1e-10)

    def test_result_metadata(self):
        r = run_scf_scioto(2, PROB, iterations=3, max_events=10_000_000)
        assert r.mode == "scioto"
        assert r.iterations == 3
        assert len(r.energies) == 3
        assert 0 < r.fock_time <= r.elapsed


class TestConvergence:
    def test_sequential_early_stop(self):
        full = run_scf_sequential(PROB, iterations=20)
        conv = run_scf_sequential(PROB, iterations=20, convergence=1e-2)
        assert len(conv) < 20
        assert abs(conv[-1] - conv[-2]) < 1e-2
        assert conv == full[: len(conv)]

    def test_parallel_matches_sequential_under_convergence(self):
        seq = run_scf_sequential(PROB, iterations=20, convergence=1e-2)
        r = run_scf_scioto(3, PROB, iterations=20, convergence=1e-2,
                           max_events=20_000_000)
        o = run_scf_original(2, PROB, iterations=20, convergence=1e-2,
                             max_events=20_000_000)
        assert np.allclose(r.energies, seq, atol=1e-10)
        assert np.allclose(o.energies, seq, atol=1e-10)
        assert r.iterations == len(seq)
