"""Tests for the named UTS instances."""

from __future__ import annotations

import pytest

from repro.apps.uts import count_tree, run_uts_scioto
from repro.apps.uts.presets import EXPECTED_NODES, PRESETS, preset


def test_preset_lookup():
    assert preset("small").gen_mx == 10
    with pytest.raises(KeyError, match="unknown UTS preset"):
        preset("gigantic")


@pytest.mark.parametrize("name", ["tiny", "small", "binomial"])
def test_preset_node_counts_exact(name):
    stats = count_tree(preset(name), max_nodes=1_000_000)
    assert stats.nodes == EXPECTED_NODES[name]


def test_binomial_preset_is_deep_and_unbalanced():
    stats = count_tree(preset("binomial"), max_nodes=1_000_000)
    assert stats.max_depth > 50, "binomial preset should be much deeper than geometric"
    # leaves dominate: the signature of a near-critical binomial tree
    assert stats.leaves / stats.nodes > 0.6


def test_binomial_preset_parallel_exact():
    p = preset("binomial")
    ref = EXPECTED_NODES["binomial"]
    r = run_uts_scioto(6, p, seed=2, max_events=10_000_000)
    assert r.stats.nodes == ref
    assert r.total_steals > 0, "deep chains must force stealing"
