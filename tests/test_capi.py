"""Tests for the C-style facade mirroring the paper's §3 API."""

from __future__ import annotations

from repro.core import AFFINITY_HIGH
from repro.core.capi import (
    tc_add,
    tc_create,
    tc_destroy,
    tc_process,
    tc_register,
    tc_reset,
    tc_task_body,
    tc_task_create,
    tc_task_destroy,
    tc_task_reuse,
)
from repro.sim.engine import run_spmd


def test_full_paper_workflow():
    """Replicates the structure of the paper's Figure 3 listing."""
    executed = []

    def task_fcn(tc, task):
        executed.append((tc_task_body(task), tc.rank))

    def main(proc):
        tc = tc_create(proc, task_sz=64, chunk_sz=2, max_sz=100)
        hdl = tc_register(tc, task_fcn)
        task = tc_task_create(body_sz=32, task_handle=hdl)
        me = proc.rank
        for i in range(3):
            task.body = (me, i)
            tc_add(tc, me, AFFINITY_HIGH, task)
            task = tc_task_reuse(task)
        stats = tc_process(tc)
        tc_destroy(tc)
        tc_task_destroy(task)
        return stats.tasks_executed

    result = run_spmd(3, main, max_events=2_000_000)
    assert sum(result.returns) == 9
    bodies = sorted(b for b, _ in executed)
    assert bodies == sorted((r, i) for r in range(3) for i in range(3))


def test_copy_in_semantics_via_reuse():
    seen = []

    def cb(tc, task):
        seen.append(tc_task_body(task))

    def main(proc):
        tc = tc_create(proc, 64, 1, 50)
        hdl = tc_register(tc, cb)
        task = tc_task_create(16, hdl)
        task.body = "first"
        tc_add(tc, proc.rank, 0, task)
        task = tc_task_reuse(task)
        task.body = "second"  # buffer reuse must not affect queued copy
        tc_add(tc, proc.rank, 0, task)
        tc_process(tc)

    run_spmd(1, main, max_events=1_000_000)
    assert sorted(seen) == ["first", "second"]


def test_reset_between_phases():
    count = []

    def main(proc):
        tc = tc_create(proc, 64, 1, 50)
        hdl = tc_register(tc, lambda tc_, t: count.append(1))
        tc_add(tc, proc.rank, 0, tc_task_create(8, hdl))
        tc_reset(tc)  # dropped before processing
        tc_add(tc, proc.rank, 0, tc_task_create(8, hdl))
        tc_process(tc)

    run_spmd(2, main, max_events=2_000_000)
    assert len(count) == 2
