"""The span recorder: nested virtual-time spans plus the metrics registry.

A :class:`Recorder` attaches to an engine exactly like the tracer and
the race detector: ``Recorder.attach(engine)`` before ``engine.run()``,
``Recorder.of(engine)`` afterwards.  The runtime layers call the free
functions in this module (:func:`span`, :func:`observe`, :func:`count`,
:func:`sample`, :func:`instant`) at their interesting points; when no
recorder is attached each call costs a single dict probe and records
nothing, so instrumented code stays safe on hot paths.

Recording is an *observer* of virtual time: hooks only ever read
``proc.now`` — they never advance a clock, yield to the engine, or touch
an RNG — so enabling it leaves the deterministic schedule, all virtual
timings, and all `Counters` totals bit-for-bit unchanged (tested, and
checkable with ``python -m repro.obs verify``).

Span nesting is per rank: spans opened while another span of the same
rank is still open become its children (``depth``/``parent``), which is
what lets the Chrome-trace exporter draw one stacked track per rank.

Causal edges
------------

Besides per-rank spans, the recorder keeps the *cross-rank* causal
edges that turn the span stream into a happens-before DAG
(:mod:`repro.obs.critpath`).  Each :class:`EdgeRecord` connects a
source point ``(src_rank, src_time)`` to a destination point
``(dst_rank, dst_time)`` and carries a stable id (emission order,
deterministic because the schedule is).  The runtime layers emit them
at the four synchronization sites where one rank's progress causally
depends on another's:

* ``steal`` — a successful steal back to the victim-side release that
  made the tasks stealable (``core/queue.py``);
* ``msg`` — a mailbox message (termination token) from its post to the
  poll that consumed it (``armci/runtime.py``);
* ``lock`` — a contended mutex grant from the releaser to the woken
  waiter (``sim/resources.py``);
* ``spawn`` — a task's queue insertion to its execution
  (``core/queue.py`` → ``core/scheduler.py``);
* ``dirty`` — a §5.3 dirty mark landing in the victim's memory
  (``core/termination.py``).

Edges are metadata-only: emission reads ``proc.now`` and appends to a
list, exactly like spans, so the span stream (and the schedule) is
bit-for-bit identical with edges on or off — ``repro.obs verify``
checks this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = [
    "Recorder",
    "SpanRecord",
    "InstantRecord",
    "EdgeRecord",
    "span",
    "observe",
    "count",
    "sample",
    "instant",
    "causal_edge",
    "edge_mark",
    "edge_here",
    "edge_send",
    "edge_recv",
]

_KEY = "obs"


@dataclass
class SpanRecord:
    """One (possibly still open) recorded span."""

    rank: int
    name: str
    category: str
    start: float
    end: float | None = None
    depth: int = 0
    parent: int | None = None  #: sid of the enclosing span, or None
    detail: Any = None
    #: stable id (allocation order; equals the list index under the
    #: default in-memory sink — dropped spans never consume a sid).
    sid: int = -1

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class InstantRecord:
    """A zero-duration marker event (e.g. a dirty mark landing)."""

    time: float
    rank: int
    name: str
    category: str
    detail: Any = None


@dataclass(frozen=True)
class EdgeRecord:
    """One cross-rank happens-before edge (source point → destination)."""

    eid: int  #: stable id (emission order; deterministic per run)
    kind: str  #: steal | msg | lock | spawn | dirty
    src_rank: int
    src_time: float
    dst_rank: int
    dst_time: float
    detail: Any = None

    @property
    def latency(self) -> float:
        """The edge's measured causal delay (clamped to be non-negative)."""
        return max(self.dst_time - self.src_time, 0.0)


class _NullSpan:
    """Shared no-op context manager returned when recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager that closes its span at the rank's current time."""

    __slots__ = ("_rec", "_proc", "_span")

    def __init__(
        self, rec: "Recorder", proc: "Proc", span: "SpanRecord | None"
    ) -> None:
        self._rec = rec
        self._proc = proc
        self._span = span

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._rec._close(self._proc, self._span)
        return False


class Recorder:
    """Engine-wide span + metrics recorder (attach-based, off by default).

    Storage is delegated to a :class:`repro.obs.stream.SpanSink`: the
    default :class:`~repro.obs.stream.MemorySink` keeps the historical
    in-memory lists (``recorder.spans`` et al. stay list-like views of
    it), while :class:`~repro.obs.stream.SpillSink` streams completed
    records to sharded JSONL in constant memory.  Optional side-taps:
    ``windows`` (a :class:`repro.obs.metrics.RollingWindows`) snapshots
    windowed histogram percentiles at a virtual-time interval, and
    ``flight`` (a :class:`repro.obs.flight.FlightRecorder`) keeps a
    bounded per-rank ring of recent records that is dumped to disk when
    the engine fails.
    """

    _KEY = _KEY

    def __init__(
        self,
        engine: "Engine",
        capacity: int = 2_000_000,
        edges: bool = True,
        sink: "Any | None" = None,
        window: float | None = None,
        flight: "Any | None" = None,
        live: "Any | None" = None,
    ) -> None:
        from repro.obs.stream import MemorySink  # sibling; cycle-free at call time

        self.engine = engine
        self.capacity = capacity
        self.sink = sink if sink is not None else MemorySink(capacity)
        self.edges_enabled = edges
        # Per-kind drop accounting (mirrors obs/tracing.py); ``dropped``
        # stays available as the aggregate.
        self.dropped_spans = 0
        self.dropped_instants = 0
        self.dropped_edges = 0
        self.metrics = MetricsRegistry()
        self.windows = None
        if window is not None:
            from repro.obs.metrics import RollingWindows

            self.windows = RollingWindows(self.metrics, window)
        self.flight = None
        self._failure_hooked = False
        if flight is not None:
            self.set_flight(flight)
        # Live telemetry bus: binds to the engine's per-event tick and
        # publishes interval frames to its feed (repro-obs-live/1).
        self.live = live
        if live is not None:
            live.bind(self)
        # Incremental tallies so exports never need the full span stream.
        self.span_count = 0
        self.instant_count = 0
        self.edge_count = 0
        self.category_counts: dict[str, int] = {}
        self._finished = False
        # per-rank stacks of open span records (None = dropped placeholder)
        self._stacks: list[list[SpanRecord | None]] = [
            [] for _ in range(engine.nprocs)
        ]
        # single-slot edge sources: key -> (rank, time, detail)
        self._edge_marks: dict[Any, tuple[int, float, Any]] = {}
        # FIFO edge sources mirroring message queues: key -> deque of sources
        self._edge_pending: dict[Any, deque[tuple[int, float, Any]]] = {}

    @classmethod
    def attach(
        cls,
        engine: "Engine",
        capacity: int = 2_000_000,
        edges: bool = True,
        sink: "Any | None" = None,
        window: float | None = None,
        flight: "Any | None" = None,
        live: "Any | None" = None,
    ) -> "Recorder":
        """Enable recording on ``engine`` (idempotent)."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(
                engine, capacity, edges=edges, sink=sink, window=window,
                flight=flight, live=live,
            )
            engine.state[cls._KEY] = inst
            engine.note_observer()
        return inst

    @classmethod
    def of(cls, engine: "Engine") -> "Recorder | None":
        """The engine's recorder, or None if recording is off."""
        return engine.state.get(cls._KEY)

    # ------------------------------------------------------------------ #
    # Storage views (delegate to the sink)
    # ------------------------------------------------------------------ #
    @property
    def spans(self) -> list[SpanRecord]:
        """Every recorded span in allocation (``sid``) order.

        Under the default :class:`~repro.obs.stream.MemorySink` this is
        the sink's live list (``sid`` == list index); a spill sink
        materializes its shards on each access, so prefer the streaming
        readers for large runs.
        """
        return self.sink.span_stream()

    @property
    def instants(self) -> list[InstantRecord]:
        return self.sink.instant_stream()

    @property
    def edges(self) -> list[EdgeRecord]:
        return self.sink.edge_stream()

    @property
    def dropped(self) -> int:
        """Total records refused by the sink (spans + instants + edges)."""
        return self.dropped_spans + self.dropped_instants + self.dropped_edges

    def set_flight(self, flight: "Any") -> None:
        """Install a flight recorder and hook it to engine failures."""
        self.flight = flight
        hooks = getattr(self.engine, "failure_hooks", None)
        if flight is not None and hooks is not None and not self._failure_hooked:
            hooks.append(self._on_failure)
            self._failure_hooked = True

    def _on_failure(self, exc: BaseException) -> None:
        if self.flight is not None:
            self.flight.dump(type(exc).__name__, error=str(exc))

    def finish(self) -> None:
        """Finalize the recording (idempotent): close the last metrics
        window and seal the sink's footer index (a no-op for the
        in-memory sink)."""
        if self._finished:
            return
        self._finished = True
        if self.windows is not None:
            self.windows.finalize()
        if self.live is not None:
            self.live.finish()
        self.sink.seal(
            {
                "nprocs": self.engine.nprocs,
                "spans": self.span_count,
                "instants": self.instant_count,
                "edges": self.edge_count,
                "dropped": self.dropped,
                "dropped_spans": self.dropped_spans,
                "dropped_instants": self.dropped_instants,
                "dropped_edges": self.dropped_edges,
                "category_counts": dict(sorted(self.category_counts.items())),
            }
        )

    # ------------------------------------------------------------------ #
    # Span API
    # ------------------------------------------------------------------ #
    def span(self, proc: "Proc", name: str, category: str, detail: Any = None) -> _OpenSpan:
        """Open a span on ``proc``'s rank; close it by exiting the context."""
        stack = self._stacks[proc.rank]
        if not self.sink.accepts_span():
            self.dropped_spans += 1
            stack.append(None)
            return _OpenSpan(self, proc, None)
        parent = next((s.sid for s in reversed(stack) if s is not None), None)
        rec = SpanRecord(
            rank=proc.rank,
            name=name,
            category=category,
            start=proc.now,
            depth=len(stack),
            parent=parent,
            detail=detail,
            sid=self.span_count,
        )
        self.span_count += 1
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        self.sink.on_open(rec)
        stack.append(rec)
        return _OpenSpan(self, proc, rec)

    def _close(self, proc: "Proc", span: SpanRecord | None) -> None:
        stack = self._stacks[proc.rank]
        if not stack or stack[-1] is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span close out of order on rank {proc.rank}: "
                f"closing {span}, top of stack is {stack[-1] if stack else None}"
            )
        stack.pop()
        if span is not None:
            span.end = proc.now
            self.sink.on_close(span)
            if self.flight is not None:
                self.flight.record_span(span)

    def complete_span(
        self,
        proc: "Proc",
        name: str,
        category: str,
        start: float,
        detail: Any = None,
    ) -> None:
        """Record an already-finished span from ``start`` to ``proc.now``.

        For protocol intervals that do not nest with the call stack —
        e.g. a termination wave (launched in one scheduler iteration,
        completed in a later one) or a contended lock wait.  Recorded at
        depth 0; it still lands on the rank's track in the exports.
        """
        if not self.sink.accepts_span():
            self.dropped_spans += 1
            return
        rec = SpanRecord(
            rank=proc.rank,
            name=name,
            category=category,
            start=start,
            end=proc.now,
            detail=detail,
            sid=self.span_count,
        )
        self.span_count += 1
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        self.sink.on_complete(rec)
        if self.flight is not None:
            self.flight.record_span(rec)

    def instant_event(
        self, proc: "Proc", name: str, category: str, detail: Any = None
    ) -> None:
        """Record a zero-duration marker at the rank's current time."""
        if not self.sink.accepts_instant():
            self.dropped_instants += 1
            return
        rec = InstantRecord(proc.now, proc.rank, name, category, detail)
        self.instant_count += 1
        self.sink.on_instant(rec)
        if self.flight is not None:
            self.flight.record_instant(rec)

    # ------------------------------------------------------------------ #
    # Causal-edge API (metadata-only; see module docstring)
    # ------------------------------------------------------------------ #
    def add_edge(
        self,
        kind: str,
        src_rank: int,
        src_time: float,
        dst_rank: int,
        dst_time: float,
        detail: Any = None,
    ) -> None:
        """Record one happens-before edge with a stable, monotone id."""
        if not self.sink.accepts_edge():
            self.dropped_edges += 1
            return
        rec = EdgeRecord(
            eid=self.edge_count,
            kind=kind,
            src_rank=src_rank,
            src_time=src_time,
            dst_rank=dst_rank,
            dst_time=dst_time,
            detail=detail,
        )
        self.edge_count += 1
        self.sink.on_edge(rec)

    def mark(self, key: Any, proc: "Proc", detail: Any = None) -> None:
        """Remember ``proc``'s current point as the source for ``key``."""
        self._edge_marks[key] = (proc.rank, proc.now, detail)

    def edge_from_mark(
        self, key: Any, proc: "Proc", kind: str, detail: Any = None,
        clear: bool = False,
    ) -> None:
        """Emit an edge from the remembered source for ``key`` to here."""
        src = self._edge_marks.pop(key, None) if clear else self._edge_marks.get(key)
        if src is None:
            return
        self.add_edge(
            kind, src[0], src[1], proc.rank, proc.now,
            detail=detail if detail is not None else src[2],
        )

    def push_pending(self, key: Any, proc: "Proc", detail: Any = None) -> None:
        """FIFO variant of :meth:`mark`, mirroring a message queue."""
        self._edge_pending.setdefault(key, deque()).append(
            (proc.rank, proc.now, detail)
        )

    def edge_from_pending(
        self, key: Any, proc: "Proc", kind: str, detail: Any = None
    ) -> None:
        """Pop the oldest pending source for ``key`` and emit an edge.

        The pending queue is appended on send and popped on receive in
        the same virtual-time order as the underlying mailbox deque, so
        sources and destinations pair up exactly.
        """
        q = self._edge_pending.get(key)
        if not q:
            return
        src = q.popleft()
        self.add_edge(
            kind, src[0], src[1], proc.rank, proc.now,
            detail=detail if detail is not None else src[2],
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def stream_fingerprint(self) -> tuple:
        """The span/instant stream as comparable structure.

        Span ``detail`` is excluded: task uids are allocated from a
        process-wide counter, so two otherwise identical runs in one
        process record different uids.  Everything structural — rank,
        name, category, timing, nesting — is covered, which is what the
        edges-on vs. edges-off equality check in ``repro.obs verify``
        needs.
        """
        return (
            tuple(
                (s.rank, s.name, s.category, s.start, s.end, s.depth, s.parent)
                for s in self.spans
            ),
            tuple((i.time, i.rank, i.name, i.category) for i in self.instants),
        )

    def finished_spans(self) -> list[SpanRecord]:
        """All spans that have been closed (open ones are excluded)."""
        return [s for s in self.spans if s.end is not None]

    def by_category(self, category: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.category == category]


# ---------------------------------------------------------------------- #
# Free-function hooks (zero-cost when no recorder is attached)
# ---------------------------------------------------------------------- #
def span(proc: "Proc", name: str, category: str = "runtime", detail: Any = None):
    """Context manager recording a span on ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is None:
        return _NULL_SPAN
    return rec.span(proc, name, category, detail)


def observe(proc: "Proc", name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        if rec.windows is not None:
            rec.windows.roll(proc.now)
        rec.metrics.observe(name, value, rank=proc.rank)


def count(proc: "Proc", name: str, amount: float = 1.0) -> None:
    """Increment obs counter ``name`` for ``proc``'s rank (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        if rec.windows is not None:
            rec.windows.roll(proc.now)
        rec.metrics.add(proc.rank, name, amount)


def sample(proc: "Proc", name: str, value: float) -> None:
    """Set gauge ``name`` on ``proc``'s rank to ``value`` (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        if rec.windows is not None:
            rec.windows.roll(proc.now)
        rec.metrics.sample(name, proc.rank, value)


def instant(proc: "Proc", name: str, category: str = "runtime", detail: Any = None) -> None:
    """Record a zero-duration marker event (no-op when off)."""
    rec = proc.engine.state.get(_KEY)
    if rec is not None:
        rec.instant_event(proc, name, category, detail)


def _edge_recorder(proc: "Proc") -> "Recorder | None":
    rec = proc.engine.state.get(_KEY)
    return rec if rec is not None and rec.edges_enabled else None


def causal_edge(
    proc: "Proc",
    kind: str,
    src_rank: int,
    src_time: float,
    detail: Any = None,
) -> None:
    """Record an edge from ``(src_rank, src_time)`` to here (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.add_edge(kind, src_rank, src_time, proc.rank, proc.now, detail)


def edge_mark(proc: "Proc", key: Any, detail: Any = None) -> None:
    """Remember this point as the edge source for ``key`` (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.mark(key, proc, detail)


def edge_here(
    proc: "Proc", key: Any, kind: str, detail: Any = None, clear: bool = False
) -> None:
    """Emit an edge from ``key``'s remembered source to here (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.edge_from_mark(key, proc, kind, detail=detail, clear=clear)


def edge_send(proc: "Proc", key: Any, detail: Any = None) -> None:
    """FIFO-enqueue this point as a pending edge source (no-op when off)."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.push_pending(key, proc, detail)


def edge_recv(proc: "Proc", key: Any, kind: str, detail: Any = None) -> None:
    """Emit an edge from the oldest pending source for ``key`` to here."""
    rec = _edge_recorder(proc)
    if rec is not None:
        rec.edge_from_pending(key, proc, kind, detail=detail)
