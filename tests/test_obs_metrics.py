"""Metrics primitives: histogram bucket edges, gauges, counter facade."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.sim.counters import Counters


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        h.observe(1.0)  # == edges[0]
        h.observe(2.0)  # == edges[1]
        h.observe(4.0)  # == edges[2]
        assert h.counts == [1, 1, 1, 0]

    def test_value_just_above_edge_lands_in_next_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        h.observe(1.0000001)
        h.observe(2.5)
        assert h.counts == [0, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(100.0)
        assert h.counts == [0, 0, 1]
        assert h.max == 100.0

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-5.0)
        assert h.counts == [2, 0, 0]

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    def test_stats_and_per_rank_attribution(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(0.5, rank=0)
        h.observe(5.0, rank=1)
        h.observe(5.0, rank=1)
        assert h.count == 3
        assert h.sum == pytest.approx(10.5)
        assert h.mean == pytest.approx(3.5)
        d = h.to_dict()
        assert d["per_rank"]["1"] == {"count": 2, "sum": 10.0}
        assert d["min"] == 0.5 and d["max"] == 5.0

    def test_quantile_reports_bucket_upper_edge(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # two of four in the first bucket
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", edges=(1.0,)).quantile(0.9) == 0.0


class TestGauge:
    def test_last_min_max_samples(self):
        g = Gauge("occ")
        g.set(0, 3.0)
        g.set(0, 7.0)
        g.set(1, 1.0)
        assert g.last == {0: 7.0, 1: 1.0}
        assert g.min == 1.0 and g.max == 7.0 and g.samples == 3

    def test_empty_to_dict_has_null_extremes(self):
        d = Gauge("g").to_dict()
        assert d["min"] is None and d["max"] is None and d["samples"] == 0


class TestCounters:
    def test_counters_is_a_counterfamily_facade(self):
        c = Counters()
        assert isinstance(c, CounterFamily)
        c.add(0, "steal_success")
        c.add(1, "steal_success", 2.0)
        assert c.total("steal_success") == 3.0
        assert c.per_rank_snapshot() == {
            0: {"steal_success": 1.0},
            1: {"steal_success": 2.0},
        }


class TestRegistry:
    def test_named_metrics_get_their_default_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("steal_chunk").edges == tuple(float(e) for e in COUNT_BUCKETS)
        assert reg.histogram("steal_latency").edges == TIME_BUCKETS
        assert reg.histogram("unheard_of").edges == TIME_BUCKETS
        assert set(DEFAULT_BUCKETS) >= {"steal_latency", "wave_rtt", "lock_wait"}

    def test_observe_sample_add_roundtrip_through_to_dict(self):
        reg = MetricsRegistry()
        reg.observe("steal_latency", 1e-6, rank=0)
        reg.sample("queue_len", 2, 9.0)
        reg.add(0, "events", 4.0)
        d = reg.to_dict()
        assert d["histograms"]["steal_latency"]["count"] == 1
        assert d["gauges"]["queue_len"]["last"]["2"] == 9.0
        assert d["counters"]["total"]["events"] == 4.0


class TestMergeDict:
    """Cross-process aggregation: fold a worker's to_dict() snapshot in."""

    def _worker_doc(self):
        reg = MetricsRegistry()
        reg.add(0, "schedules_run", 3.0)
        reg.observe("schedule_events", 120.0, rank=0)
        reg.observe("schedule_events", 80.0, rank=0)
        reg.sample("queue_len", 0, 5.0)
        return reg.to_dict()

    def test_counters_add_under_into_rank(self):
        fleet = MetricsRegistry()
        fleet.add(2, "schedules_run", 1.0)
        fleet.merge_dict(self._worker_doc(), into_rank=2)
        assert fleet.counters.total("schedules_run") == 4.0
        assert fleet.counters.per_rank_snapshot()[2]["schedules_run"] == 4.0

    def test_original_ranks_preserved_without_into_rank(self):
        fleet = MetricsRegistry()
        fleet.merge_dict(self._worker_doc())
        assert fleet.counters.per_rank_snapshot()[0]["schedules_run"] == 3.0

    def test_histograms_fold_counts_and_extremes(self):
        fleet = MetricsRegistry()
        fleet.observe("schedule_events", 500.0, rank=1)
        fleet.merge_dict(self._worker_doc(), into_rank=1)
        h = fleet.histogram("schedule_events")
        assert h.count == 3
        assert h.sum == 700.0
        assert h.min == 80.0
        assert h.max == 500.0

    def test_two_worker_snapshots_accumulate(self):
        fleet = MetricsRegistry()
        fleet.merge_dict(self._worker_doc(), into_rank=0)
        fleet.merge_dict(self._worker_doc(), into_rank=1)
        assert fleet.counters.total("schedules_run") == 6.0
        assert fleet.histogram("schedule_events").count == 4
        g = fleet.gauge("queue_len")
        assert g.samples == 2
        assert g.min == g.max == 5.0

    def test_mismatched_histogram_edges_rejected(self):
        fleet = MetricsRegistry()
        # Materialize the histogram with its default bucket edges first;
        # the incoming snapshot then disagrees and must be refused.
        fleet.observe("schedule_events", 10.0, rank=0)
        doc = {"histograms": {"schedule_events": {
            "edges": [1.0, 2.0], "counts": [1, 0, 0],
            "count": 1, "sum": 1.0, "min": 1.0, "max": 1.0, "per_rank": {},
        }}}
        with pytest.raises(ValueError, match="mismatched edges"):
            fleet.merge_dict(doc)
