"""Replicated task list + shared global counter (original SCF/TCE scheme).

§6.2: "load balancing is achieved by replicating a work queue across all
processes and performing atomic increment on a shared counter to get the
next available task."  Every rank holds the complete task list; claiming
a task is one remote atomic ``read_inc`` on a counter hosted on rank 0.

The scheme is locality-oblivious — a task runs wherever it happens to be
claimed, so its data is remote with probability ``(p-1)/p`` — and the
counter serializes at its host.  Both effects grow with the process
count, producing the flattening speedups of Figures 5-6.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from types import GeneratorType
from typing import Any

from repro.armci.runtime import Armci
from repro.ga.counter import GlobalCounter
from repro.sim.engine import Proc, blocking_method

__all__ = ["GlobalCounterScheduler", "CounterRunStats"]


@dataclass
class CounterRunStats:
    """Per-rank outcome of a counter-scheduled phase."""

    rank: int
    tasks_claimed: int
    time_total: float
    time_working: float

    @property
    def time_overhead(self) -> float:
        return self.time_total - self.time_working


class GlobalCounterScheduler:
    """Dynamic load balancing via a shared ``read_inc`` counter."""

    def __init__(
        self,
        proc: Proc,
        execute: Callable[[Proc, Any], None],
        counter_host: int = 0,
        counter: GlobalCounter | None = None,
    ) -> None:
        self.proc = proc
        self.execute = execute
        self.armci = Armci.attach(proc.engine)
        self.counter = (
            counter
            if counter is not None
            else GlobalCounter.create(proc, host_rank=counter_host)
        )

    @classmethod
    def co_create(
        cls,
        proc: Proc,
        execute: Callable[[Proc, Any], None],
        counter_host: int = 0,
    ):
        """Coroutine-protocol constructor (the collective counter creation
        is the blocking part)."""
        counter = yield from GlobalCounter.co_create(proc, host_rank=counter_host)
        return cls(proc, execute, counter=counter)

    run = blocking_method("co_run")

    def co_run(self, tasks: Sequence[Any]):
        """Process the (replicated) ``tasks`` list to completion; collective.

        Every rank must pass an identical list; tasks execute exactly once
        across all ranks, in claim order.
        """
        proc = self.proc
        yield from self.armci.co_barrier(proc)
        t0 = proc.now
        working = 0.0
        claimed = 0
        while True:
            i = yield from self.counter.co_read_inc(proc)
            if i >= len(tasks):
                break
            w0 = proc.now
            res = self.execute(proc, tasks[i])
            if type(res) is GeneratorType:
                yield from res
            working += proc.now - w0
            claimed += 1
        yield from self.armci.co_barrier(proc)
        return CounterRunStats(
            rank=proc.rank,
            tasks_claimed=claimed,
            time_total=proc.now - t0,
            time_working=working,
        )
