"""Shared pytest fixtures and helpers for the repro test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine


def spmd(nprocs, main, *args, machine=None, seed=0, max_events=2_000_000, max_time=None):
    """Run an SPMD main across ``nprocs`` simulated ranks with a livelock guard."""
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events, max_time=max_time)
    eng.spawn_all(main, *args)
    return eng, eng.run()


@pytest.fixture
def run_sim():
    """Fixture returning the :func:`spmd` helper."""
    return spmd
