"""Property-based tests of the end-to-end Scioto runtime.

The invariant that matters most (and that the termination detector must
never violate): **every added task executes exactly once**, across any
combination of process count, queue mode, steal chunking, termination
optimization, task-tree shape, and seed.  A violated invariant would
mean either a lost/duplicated task (queue protocol bug) or an early
termination (wave protocol bug).
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SciotoConfig, Task, TaskCollection
from repro.sim.engine import Engine


def _run_tree_workload(
    nprocs: int,
    seed: int,
    cfg: SciotoConfig,
    fanout: int,
    depth: int,
    roots: int,
    compute: float = 0.5e-6,
):
    """Process a synthetic task tree; return (executed ids, expected count)."""
    executed: list[tuple[int, int]] = []
    lock = threading.Lock()
    next_id = [roots]

    def main(proc):
        tc = TaskCollection.create(proc, task_size=64, config=cfg)

        def node(tc_, task):
            tc_.proc.compute(compute)
            tid, d = task.body
            with lock:
                executed.append((tid, tc_.rank))
            if d < depth:
                for _ in range(fanout):
                    with lock:
                        cid = next_id[0]
                        next_id[0] += 1
                    # spread some children to other ranks to exercise
                    # remote adds + dirty piggybacking
                    dest = tc_.rank
                    if cid % 7 == 0 and tc_.nprocs > 1:
                        dest = (tc_.rank + 1 + cid) % tc_.nprocs
                    tc_.add(Task(callback=h, body=(cid, d + 1)), rank=dest,
                            affinity=cid % 3)

        h = tc.register(node)
        if proc.rank == 0:
            for r in range(roots):
                tc.add(Task(callback=h, body=(r, 0)))
        stats = tc.process()
        return stats

    eng = Engine(nprocs, seed=seed, max_events=3_000_000)
    eng.spawn_all(main)
    result = eng.run()
    # expected: full fanout tree per root
    per_root = sum(fanout**d for d in range(depth + 1))
    return executed, roots * per_root, result


@settings(max_examples=30, deadline=None)
@given(
    nprocs=st.integers(1, 9),
    seed=st.integers(0, 10_000),
    split=st.booleans(),
    opt=st.booleans(),
    waitfree=st.booleans(),
    policy=st.sampled_from(["random", "ring", "last_victim"]),
    chunk=st.integers(1, 8),
    fanout=st.integers(1, 3),
    depth=st.integers(0, 4),
    roots=st.integers(1, 5),
)
def test_every_task_executes_exactly_once(
    nprocs, seed, split, opt, waitfree, policy, chunk, fanout, depth, roots
):
    cfg = SciotoConfig(
        split_queues=split,
        termination_opt=opt,
        wait_free_steals=waitfree,
        steal_policy=policy,
        chunk_size=chunk,
    )
    executed, expected, _ = _run_tree_workload(nprocs, seed, cfg, fanout, depth, roots)
    ids = sorted(tid for tid, _rank in executed)
    assert ids == list(range(expected)), (
        f"expected {expected} unique executions, got {len(ids)} "
        f"({len(set(ids))} unique)"
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), nprocs=st.integers(2, 8))
def test_no_load_balancing_executes_where_placed(seed, nprocs):
    """With stealing disabled, tasks run exactly where they were added."""
    cfg = SciotoConfig(load_balancing=False)
    ran: list[tuple[int, int]] = []

    def main(proc):
        tc = TaskCollection.create(proc, config=cfg)
        h = tc.register(lambda tc_, t: ran.append((t.body, tc_.rank)))
        if proc.rank == 0:
            for i in range(3 * nprocs):
                tc.add(Task(callback=h, body=i), rank=i % nprocs)
        tc.process()

    eng = Engine(nprocs, seed=seed, max_events=2_000_000)
    eng.spawn_all(main)
    eng.run()
    assert len(ran) == 3 * nprocs
    for task_id, rank in ran:
        assert rank == task_id % nprocs


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_work_spreads_under_stealing(seed):
    """Seeding everything on rank 0 must still engage other ranks."""
    nprocs = 6
    cfg = SciotoConfig(chunk_size=2)
    executed, expected, result = _run_tree_workload(
        nprocs, seed, cfg, fanout=2, depth=5, roots=1, compute=2e-6
    )
    assert len(executed) == expected
    ranks_used = {rank for _tid, rank in executed}
    assert len(ranks_used) >= 3, f"stealing engaged only ranks {ranks_used}"


def test_deterministic_given_seed():
    """Same seed => identical schedule, timings, and steal pattern."""
    cfg = SciotoConfig()
    a = _run_tree_workload(5, seed=11, cfg=cfg, fanout=2, depth=4, roots=2)
    b = _run_tree_workload(5, seed=11, cfg=cfg, fanout=2, depth=4, roots=2)
    assert a[0] == b[0]
    assert a[2].elapsed == b[2].elapsed
    assert a[2].events == b[2].events


def test_different_seeds_change_schedule():
    cfg = SciotoConfig()
    a = _run_tree_workload(5, seed=1, cfg=cfg, fanout=2, depth=4, roots=2)
    b = _run_tree_workload(5, seed=2, cfg=cfg, fanout=2, depth=4, roots=2)
    # virtual elapsed time will almost surely differ with different steal rng
    assert a[2].elapsed != b[2].elapsed
