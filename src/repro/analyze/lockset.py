"""Eraser-style lockset analysis over a captured trace.

First, cheapest tier of the predictive analyzer (see
:mod:`repro.analyze.predict`): for every shared region, intersect the
locksets held across its accesses.  A region whose accesses come from
more than one rank, include a writer, and share **no** common lock is a
candidate race in *some* interleaving — no happens-before reasoning,
and therefore no dependence on the schedule that happened to execute.

Scope discipline (what keeps this tier quiet on clean runs):

* Only **lock-disciplined** regions are judged — regions where at least
  one access was made holding a lock (including the ``rmw[target]``
  pseudo-lock the capture synthesizes for reservation atomics).  A
  region never touched under any lock is protocol-synchronized by
  construction here (flags, messages) and is left to the
  happens-before tiers.
* ``"a"``-class (target-serialized atomic) accesses never race with
  each other and are excluded from the intersection; they still count
  as conflicting accesses against plain reads/writes.

The classic Eraser caveats apply and are documented in
``docs/analyze.md``: no false negatives on lock-discipline violations,
but accesses ordered by non-lock synchronization (fork/join, messages)
can be reported — which is why findings feed the confirmation stage
instead of being trusted outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.analyze.capture import TraceEvent
from repro.analyze.race import region_class

__all__ = ["LocksetFinding", "lockset_pass"]


@dataclass(frozen=True)
class LocksetFinding:
    """A lock-disciplined region with an empty lockset intersection."""

    region: Hashable
    region_cls: tuple
    #: Ranks that touched the region, sorted.
    ranks: tuple[int, ...]
    #: Call sites of the two exemplar conflicting accesses.
    sites: tuple[str, str]
    #: Locksets held at the two exemplar accesses.
    locksets: tuple[tuple[str, ...], tuple[str, ...]]
    #: Sequence numbers of the exemplar accesses in the trace.
    seqs: tuple[int, int]

    def describe(self) -> str:
        def fmt(held: tuple[str, ...]) -> str:
            return "{" + ", ".join(held) + "}" if held else "{} (no locks)"

        return (
            f"lockset violation on {self.region!r} (ranks {list(self.ranks)}): "
            f"no common lock across accesses\n"
            f"    {self.sites[0]} holding {fmt(self.locksets[0])}\n"
            f"    {self.sites[1]} holding {fmt(self.locksets[1])}"
        )


def lockset_pass(events: list[TraceEvent]) -> list[LocksetFinding]:
    """Intersect held locksets per region; report empty intersections."""
    # region -> list of (rank, op, site, held, seq) for plain accesses
    plain: dict[Hashable, list[tuple[int, str, str, tuple[str, ...], int]]] = {}
    disciplined: set[Hashable] = set()
    for ev in events:
        if ev.kind != "access":
            continue
        op = ev.data["op"]
        if op == "a":
            continue
        region = ev.data["region"]
        plain.setdefault(region, []).append(
            (ev.rank, op, ev.data["site"], ev.held, ev.seq)
        )
        if ev.held:
            disciplined.add(region)

    findings: list[LocksetFinding] = []
    for region in sorted(disciplined, key=repr):
        accesses = plain[region]
        ranks = sorted({a[0] for a in accesses})
        if len(ranks) < 2 or not any(a[1] != "r" for a in accesses):
            continue
        common = set(accesses[0][3])
        for a in accesses[1:]:
            common &= set(a[3])
            if not common:
                break
        if common:
            continue
        # Exemplars: the first access with the then-smallest contribution
        # to the intersection (typically the unlocked one) and the first
        # conflicting access from a different rank.
        bare = min(accesses, key=lambda a: (len(a[3]), a[4]))
        other = next(
            a for a in accesses if a[0] != bare[0] and (a[1] != "r" or bare[1] != "r")
        )
        first, second = sorted((bare, other), key=lambda a: a[4])
        findings.append(
            LocksetFinding(
                region=region,
                region_cls=region_class(region),
                ranks=tuple(ranks),
                sites=(first[2], second[2]),
                locksets=(first[3], second[3]),
                seqs=(first[4], second[4]),
            )
        )
    return findings
