"""Streaming observability: spill sinks, pack equivalence, windows.

The load-bearing guarantees tested here:

* **Equivalence** — a run recorded through a constant-memory
  :class:`~repro.obs.stream.SpillSink` is indistinguishable from the
  same run recorded in memory: identical ``stream_fingerprint``,
  byte-identical packed Chrome trace (via a :class:`TeeSink`, the only
  rigorous same-run comparison: separate runs differ in the task uids
  carried in span details), and identical critical-path / what-if
  analyses rebuilt from the spill.
* **Bounded memory** — the sink never holds more than one shard buffer;
  shards stay within ``shard_size`` records.
* **Loss accounting** — a sink refusing records increments the per-kind
  drop counters, and drops surface in the seal footer.
* **Atomicity** — trace/pack outputs never leave temp droppings.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.critpath import CausalGraph, critical_path
from repro.obs.export import write_chrome_trace
from repro.obs.scenarios import fingerprint, run_target
from repro.obs.stream import (
    STREAM_SCHEMA,
    MemorySink,
    SpillReader,
    SpillSink,
    TeeSink,
    merge_spills,
    pack,
)
from repro.obs.whatif import project

CHECK_TARGETS = ["graph", "queue", "queue-wf", "steals", "termination", "waitfree"]


# ---------------------------------------------------------------------- #
# Spill format and round-trip
# ---------------------------------------------------------------------- #
class TestSpillFormat:
    def test_sealed_index_and_counts(self, tmp_path):
        run = run_target("queue", stream_dir=tmp_path / "spill")
        idx = json.loads((tmp_path / "spill" / "index.json").read_text())
        assert idx["schema"] == STREAM_SCHEMA
        assert idx["spans"] == run.recorder.span_count
        assert idx["edges"] == run.recorder.edge_count
        assert idx["dropped"] == 0
        assert idx["nprocs"] == len(run.engine.procs)
        total = sum(sh["count"] for sh in idx["shards"]["spans"])
        assert total == run.recorder.span_count

    def test_round_trip_preserves_records(self, tmp_path):
        run = run_target("steals", stream_dir=tmp_path / "spill")
        spans, instants, edges = SpillReader(tmp_path / "spill").load()
        assert len(spans) == run.recorder.span_count
        assert len(edges) == run.recorder.edge_count
        # sid order is emission order; sids are dense
        assert [s.sid for s in spans] == list(range(len(spans)))

    def test_small_shards_stay_bounded(self, tmp_path):
        sink = SpillSink(tmp_path / "spill", shard_size=16)
        run_target("steals", sink=sink)
        idx = json.loads((tmp_path / "spill" / "index.json").read_text())
        assert len(idx["shards"]["spans"]) > 1
        assert all(sh["count"] <= 16 for sh in idx["shards"]["spans"])
        # buffers were flushed by seal; nothing retained in memory
        assert all(not buf for buf in sink._bufs.values())

    def test_reader_rejects_unsealed_or_foreign_dirs(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SpillReader(tmp_path / "nope")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "index.json").write_text('{"schema": "something-else/9"}')
        with pytest.raises(ValueError, match="unsupported spill schema"):
            SpillReader(bad)


# ---------------------------------------------------------------------- #
# Streaming == in-memory
# ---------------------------------------------------------------------- #
class TestEquivalence:
    @pytest.mark.parametrize("target", CHECK_TARGETS)
    def test_stream_fingerprint_matches_memory(self, target, tmp_path):
        mem = run_target(target)
        spill = run_target(target, stream_dir=tmp_path / "spill")
        assert spill.recorder.stream_fingerprint() == mem.recorder.stream_fingerprint()
        assert fingerprint(spill) == fingerprint(mem)

    def test_uts_stream_fingerprint_matches_memory(self, tmp_path):
        mem = run_target("uts-small")
        spill = run_target("uts-small", stream_dir=tmp_path / "spill")
        assert spill.recorder.stream_fingerprint() == mem.recorder.stream_fingerprint()

    @pytest.mark.parametrize("target", ["queue", "steals"])
    def test_packed_trace_bytes_equal_in_memory_export(self, target, tmp_path):
        # One run, two sinks: the only byte-rigorous comparison (span
        # details carry process-global task uids, so two separate runs
        # differ there by design).
        tee = TeeSink(MemorySink(), SpillSink(tmp_path / "spill", shard_size=64))
        rec = run_target(target, sink=tee, events=False).recorder
        mem_path = write_chrome_trace(rec, tmp_path / "mem.json")
        packed = pack(tmp_path / "spill", tmp_path / "packed.json")
        assert packed.read_bytes() == mem_path.read_bytes()

    def test_critpath_and_whatif_parity(self, tmp_path):
        tee = TeeSink(MemorySink(), SpillSink(tmp_path / "spill"))
        rec = run_target("steals", sink=tee, events=False).recorder
        g_mem = CausalGraph.from_recorder(rec)
        spans, _instants, edges = SpillReader(tmp_path / "spill").load()
        g_spill = CausalGraph.build(spans, edges, len(rec.engine.procs))
        cp_mem, cp_spill = critical_path(g_mem), critical_path(g_spill)
        assert [
            (s.kind, s.rank, s.start, s.end, s.name) for s in cp_mem.steps
        ] == [(s.kind, s.rank, s.start, s.end, s.name) for s in cp_spill.steps]
        scales = {"steal": 0.5}
        assert (
            project(g_mem, scales).projected_makespan
            == project(g_spill, scales).projected_makespan
        )


# ---------------------------------------------------------------------- #
# Drop accounting
# ---------------------------------------------------------------------- #
class TestDropAccounting:
    def test_capacity_overflow_counts_per_kind(self, tmp_path):
        sink = MemorySink(capacity=5)
        run = run_target("queue", sink=sink)
        rec = run.recorder
        # sids are only allocated for accepted spans; refusals are
        # tallied separately so nothing is silently lost
        assert rec.span_count == 5
        assert rec.dropped_spans > 0
        assert len(rec.spans) == 5
        assert rec.dropped == (
            rec.dropped_spans + rec.dropped_instants + rec.dropped_edges
        )

    def test_drops_surface_in_seal_footer(self, tmp_path):
        class Stingy(SpillSink):
            def accepts_span(self):
                return False

        sink = Stingy(tmp_path / "spill")
        run = run_target("queue", sink=sink)
        idx = json.loads((tmp_path / "spill" / "index.json").read_text())
        assert idx["dropped"] == run.recorder.dropped > 0
        assert idx["dropped_spans"] == run.recorder.dropped_spans

    def test_pack_propagates_drop_counts(self, tmp_path):
        class Stingy(SpillSink):
            def accepts_span(self):
                return False

        run_target("queue", sink=Stingy(tmp_path / "spill"))
        out = pack(tmp_path / "spill", tmp_path / "t.json")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["spans_dropped"] > 0
        assert doc["otherData"]["spans_recorded"] == 0


# ---------------------------------------------------------------------- #
# Rolling windows
# ---------------------------------------------------------------------- #
class TestRollingWindows:
    def test_windows_snapshot_and_are_deterministic(self):
        a = run_target("uts-small", window=1e-3)
        b = run_target("uts-small", window=1e-3)
        doc = a.recorder.windows.to_dict()
        assert doc["interval"] == 1e-3
        assert len(doc["series"]) > 1
        for w in doc["series"]:
            assert w["t1"] > w["t0"]
            for h in w["histograms"].values():
                assert h["count"] > 0
                assert h["p50"] <= h["p95"] <= h["p99"]
        # windows derive from virtual time only: bit-for-bit repeatable
        assert doc == b.recorder.windows.to_dict()

    def test_windowed_counts_sum_to_cumulative(self):
        run = run_target("steals", window=5e-4)
        rec = run.recorder
        series = rec.windows.to_dict()["series"]
        for name, hist in rec.metrics.histograms.items():
            windowed = sum(
                w["histograms"][name]["count"]
                for w in series
                if name in w["histograms"]
            )
            assert windowed == hist.count


# ---------------------------------------------------------------------- #
# Atomic outputs
# ---------------------------------------------------------------------- #
class TestAtomicity:
    def test_no_temp_droppings(self, tmp_path):
        run = run_target("queue", stream_dir=tmp_path / "spill")
        write_chrome_trace(run.recorder, tmp_path / "mem.json")
        pack(tmp_path / "spill", tmp_path / "packed.json")
        stray = [p.name for p in tmp_path.rglob("*.tmp")]
        assert stray == []

    def test_failed_pack_cleans_up(self, tmp_path):
        (tmp_path / "spill").mkdir()
        with pytest.raises(FileNotFoundError):
            pack(tmp_path / "spill", tmp_path / "out.json")
        assert not (tmp_path / "out.json").exists()
        assert [p.name for p in tmp_path.glob(".out.json.*")] == []


# ---------------------------------------------------------------------- #
# Fleet-wide merge
# ---------------------------------------------------------------------- #
class TestMergeSpills:
    def test_merged_trace_has_one_process_per_spill(self, tmp_path):
        run_target("queue", stream_dir=tmp_path / "a")
        run_target("steals", stream_dir=tmp_path / "b")
        out = merge_spills(
            [(1, "w0:queue", tmp_path / "a"), (2, "w1:steals", tmp_path / "b")],
            tmp_path / "merged.json",
        )
        doc = json.loads(out.read_text())
        evs = doc["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in evs
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names == {1: "w0:queue", 2: "w1:steals"}
        assert doc["otherData"]["processes"] == 2
        # flow ids must not alias between processes
        flow_ids = {1: set(), 2: set()}
        for e in evs:
            if e.get("ph") == "s":
                flow_ids[e["pid"]].add(e["id"])
        assert not (flow_ids[1] & flow_ids[2])


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def test_run_stream_then_pack(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        spill = tmp_path / "spill"
        trace = tmp_path / "trace.json"
        assert main(["run", "queue", "--stream", str(spill)]) == 0
        assert main(["pack", str(spill), "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        assert doc["otherData"]["source"] == "repro.obs"
        assert doc["otherData"]["spans_dropped"] == 0

    def test_pack_rejects_non_spill_dir(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        assert main(["pack", str(tmp_path), "--trace", str(tmp_path / "t.json")]) == 2
