"""Vector clocks: the partial order underlying happens-before analysis.

One :class:`VectorClock` per rank tracks how much of every other rank's
history the rank has (transitively) observed through synchronization.
Two accesses are ordered iff the later one's clock dominates the
earlier one's component for the earlier rank; otherwise they are
concurrent — and, if they conflict on the same shared region, a race.

Storage is a C-contiguous ``array('q')`` rather than a list.  The
clock is allocated per access event and copied per snapshot on the
predictive pass's hot loop, and those are the operations the array
representation accelerates: zero-fill allocation is one memset
(``_ZERO * nprocs``), ``copy`` is one memcpy (slice), and ``join``
short-circuits with a memcmp when the buffers are already equal.
Element-wise operations (``tick``, a divergent ``join``) pay a small
boxing toll relative to a list; measured numbers for both are in
``BENCH_sim.json`` (vectorclock notes).
"""

from __future__ import annotations

from array import array

__all__ = ["VectorClock"]

_ZERO = array("q", [0])


class VectorClock:
    """A fixed-width vector clock over ``nprocs`` ranks."""

    __slots__ = ("c",)

    def __init__(self, nprocs: int, init=None) -> None:
        self.c = array("q", init) if init is not None else _ZERO * nprocs

    def copy(self) -> "VectorClock":
        vc = VectorClock.__new__(VectorClock)
        vc.c = self.c[:]  # array slicing is a buffer memcpy
        return vc

    def snapshot(self) -> array:
        """Immutable-by-convention timestamp of the current clock.

        One memcpy; the caller must only read it.  Supports integer
        indexing, which is all the epoch test needs.
        """
        return self.c[:]

    def tick(self, rank: int) -> None:
        """Advance this rank's own component (a new local epoch)."""
        self.c[rank] += 1

    def join(self, other: "VectorClock") -> None:
        """Merge ``other`` into this clock (component-wise max)."""
        c, o = self.c, other.c
        if o == c:  # memcmp: nothing new to observe
            return
        for i, v in enumerate(o):
            if v > c[i]:
                c[i] = v

    def ordered_before(self, rank: int, other: "VectorClock") -> bool:
        """True if an event stamped with this clock on ``rank``
        happens-before an event stamped with ``other`` (on any rank).

        The standard epoch test: the later clock has observed the
        earlier rank's history up to and including the earlier event.
        """
        return self.c[rank] <= other.c[rank]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VC{list(self.c)!r}"
