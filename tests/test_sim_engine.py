"""Unit tests for the discrete-event engine: ordering, determinism, failures."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, run_spmd
from repro.sim.machines import heterogeneous_cluster, uniform_cluster
from repro.util.errors import SimDeadlockError, SimLimitError


def test_single_proc_runs_and_returns():
    result = run_spmd(1, lambda proc: proc.rank * 10 + 7)
    assert result.returns == [7]
    assert result.elapsed == 0.0


def test_returns_in_rank_order():
    result = run_spmd(5, lambda proc: proc.rank)
    assert result.returns == [0, 1, 2, 3, 4]


def test_advance_accumulates_clock():
    def main(proc):
        proc.advance(1e-6)
        proc.advance(2e-6)
        return proc.now

    result = run_spmd(2, main)
    assert result.returns == pytest.approx([3e-6, 3e-6])
    assert result.elapsed == pytest.approx(3e-6)


def test_advance_negative_rejected():
    def main(proc):
        proc.advance(-1.0)

    with pytest.raises(ValueError):
        run_spmd(1, main)


def test_compute_scales_with_heterogeneous_factors():
    def main(proc):
        proc.compute(10e-6)
        return proc.now

    machine = heterogeneous_cluster(4)
    result = run_spmd(4, main, machine=machine)
    # even ranks are Opteron (factor 1.0), odd ranks Xeon (~1.505x slower)
    assert result.returns[0] == pytest.approx(10e-6)
    assert result.returns[1] == pytest.approx(10e-6 * 0.4753 / 0.3158)
    assert result.returns[2] == result.returns[0]


def test_shared_state_ordered_by_virtual_time():
    order = []

    def main(proc):
        proc.advance((proc.nprocs - proc.rank) * 1e-6)  # rank 3 earliest
        proc.sync()
        order.append(proc.rank)

    run_spmd(4, main)
    assert order == [3, 2, 1, 0]


def test_equal_times_tiebreak_deterministic():
    orders = []
    for _ in range(3):
        order = []

        def main(proc):
            proc.advance(5e-6)
            proc.sync()
            order.append(proc.rank)

        run_spmd(6, main)
        orders.append(tuple(order))
    assert len(set(orders)) == 1, "same program must give the same interleaving"


def test_rng_streams_differ_per_rank_and_reproduce():
    def main(proc):
        return tuple(proc.rng.integers(0, 1000, size=3).tolist())

    a = run_spmd(3, main, seed=42).returns
    b = run_spmd(3, main, seed=42).returns
    c = run_spmd(3, main, seed=43).returns
    assert a == b
    assert len({*a}) == 3, "ranks must have independent streams"
    assert a != c


def test_exception_in_process_propagates():
    def main(proc):
        if proc.rank == 2:
            raise ValueError("boom on rank 2")
        proc.sleep(1e-3)

    with pytest.raises(ValueError, match="boom on rank 2"):
        run_spmd(4, main)


def test_deadlock_detected_with_blocked_ranks_reported():
    def main(proc):
        if proc.rank == 1:
            proc.park("waiting forever")

    with pytest.raises(SimDeadlockError, match="rank 1.*waiting forever"):
        run_spmd(2, main)


def test_deadlock_names_every_parked_process():
    """The structured ``parked`` attribute lists every stuck rank with its
    blocking site, in rank order — what the model checker keys replay on."""

    def main(proc):
        if proc.rank == 0:
            proc.compute(1e-6)
            return
        proc.park(f"stuck-{proc.rank}")

    with pytest.raises(SimDeadlockError) as info:
        run_spmd(3, main)
    assert info.value.parked == [(1, "stuck-1"), (2, "stuck-2")]
    assert "rank 1" in str(info.value) and "rank 2" in str(info.value)


def test_max_events_limit():
    def main(proc):
        while True:
            proc.sleep(1e-9)

    with pytest.raises(SimLimitError, match="max_events"):
        run_spmd(1, main, max_events=100)


def test_max_time_limit():
    def main(proc):
        while True:
            proc.sleep(1.0)

    with pytest.raises(SimLimitError, match="max_time"):
        run_spmd(1, main, max_time=5.0)


def test_wake_carries_payload():
    def main(proc):
        if proc.rank == 0:
            return proc.park("wait for gift")
        proc.advance(3e-6)
        proc.sync()
        proc.engine.wake(proc.engine.procs[0], proc.now, payload="gift")
        return None

    result = run_spmd(2, main)
    assert result.returns[0] == "gift"


def test_woken_proc_clock_advanced_to_wake_time():
    def main(proc):
        if proc.rank == 0:
            proc.park("wait")
            return proc.now
        proc.advance(7e-6)
        proc.sync()
        proc.engine.wake(proc.engine.procs[0], proc.now)
        return None

    result = run_spmd(2, main)
    assert result.returns[0] == pytest.approx(7e-6)


def test_engine_run_only_once():
    eng = Engine(1)
    eng.spawn_all(lambda proc: None)
    eng.run()
    with pytest.raises(RuntimeError):
        eng.run()


def test_spawn_per_rank_mains():
    eng = Engine(2)
    eng.spawn(0, lambda proc: "a")
    eng.spawn(1, lambda proc: "b")
    assert eng.run().returns == ["a", "b"]


def test_missing_main_rejected():
    eng = Engine(2)
    eng.spawn(0, lambda proc: None)
    with pytest.raises(RuntimeError, match="rank 1"):
        eng.run()


def test_nprocs_validation():
    with pytest.raises(ValueError):
        Engine(0)


def test_finish_times_per_rank():
    def main(proc):
        proc.sleep((proc.rank + 1) * 1e-6)

    result = run_spmd(3, main)
    assert result.finish_times == pytest.approx([1e-6, 2e-6, 3e-6])
    assert result.elapsed == pytest.approx(3e-6)


def test_machine_default_is_uniform_cluster():
    eng = Engine(4)
    assert eng.machine.name == uniform_cluster(4).name
