"""Exception hierarchy for the repro package.

All package-specific exceptions derive from :class:`ReproError` so callers
can catch everything from this library with one handler.  Simulator control
flow uses :class:`SimShutdown`, which derives from ``BaseException`` on
purpose: it must not be swallowed by application-level ``except Exception``
blocks inside simulated processes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimError(ReproError):
    """Base class for simulator errors."""


class SimDeadlockError(SimError):
    """The simulation cannot make progress.

    Raised by the engine when no process is runnable but at least one
    process has not finished (i.e. every remaining process is parked
    waiting for a wake-up that can never arrive).  The message lists the
    parked processes and where they blocked, which makes protocol bugs
    (lost wake-ups, circular lock waits) easy to diagnose in tests.

    Attributes:
        parked: ``[(rank, blocked_at), ...]`` for every unfinished
            process, in rank order.  Lets tools (``repro.check``) compare
            deadlocks structurally instead of parsing the message.
    """

    def __init__(self, message: str, parked: list[tuple[int, str | None]] | None = None):
        super().__init__(message)
        self.parked = parked if parked is not None else []


class SimLimitError(SimError):
    """A configured simulation limit (events or virtual time) was exceeded.

    Used as a safety net in tests so that a livelocked protocol fails fast
    instead of hanging the test suite.
    """


class SimShutdown(BaseException):
    """Internal signal used to unwind simulated process threads.

    Raised inside a process thread when the engine tears the simulation
    down (either normally or after another process raised).  Never leaks
    out of :meth:`repro.sim.engine.Engine.run`.
    """


class CommError(ReproError):
    """Error in the communication substrate (armci / mpi / ga layers)."""


class TaskCollectionError(ReproError):
    """Misuse of the Scioto task-collection API."""
