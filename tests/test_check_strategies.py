"""Tests for the scheduling strategies and the engine's strategy hook."""

from __future__ import annotations

import pytest

from repro.check.runner import run_once
from repro.check.scenarios import make_scenario
from repro.check.strategies import (
    DeterministicStrategy,
    PctStrategy,
    RandomWalk,
    ReplayStrategy,
    make_strategy,
)
from repro.sim.engine import SchedulingStrategy, run_spmd


def small_spmd(proc):
    """A tiny workload with real cross-rank interaction (shared syncs)."""
    for i in range(8):
        proc.compute(1e-6 * ((proc.rank + i) % 3 + 1))
        proc.sync()
    return proc.now


class TestDefaultDeterminism:
    def test_base_strategy_is_bit_for_bit_identical(self):
        """The acceptance bar for the engine refactor: a no-op strategy
        must reproduce the historical schedule exactly."""
        baseline = run_spmd(4, small_spmd, seed=3)
        with_hook = run_spmd(4, small_spmd, seed=3, strategy=SchedulingStrategy())
        explicit = run_spmd(4, small_spmd, seed=3, strategy=DeterministicStrategy())
        assert with_hook.elapsed == baseline.elapsed
        assert with_hook.events == baseline.events
        assert with_hook.finish_times == baseline.finish_times
        assert explicit.elapsed == baseline.elapsed
        assert explicit.events == baseline.events

    def test_scenarios_identical_under_none_and_deterministic(self):
        for target in ("queue", "termination"):
            scenario = make_scenario(target)
            a = run_once(scenario, None)
            b = run_once(make_scenario(target), DeterministicStrategy())
            assert a.error is None and b.error is None
            assert a.events == b.events


class TestRandomWalk:
    def test_same_seed_same_schedule(self):
        a = run_once(make_scenario("queue"), RandomWalk(seed=11))
        b = run_once(make_scenario("queue"), RandomWalk(seed=11))
        assert a.decisions == b.decisions
        assert a.events == b.events

    def test_different_seeds_diverge(self):
        a = run_once(make_scenario("queue"), RandomWalk(seed=1))
        b = run_once(make_scenario("queue"), RandomWalk(seed=2))
        assert a.decisions != b.decisions

    def test_clean_protocol_has_no_violations(self):
        for seed in range(5):
            out = run_once(make_scenario("queue"), RandomWalk(seed=seed))
            assert out.error is None
            assert out.violations == []


class TestPct:
    def test_completes_despite_poll_loops(self):
        """Strict PCT priorities starve pollers; the fairness bound must
        keep every scenario terminating."""
        for target in ("queue", "termination", "graph"):
            out = run_once(make_scenario(target), PctStrategy(seed=0))
            assert out.error is None, out.describe()

    def test_reproducible(self):
        a = run_once(make_scenario("termination"), PctStrategy(seed=5))
        b = run_once(make_scenario("termination"), PctStrategy(seed=5))
        assert a.decisions == b.decisions


class TestReplay:
    def test_replay_reproduces_event_count(self):
        original = run_once(make_scenario("queue"), RandomWalk(seed=7))
        replayed = run_once(make_scenario("queue"), ReplayStrategy(original.decisions))
        assert replayed.events == original.events
        assert replayed.error is None

    def test_replay_records_decisions_it_consumed(self):
        original = run_once(make_scenario("queue"), RandomWalk(seed=7))
        strategy = ReplayStrategy(original.decisions)
        run_once(make_scenario("queue"), strategy)
        assert strategy.divergences == 0

    def test_empty_trace_falls_back_to_default_order(self):
        out = run_once(make_scenario("queue"), ReplayStrategy([]))
        assert out.error is None


class TestFactory:
    def test_known_names(self):
        for name in ("random", "pct", "delay", "deterministic"):
            assert make_strategy(name, seed=1) is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("fuzz", seed=0)
