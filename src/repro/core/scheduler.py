"""The ``tc_process`` scheduler loop: execute, steal, detect termination.

Each rank loops: drain termination tokens (cheap when none are
pending), pop the highest-affinity local task and execute it; when the
local queue drains, steal a chunk of low-affinity tasks from a random
victim; when steals fail, participate in the termination wave.  The
call returns on every rank once the root's all-white wave completes and
the ``done`` broadcast reaches it (§5.2).
"""

from __future__ import annotations

from types import GeneratorType

from repro.armci.runtime import Armci
from repro.core.stats import ProcessStats
from repro.core.stealing import make_victim_selector
from repro.obs.record import Recorder, edge_here, observe, span
from repro.obs.tracing import trace
from repro.sim.engine import blocking
from repro.util.errors import TaskCollectionError

__all__ = ["run_process", "co_run_process"]

#: Counter keys copied into :class:`ProcessStats` after a phase.
_STAT_KEYS = {
    "steals_attempted": "steal_attempt",
    "steals_successful": "steal_success",
    "tasks_stolen": "tasks_stolen",
    "tasks_released": "tasks_released",
    "tasks_reacquired": "tasks_reacquired",
    "dirty_msgs": "dirty_msgs",
    "dirty_msgs_skipped": "dirty_msgs_skipped",
    "td_msgs": "td_msgs",
    "waves": "waves",
}


def co_run_process(tc):
    """Run the task-parallel phase for one rank (collective)."""
    proc = tc.proc
    engine = proc.engine
    shared = tc._shared
    cfg = shared.config
    armci = Armci.attach(engine)
    queue = shared.queues[proc.rank]
    callbacks = shared.callbacks[proc.rank]

    generation = shared.process_counts[proc.rank]
    shared.process_counts[proc.rank] += 1
    td = shared.detectors_for(generation)[proc.rank]
    shared.active[proc.rank] = td

    selector = make_victim_selector(cfg.steal_policy, proc)
    before = {k: shared.counters.get(proc.rank, c) for k, c in _STAT_KEYS.items()}
    yield from armci.co_barrier(proc)
    t_start = proc.now
    time_working = 0.0
    executed = 0
    fail_streak = 0

    try:
        while True:
            # Forward any pending tokens promptly, even while busy.  The
            # plain-call probe covers the common empty-mailbox case; the
            # coroutine form drains when tokens are actually pending.
            done = td.progress_busy(proc)
            if done is None:
                done = yield from td._co_progress(proc, idle=False)
            if done:
                break
            task = yield from queue.co_pop_local(proc)
            if task is not None:
                fail_streak = 0
                try:
                    fn = callbacks[task.callback]
                except IndexError:
                    raise TaskCollectionError(
                        f"rank {proc.rank}: task callback handle {task.callback} "
                        "not registered (collective registration mismatch?)"
                    ) from None
                t0 = proc.now
                # Callbacks may be plain blocking functions or
                # coroutine-protocol generators; drive the latter here.
                # The dispatch is written twice so an unobserved run pays
                # nothing for the span/trace/edge wrappers.
                if engine.observed:
                    trace(proc, "task-exec", task.uid)
                    edge_here(proc, ("spawn", task.uid), "spawn",
                              detail=task.uid, clear=True)
                    with span(proc, "task", "task", detail=task.uid):
                        res = fn(tc, task)
                        if type(res) is GeneratorType:
                            yield from res
                    observe(proc, "task_time", proc.now - t0)
                else:
                    res = fn(tc, task)
                    if type(res) is GeneratorType:
                        yield from res
                time_working += proc.now - t0
                executed += 1
                continue
            # Local queue drained: this rank is passive.  Vote (or run the
            # root's wave step) immediately so termination tokens move at
            # network latency, then hunt for work.  A steal that succeeds
            # after voting is exactly the case §5.3's dirty marking covers.
            if (yield from td.co_progress(proc, idle=True)):
                break
            if cfg.load_balancing and proc.nprocs > 1:
                victim = selector.next_victim()
                t_steal = proc.now
                with span(proc, "steal", "steal", detail=victim):
                    got = yield from shared.queues[victim].co_steal_from(
                        proc,
                        cfg.chunk_size,
                        probe_first=fail_streak > 0,
                        on_transfer=td.steal_mark(proc, victim),
                    )
                    selector.report(victim, bool(got))
                    if got:
                        # note_steal is plain in production; checker
                        # mutations substitute generator variants that
                        # communicate (late mark / fence elision).
                        res = td.note_steal(proc, victim)
                        if type(res) is GeneratorType:
                            yield from res
                        yield from queue.co_absorb_stolen(proc, got)
                if got:
                    observe(proc, "steal_latency", proc.now - t_steal)
                    observe(proc, "steal_chunk", len(got))
                    fail_streak = 0
                    continue
                observe(proc, "steal_fail_latency", proc.now - t_steal)
                fail_streak += 1
            # Exponential backoff between failed steals; woken early the
            # moment a termination token lands in the mailbox.
            backoff = min(
                cfg.idle_backoff * (1 << min(fail_streak, 16)),
                cfg.max_idle_backoff,
            )
            t_idle = proc.now
            with span(proc, "idle-wait", "idle", detail=fail_streak):
                yield from armci.co_wait_mailbox(proc, td.tag, backoff)
            observe(proc, "idle_wait", proc.now - t_idle)
    finally:
        shared.active[proc.rank] = None

    if queue.size() != 0:
        raise TaskCollectionError(
            f"rank {proc.rank}: termination detected with {queue.size()} "
            "tasks still queued (protocol violation)"
        )

    rec = Recorder.of(proc.engine)
    if rec is not None:
        rec.complete_span(proc, "tc_process", "runtime", t_start, detail=generation)

    stats = ProcessStats(
        rank=proc.rank,
        tasks_executed=executed,
        time_total=proc.now - t_start,
        time_working=time_working,
    )
    for attr, key in _STAT_KEYS.items():
        setattr(stats, attr, int(shared.counters.get(proc.rank, key) - before[attr]))
    return stats


run_process = blocking(co_run_process)
