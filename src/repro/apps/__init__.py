"""The paper's evaluation applications: UTS, SCF, TCE, and blocked matmul."""
