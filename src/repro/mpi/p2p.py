"""Two-sided point-to-point messaging with eager delivery semantics.

Each rank owns a FIFO mailbox of delivered messages.  ``send`` charges
the sender injection + transfer cost and delivers immediately (eager
protocol — appropriate for the small control messages the UTS-MPI
baseline exchanges).  ``recv`` blocks in virtual time until a matching
message is present; ``iprobe`` is a non-blocking check that charges the
explicit polling cost of the machine model.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Engine, Proc
from repro.sim.resources import SimBarrier
from repro.sim.counters import Counters
from repro.armci.collectives import mpi_barrier_cost
from repro.util.errors import CommError

__all__ = ["Mpi", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Fixed software overhead of matching/handling one two-sided message.
_MSG_OVERHEAD = 0.5e-6


class _Message:
    __slots__ = ("src", "tag", "payload")

    def __init__(self, src: int, tag: int, payload: Any) -> None:
        self.src = src
        self.tag = tag
        self.payload = payload


def _matches(msg: _Message, source: int, tag: int) -> bool:
    return (source in (ANY_SOURCE, msg.src)) and (tag in (ANY_TAG, msg.tag))


class Mpi:
    """Engine-wide MPI runtime: mailboxes, blocked receivers, barrier."""

    _KEY = "mpi"

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.counters = Counters()
        self._mailboxes: list[deque[_Message]] = [deque() for _ in range(engine.nprocs)]
        # rank -> (source, tag) the rank is blocked in recv() on, or None
        self._recv_wait: list[tuple[int, int] | None] = [None] * engine.nprocs
        self._barrier = SimBarrier(
            engine, engine.nprocs, lambda n: mpi_barrier_cost(engine.machine, n)
        )

    @classmethod
    def attach(cls, engine: Engine) -> "Mpi":
        """Return the engine's MPI runtime, creating it on first use."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine)
            engine.state[cls._KEY] = inst
        return inst

    # ------------------------------------------------------------------ #
    # Point to point
    # ------------------------------------------------------------------ #
    def send(self, proc: Proc, dest: int, tag: int, payload: Any, nbytes: int = 64) -> None:
        """Eager send: charge injection + transfer, deliver to ``dest``."""
        if dest == proc.rank:
            raise CommError("send to self is not supported")
        m = self.engine.machine
        proc.advance(m.put_time(nbytes) + _MSG_OVERHEAD)
        proc.sync()
        self.counters.add(proc.rank, "sends")
        self.counters.add(proc.rank, "bytes_sent", nbytes)
        msg = _Message(proc.rank, tag, payload)
        wait = self._recv_wait[dest]
        if wait is not None and _matches(msg, *wait):
            self._recv_wait[dest] = None
            self.engine.wake(self.engine.procs[dest], proc.now, msg)
        else:
            self._mailboxes[dest].append(msg)

    def recv(
        self, proc: Proc, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[int, int, Any]:
        """Blocking receive; returns ``(source, tag, payload)``."""
        m = self.engine.machine
        proc.advance(_MSG_OVERHEAD)
        proc.sync()
        box = self._mailboxes[proc.rank]
        for i, msg in enumerate(box):
            if _matches(msg, source, tag):
                del box[i]
                return (msg.src, msg.tag, msg.payload)
        self._recv_wait[proc.rank] = (source, tag)
        msg = proc.park(f"MPI_Recv(src={source}, tag={tag})")
        return (msg.src, msg.tag, msg.payload)

    def iprobe(self, proc: Proc, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe; charges the explicit polling cost."""
        proc.advance(self.engine.machine.poll_cost)
        proc.sync()
        self.counters.add(proc.rank, "polls")
        return any(_matches(msg, source, tag) for msg in self._mailboxes[proc.rank])

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    def barrier(self, proc: Proc) -> None:
        """MPI_Barrier (dissemination cost model)."""
        self.counters.add(proc.rank, "barrier")
        self._barrier.wait(proc)
