"""Machine models: CPU speeds and network cost parameters.

The paper evaluates on two systems (§6):

* a 64-node heterogeneous InfiniBand cluster — 32 × 2.8 GHz AMD Opteron
  254 plus 32 × 3.6 GHz Intel Xeon; per-UTS-node costs 0.3158 µs
  (Opteron) and 0.4753 µs (Xeon);
* a Cray XT4 with dual-core 2.6 GHz Opteron 285 processors; per-UTS-node
  cost 0.5681 µs.

A :class:`MachineSpec` encodes those CPUs plus a component-level network
cost model (one-way latency, bandwidth, fixed software overheads).  The
constants below are calibrated so that the microbenchmarks of Table 1
(local insert 0.495 µs / remote insert 18.1 µs / local get 0.361 µs /
remote steal 29.0 µs on the cluster; 0.933 / 27.0 / 0.691 / 32.4 µs on
the XT4, with 1 kB task bodies and chunk size 10) emerge from the model
rather than being hardwired per experiment.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = [
    "MachineSpec",
    "uniform_cluster",
    "heterogeneous_cluster",
    "cray_xt4",
    "OPTERON_NS_PER_UTS_NODE",
    "XEON_NS_PER_UTS_NODE",
    "XT4_NS_PER_UTS_NODE",
]

# Per-UTS-node processing costs reported in §6.3 of the paper (seconds).
OPTERON_NS_PER_UTS_NODE = 0.3158e-6
XEON_NS_PER_UTS_NODE = 0.4753e-6
XT4_NS_PER_UTS_NODE = 0.5681e-6

#: CPU time factors relative to the reference CPU (the cluster Opteron).
XEON_FACTOR = XEON_NS_PER_UTS_NODE / OPTERON_NS_PER_UTS_NODE  # ~1.505
XT4_FACTOR = XT4_NS_PER_UTS_NODE / OPTERON_NS_PER_UTS_NODE  # ~1.799


@dataclass(frozen=True)
class MachineSpec:
    """Cost parameters of one simulated machine.

    All times are in seconds, bandwidths in bytes/second.  ``cpu_factors``
    is either a single float (homogeneous machine) or a tuple with one
    entry per rank (heterogeneous machine); a factor of 1.0 means the
    reference CPU (cluster Opteron).
    """

    name: str
    latency: float  #: one-way remote message/NIC latency
    net_bandwidth: float  #: network payload bandwidth
    local_mem_bandwidth: float  #: local memcpy bandwidth
    local_insert_overhead: float  #: fixed cost of a lock-free local enqueue
    local_get_overhead: float  #: fixed cost of a lock-free local dequeue
    remote_op_overhead: float  #: fixed software cost added to each remote queue op
    rmw_overhead: float  #: target-side service time of one remote atomic op
    poll_cost: float  #: cost of one explicit poll (MPI two-sided baseline)
    local_lock_overhead: float = 0.08e-6  #: local (host-rank) mutex acquire/release
    cpu_reference: float = OPTERON_NS_PER_UTS_NODE  #: seconds per UTS work unit at factor 1.0
    cpu_factors: float | tuple[float, ...] = 1.0
    seconds_per_flop: float = 0.5e-9  #: reference-CPU cost of one floating-point op
    stride_chunk_overhead: float = 0.05e-6  #: per extra contiguous chunk of a strided op
    nb_issue_overhead: float = 0.3e-6  #: CPU cost of issuing one non-blocking op

    # ------------------------------------------------------------------ #
    # CPU model
    # ------------------------------------------------------------------ #
    def cpu_factor(self, rank: int) -> float:
        """Relative CPU time factor of ``rank`` (1.0 = reference Opteron)."""
        if isinstance(self.cpu_factors, tuple):
            return self.cpu_factors[rank]
        return self.cpu_factors

    def work_time(self, rank: int, units: float) -> float:
        """Seconds needed by ``rank`` to process ``units`` UTS-node-equivalents."""
        return units * self.cpu_reference * self.cpu_factor(rank)

    def validate(self, nprocs: int) -> None:
        """Check that this spec can model ``nprocs`` ranks."""
        if isinstance(self.cpu_factors, tuple) and len(self.cpu_factors) < nprocs:
            raise ValueError(
                f"machine {self.name!r} has {len(self.cpu_factors)} cpu factors, "
                f"need {nprocs}"
            )

    # ------------------------------------------------------------------ #
    # Communication primitives
    # ------------------------------------------------------------------ #
    def local_copy_time(self, nbytes: int) -> float:
        """Cost of a local memcpy of ``nbytes``."""
        return nbytes / self.local_mem_bandwidth

    def put_time(self, nbytes: int, nchunks: int = 1) -> float:
        """Initiator cost of a one-sided put: injection + transfer.

        ``nchunks > 1`` models a strided transfer (ARMCI PutS): each
        additional contiguous chunk costs descriptor/DMA setup time.
        """
        return (
            self.latency
            + nbytes / self.net_bandwidth
            + (nchunks - 1) * self.stride_chunk_overhead
        )

    def get_time(self, nbytes: int, nchunks: int = 1) -> float:
        """Initiator cost of a one-sided get: request + response with data."""
        return (
            2.0 * self.latency
            + nbytes / self.net_bandwidth
            + (nchunks - 1) * self.stride_chunk_overhead
        )

    def rmw_time(self) -> float:
        """Initiator cost of a remote atomic read-modify-write (round trip)."""
        return 2.0 * self.latency + self.rmw_overhead

    def lock_time(self) -> float:
        """Cost of acquiring an uncontended remote mutex (round trip)."""
        return 2.0 * self.latency

    def unlock_time(self) -> float:
        """Cost of releasing a remote mutex (one-way notification)."""
        return self.latency

    def replace(self, **kwargs: object) -> "MachineSpec":
        """Return a copy with the given fields overridden (for ablations)."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]


# Shared network constants of the InfiniBand cluster, calibrated to Table 1.
_CLUSTER_NET = dict(
    latency=3.0e-6,
    net_bandwidth=1.0e9,
    local_mem_bandwidth=4.0e9,
    local_insert_overhead=0.245e-6,
    local_get_overhead=0.111e-6,
    remote_op_overhead=1.0e-6,
    # ARMCI atomics are served by a software agent at the host (no NIC
    # offload in 2008-era ARMCI) — service time is microseconds, which is
    # what makes hot shared counters a real bottleneck (Figures 5-6).
    rmw_overhead=4.0e-6,
    poll_cost=0.5e-6,
    local_lock_overhead=0.08e-6,
)

# Cray XT4 (SeaStar interconnect): higher latency, slower single cores.
_XT4_NET = dict(
    latency=4.5e-6,
    net_bandwidth=1.3e9,
    local_mem_bandwidth=2.0e9,
    local_insert_overhead=0.433e-6,
    local_get_overhead=0.191e-6,
    remote_op_overhead=1.2e-6,
    rmw_overhead=5.0e-6,
    poll_cost=0.6e-6,
    local_lock_overhead=0.12e-6,
)


def uniform_cluster(nprocs: int) -> MachineSpec:
    """All-Opteron InfiniBand cluster (homogeneous reference machine)."""
    del nprocs  # uniform factor works for any process count
    return MachineSpec(name="cluster-uniform", cpu_factors=1.0, **_CLUSTER_NET)


def heterogeneous_cluster(nprocs: int) -> MachineSpec:
    """The paper's 64-node half-Opteron / half-Xeon cluster (§6.3).

    The paper runs with half of each node type at every scale, so ranks
    alternate Opteron/Xeon here; doubling the process count doubles the
    resources even though processors differ in speed.
    """
    factors = tuple(1.0 if r % 2 == 0 else XEON_FACTOR for r in range(nprocs))
    return MachineSpec(name="cluster-heterogeneous", cpu_factors=factors, **_CLUSTER_NET)


def cray_xt4(nprocs: int) -> MachineSpec:
    """The paper's Cray XT4 (§6): slower cores, higher-latency interconnect."""
    del nprocs
    return MachineSpec(name="cray-xt4", cpu_factors=XT4_FACTOR, **_XT4_NET)
