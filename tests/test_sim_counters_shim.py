"""The repro.sim.trace -> repro.sim.counters rename keeps a shim."""

from __future__ import annotations

import importlib
import sys
import warnings


def test_shim_reexports_counters_with_deprecation_warning():
    sys.modules.pop("repro.sim.trace", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.sim.trace")
    from repro.sim.counters import Counters

    assert shim.Counters is Counters
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.sim.counters" in str(w.message)
        for w in caught
    )
