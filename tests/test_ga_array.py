"""Tests for GlobalArray get/put/acc and GlobalCounter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ga import GlobalArray, GlobalCounter
from repro.sim.engine import Engine
from repro.util.errors import CommError


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=1_000_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestGlobalArray:
    def test_put_then_get_roundtrip(self):
        def main(proc):
            ga = GlobalArray.create(proc, "a", (8, 8))
            if proc.rank == 0:
                data = np.arange(16, dtype=float).reshape(4, 4)
                ga.put(proc, (2, 3), (6, 7), data)
            ga.sync(proc)
            got = ga.get(proc, (2, 3), (6, 7))
            return got.tolist()

        _, res = _run(4, main)
        expect = np.arange(16, dtype=float).reshape(4, 4).tolist()
        for r in res.returns:
            assert r == expect

    def test_get_spanning_multiple_owners(self):
        def main(proc):
            ga = GlobalArray.create(proc, "a", (10, 10))
            ga.access(proc)[...] = proc.rank
            ga.sync(proc)
            return ga.get(proc, (0, 0), (10, 10))

        eng, res = _run(4, main)
        full = res.returns[0]
        # each element equals the rank that owns it
        ga_obj = None
        for rank in range(4):
            dist_vals = np.unique(full)
            assert set(dist_vals) == {0.0, 1.0, 2.0, 3.0}
        assert full.shape == (10, 10)

    def test_acc_accumulates_atomically(self):
        def main(proc):
            ga = GlobalArray.create(proc, "f", (6, 6))
            ga.sync(proc)
            ones = np.ones((6, 6))
            for _ in range(3):
                ga.acc(proc, (0, 0), (6, 6), ones, alpha=2.0)
            ga.sync(proc)
            return ga.read_full(proc)

        _, res = _run(4, main)
        # 4 ranks x 3 accs x alpha 2 = 24 added to every element
        assert np.allclose(res.returns[0], 24.0)

    def test_fill(self):
        def main(proc):
            ga = GlobalArray.create(proc, "f", (5, 3))
            ga.fill(proc, 7.5)
            return ga.read_full(proc)

        _, res = _run(3, main)
        assert np.allclose(res.returns[2], 7.5)

    def test_unsafe_snapshot_matches_read_full(self):
        def main(proc):
            ga = GlobalArray.create(proc, "s", (7, 5))
            ga.access(proc)[...] = proc.rank + 1
            ga.sync(proc)
            proc.engine.state["ga_test_obj"] = ga
            return ga.read_full(proc)

        eng, res = _run(4, main)
        snap = eng.state["ga_test_obj"].unsafe_snapshot()
        assert np.array_equal(snap, res.returns[0])

    def test_create_mismatch_rejected(self):
        def main(proc):
            shape = (4, 4) if proc.rank == 0 else (5, 5)
            GlobalArray.create(proc, "bad", shape)

        with pytest.raises(CommError, match="mismatch"):
            _run(2, main)

    def test_remote_get_charges_more_than_local(self):
        def main(proc):
            ga = GlobalArray.create(proc, "c", (8, 8))
            ga.sync(proc)
            lo, hi = ga.distribution(proc.rank)
            t0 = proc.now
            ga.get(proc, lo, hi)  # own patch: local
            local_cost = proc.now - t0
            other = (proc.rank + 1) % proc.nprocs
            lo2, hi2 = ga.distribution(other)
            t1 = proc.now
            ga.get(proc, lo2, hi2)
            remote_cost = proc.now - t1
            return (local_cost, remote_cost)

        _, res = _run(4, main)
        for local_cost, remote_cost in res.returns:
            assert local_cost < remote_cost

    def test_1d_and_3d_arrays(self):
        def main(proc):
            v = GlobalArray.create(proc, "v", (17,))
            t = GlobalArray.create(proc, "t", (4, 4, 4))
            if proc.rank == 0:
                v.put(proc, (3,), (9,), np.arange(6, dtype=float))
                t.put(proc, (1, 1, 1), (3, 3, 3), np.ones((2, 2, 2)))
            v.sync(proc)
            return (v.get(proc, (3,), (9,)), t.get(proc, (0, 0, 0), (4, 4, 4)).sum())

        _, res = _run(3, main)
        vec, tsum = res.returns[1]
        assert np.array_equal(vec, np.arange(6, dtype=float))
        assert tsum == 8.0


class TestGlobalCounter:
    def test_read_inc_unique_and_total(self):
        def main(proc):
            c = GlobalCounter.create(proc)
            return [c.read_inc(proc) for _ in range(5)]

        _, res = _run(4, main)
        vals = [v for r in res.returns for v in r]
        assert sorted(vals) == list(range(20))

    def test_reset(self):
        def main(proc):
            c = GlobalCounter.create(proc)
            c.read_inc(proc)
            c.reset(proc)
            return c.read_inc(proc)

        _, res = _run(2, main)
        assert sorted(res.returns) == [0, 1]

    def test_counter_contention_serializes(self):
        """The hot shared counter is a contention point: total time for n
        claims grows with the number of claimants (the original SCF/TCE
        bottleneck the paper's Figures 5-6 expose)."""

        def main(proc):
            c = GlobalCounter.create(proc)
            for _ in range(20):
                c.read_inc(proc)
            return proc.now

        _, res2 = _run(2, main)
        _, res8 = _run(8, main)
        assert max(res8.returns) > max(res2.returns)
