"""Block distribution of dense N-d arrays over a process grid.

Follows GA's default strategy: factor the process count into a grid as
square as possible, split each dimension into contiguous near-equal
chunks, and give each rank one rectangular patch.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["BlockDistribution", "factor_grid"]


def factor_grid(nprocs: int, ndims: int) -> tuple[int, ...]:
    """Factor ``nprocs`` into an ``ndims``-dimensional grid, most-square first.

    Example:
        >>> factor_grid(12, 2)
        (4, 3)
        >>> factor_grid(8, 3)
        (2, 2, 2)
    """
    grid = [1] * ndims
    remaining = nprocs
    # Peel prime factors largest-first onto the currently-smallest grid dim.
    factors: list[int] = []
    n = remaining
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        i = int(np.argmin(grid))
        grid[i] *= f
    return tuple(sorted(grid, reverse=True))


class BlockDistribution:
    """Maps array indices to owning ranks and back.

    Attributes:
        shape: Global array shape.
        nprocs: Number of ranks sharing the array.
        grid: Process grid (one extent per array dimension).
    """

    def __init__(self, shape: Sequence[int], nprocs: int) -> None:
        self.shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"invalid shape {shape!r}")
        self.nprocs = nprocs
        self.grid = factor_grid(nprocs, len(self.shape))
        # Per-dimension chunk boundaries, e.g. [0, 3, 6, 8] for extent 8 / grid 3.
        self._bounds: list[np.ndarray] = []
        for extent, g in zip(self.shape, self.grid):
            # np.array_split semantics: first chunks one element larger.
            base, rem = divmod(extent, g)
            sizes = [base + (1 if i < rem else 0) for i in range(g)]
            self._bounds.append(np.cumsum([0] + sizes))

    # ------------------------------------------------------------------ #
    def _grid_coords(self, rank: int) -> tuple[int, ...]:
        return tuple(int(c) for c in np.unravel_index(rank, self.grid))

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        return int(np.ravel_multi_index(tuple(coords), self.grid))

    def patch(self, rank: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Return the ``(lo, hi)`` patch owned by ``rank`` (hi exclusive).

        Ranks beyond the grid own empty patches (GA allows nprocs that do
        not factor perfectly; here the grid always covers all ranks).
        """
        coords = self._grid_coords(rank)
        lo = tuple(int(self._bounds[d][c]) for d, c in enumerate(coords))
        hi = tuple(int(self._bounds[d][c + 1]) for d, c in enumerate(coords))
        return lo, hi

    def locate(self, index: Sequence[int]) -> int:
        """Rank owning element ``index``."""
        coords = []
        for d, i in enumerate(index):
            if not 0 <= i < self.shape[d]:
                raise IndexError(f"index {tuple(index)} out of bounds for {self.shape}")
            coords.append(int(np.searchsorted(self._bounds[d], i, side="right")) - 1)
        return self.rank_of_coords(coords)

    def patches_intersecting(
        self, lo: Sequence[int], hi: Sequence[int]
    ) -> Iterator[tuple[int, tuple[tuple[int, ...], tuple[int, ...]]]]:
        """Yield ``(rank, (plo, phi))`` for each owner patch overlapping [lo, hi).

        ``(plo, phi)`` is the overlapping sub-box in global coordinates.
        """
        lo = tuple(int(x) for x in lo)
        hi = tuple(int(x) for x in hi)
        for d in range(len(self.shape)):
            if not (0 <= lo[d] and lo[d] < hi[d] <= self.shape[d]):
                raise IndexError(f"patch [{lo}, {hi}) out of bounds for {self.shape}")
        # per-dim range of grid coordinates touched
        coord_ranges = []
        for d in range(len(self.shape)):
            c_lo = int(np.searchsorted(self._bounds[d], lo[d], side="right")) - 1
            c_hi = int(np.searchsorted(self._bounds[d], hi[d] - 1, side="right")) - 1
            coord_ranges.append(range(c_lo, c_hi + 1))
        for coords in np.ndindex(*[len(r) for r in coord_ranges]):
            gcoords = tuple(coord_ranges[d][coords[d]] for d in range(len(coords)))
            rank = self.rank_of_coords(gcoords)
            plo = tuple(
                max(lo[d], int(self._bounds[d][gcoords[d]])) for d in range(len(gcoords))
            )
            phi = tuple(
                min(hi[d], int(self._bounds[d][gcoords[d] + 1])) for d in range(len(gcoords))
            )
            yield rank, (plo, phi)
