"""Metrics primitives: histogram bucket edges, gauges, counter facade."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    CounterFamily,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.sim.counters import Counters


class TestHistogram:
    def test_value_on_edge_lands_in_that_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        h.observe(1.0)  # == edges[0]
        h.observe(2.0)  # == edges[1]
        h.observe(4.0)  # == edges[2]
        assert h.counts == [1, 1, 1, 0]

    def test_value_just_above_edge_lands_in_next_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        h.observe(1.0000001)
        h.observe(2.5)
        assert h.counts == [0, 1, 1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(100.0)
        assert h.counts == [0, 0, 1]
        assert h.max == 100.0

    def test_below_first_edge_lands_in_first_bucket(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-5.0)
        assert h.counts == [2, 0, 0]

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=())

    def test_stats_and_per_rank_attribution(self):
        h = Histogram("h", edges=(1.0, 10.0))
        h.observe(0.5, rank=0)
        h.observe(5.0, rank=1)
        h.observe(5.0, rank=1)
        assert h.count == 3
        assert h.sum == pytest.approx(10.5)
        assert h.mean == pytest.approx(3.5)
        d = h.to_dict()
        assert d["per_rank"]["1"] == {"count": 2, "sum": 10.0}
        assert d["min"] == 0.5 and d["max"] == 5.0

    def test_quantile_reports_bucket_upper_edge(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # two of four in the first bucket
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h", edges=(1.0,)).quantile(0.9) == 0.0


class TestGauge:
    def test_last_min_max_samples(self):
        g = Gauge("occ")
        g.set(0, 3.0)
        g.set(0, 7.0)
        g.set(1, 1.0)
        assert g.last == {0: 7.0, 1: 1.0}
        assert g.min == 1.0 and g.max == 7.0 and g.samples == 3

    def test_empty_to_dict_has_null_extremes(self):
        d = Gauge("g").to_dict()
        assert d["min"] is None and d["max"] is None and d["samples"] == 0


class TestCounters:
    def test_counters_is_a_counterfamily_facade(self):
        c = Counters()
        assert isinstance(c, CounterFamily)
        c.add(0, "steal_success")
        c.add(1, "steal_success", 2.0)
        assert c.total("steal_success") == 3.0
        assert c.per_rank_snapshot() == {
            0: {"steal_success": 1.0},
            1: {"steal_success": 2.0},
        }


class TestRegistry:
    def test_named_metrics_get_their_default_buckets(self):
        reg = MetricsRegistry()
        assert reg.histogram("steal_chunk").edges == tuple(float(e) for e in COUNT_BUCKETS)
        assert reg.histogram("steal_latency").edges == TIME_BUCKETS
        assert reg.histogram("unheard_of").edges == TIME_BUCKETS
        assert set(DEFAULT_BUCKETS) >= {"steal_latency", "wave_rtt", "lock_wait"}

    def test_observe_sample_add_roundtrip_through_to_dict(self):
        reg = MetricsRegistry()
        reg.observe("steal_latency", 1e-6, rank=0)
        reg.sample("queue_len", 2, 9.0)
        reg.add(0, "events", 4.0)
        d = reg.to_dict()
        assert d["histograms"]["steal_latency"]["count"] == 1
        assert d["gauges"]["queue_len"]["last"]["2"] == 9.0
        assert d["counters"]["total"]["events"] == 4.0
