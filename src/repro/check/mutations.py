"""Intentional protocol bugs, for validating the checker itself.

A model checker that has never caught a bug is indistinguishable from
one that cannot.  Each mutation here re-introduces a realistic race the
real protocol guards against — applied temporarily via monkey-patching
so the shipped protocol code stays untouched — and the test suite (and
``--mutate`` CLI flag) asserts that schedule exploration catches it and
produces a minimized, replayable trace.

This file implements bugs on purpose, so the lint rules that would
flag them are disabled for the whole file:

# repro: lint-disable-file=RPR001,RPR005
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.analyze import hooks
from repro.core.queue import SplitQueue
from repro.core.termination import TerminationDetector

__all__ = ["MUTATIONS", "apply_mutation"]


@contextlib.contextmanager
def unlocked_split() -> Iterator[None]:
    """Skip the split-pointer lock on the owner's reacquire move.

    The correct protocol adjusts the private/shared split under the queue
    mutex (or a reservation atomic in wait-free mode), so the move is
    atomic with respect to thieves.  This mutation performs the move as a
    read, a yield to the scheduler, then a write — the classic TOCTOU
    window: a thief that steals between the read and the write leaves the
    owner re-inserting descriptors that are already in flight, i.e. a
    duplicated task.  Caught by ``queue-consistency`` / ``exactly-once``.
    """
    orig = SplitQueue._co_reacquire

    def racy_reacquire(self: SplitQueue, proc):
        if not self._shared:
            return
        k = max(1, int(len(self._shared) * self.config.reacquire_fraction))
        hooks.shared_read(proc, self._race_region)
        moved = self._shared[:k]  # read the split window ...
        # ... unlocked, and spanning several scheduler yields — the
        # window a real one-sided metadata read/update pair leaves open
        for _ in range(3):
            yield from proc.co_sleep(self.engine.machine.local_lock_overhead)
        hooks.shared_update(proc, self._race_region)
        self._private.extend(moved)
        del self._shared[:k]  # stale write-back of the split pointer
        self.counters.add(proc.rank, "reacquire_ops")
        self.counters.add(proc.rank, "tasks_reacquired", k)

    SplitQueue._co_reacquire = racy_reacquire
    try:
        yield
    finally:
        SplitQueue._co_reacquire = orig


@contextlib.contextmanager
def no_dirty_mark() -> Iterator[None]:
    """Drop §5.3's dirty marking entirely on steals.

    Without it a thief that already voted white can acquire work the
    detector never hears about, so the root can declare termination while
    stolen tasks are still queued.  Caught by ``no-early-termination`` /
    ``exactly-once`` (or by the scheduler's own protocol assertion).

    Use the ``steals`` target to catch this one: in workloads that also
    do remote adds, the add's piggybacked dirty mark (a separate,
    unmutated mechanism) blackens the victim's vote and the run
    self-heals on almost every schedule.
    """
    orig_mark = TerminationDetector.steal_mark
    orig_note = TerminationDetector.note_steal

    def no_steal_mark(self: TerminationDetector, proc, victim: int):
        return None

    def silent_note_steal(self: TerminationDetector, proc, victim: int) -> None:
        self.counters.add(proc.rank, "dirty_msgs_skipped")

    TerminationDetector.steal_mark = no_steal_mark
    TerminationDetector.note_steal = silent_note_steal
    try:
        yield
    finally:
        TerminationDetector.steal_mark = orig_mark
        TerminationDetector.note_steal = orig_note


@contextlib.contextmanager
def late_dirty_mark() -> Iterator[None]:
    """Deliver the §5.3 dirty mark as a separate fenced message *after*
    the steal, instead of inside the steal's locked transfer.

    This is the historical design of this codebase — and it is wrong:
    the fence orders the mark after the steal's transfers, but nothing
    orders it before the *victim's next vote*.  The victim can observe
    its emptied queue, vote white, and have the root complete an
    all-white wave before the mark lands, while the stolen work runs on
    a thief that also voted white.  Found by a task-graph property test
    (a dependent task enabled by the stolen work was never executed);
    kept as a mutation so the checker demonstrates the window is real.
    """
    orig_mark = TerminationDetector.steal_mark
    orig_note = TerminationDetector.note_steal

    def no_steal_mark(self: TerminationDetector, proc, victim: int):
        return None

    def late_note_steal(self: TerminationDetector, proc, victim: int):
        # A generator: the scheduler drives communicating note_steal
        # replacements (the production one is a plain function).
        self._mark_dirty(proc)
        if self._need_mark(victim):
            yield from self.armci.co_fence(proc, victim)
            victim_det = self.peers[victim]
            yield from self.armci.co_put(
                proc, victim, 8, lambda: victim_det._mark_dirty(proc, release=True)
            )
            self.counters.add(proc.rank, "dirty_msgs")
        else:
            self.counters.add(proc.rank, "dirty_msgs_skipped")

    TerminationDetector.steal_mark = no_steal_mark
    TerminationDetector.note_steal = late_note_steal
    try:
        yield
    finally:
        TerminationDetector.steal_mark = orig_mark
        TerminationDetector.note_steal = orig_note


@contextlib.contextmanager
def fence_elision() -> Iterator[None]:
    """Send the §5.3 dirty mark as a message without fencing the steal's
    transfers (the ``late_dirty_mark`` protocol minus its fence).

    A message-based mark must fence the thief's earlier one-sided ops to
    the victim first, so the victim cannot observe the mark, vote, and
    then have the steal's index update land afterwards.  This mutation
    skips the fence — the window is narrow and rarely corrupts state on
    random schedules, which is exactly why the race detector's fence
    discipline (``unfenced-flag-store``) is the right tool to catch it.
    """
    orig_mark = TerminationDetector.steal_mark
    orig_note = TerminationDetector.note_steal

    def no_steal_mark(self: TerminationDetector, proc, victim: int):
        return None

    def unfenced_note_steal(self: TerminationDetector, proc, victim: int):
        self._mark_dirty(proc)
        if self._need_mark(victim):
            victim_det = self.peers[victim]
            yield from self.armci.co_put(
                proc, victim, 8, lambda: victim_det._mark_dirty(proc, release=True)
            )
            self.counters.add(proc.rank, "dirty_msgs")
        else:
            self.counters.add(proc.rank, "dirty_msgs_skipped")

    TerminationDetector.steal_mark = no_steal_mark
    TerminationDetector.note_steal = unfenced_note_steal
    try:
        yield
    finally:
        TerminationDetector.steal_mark = orig_mark
        TerminationDetector.note_steal = orig_note


@contextlib.contextmanager
def lock_order_inversion() -> Iterator[None]:
    """Thieves lock their *own* queue before the victim's during a steal.

    A plausible "optimization": reserving absorb space up front so the
    stolen chunk can land without a second lock round. It creates the
    textbook deadlock recipe — rank A holds ``q[A]`` wanting ``q[B]``
    while rank B holds ``q[B]`` wanting ``q[A]`` — yet almost never
    hangs in practice because steal critical sections are short; on the
    default schedule every run completes.  That makes it the target for
    *predictive* lock-order analysis: the inverted order shows up in the
    lock-order graph of any trace with two-way stealing, and the
    deadlock witness strategy can steer the chains into an actual cycle
    (reported by the capture's wait-for monitor).

    The wrapper announces its inverted acquisition with a
    ``steal-own-lock`` protocol event — the gate the witness keys on.
    """
    orig_init = SplitQueue.__init__
    orig_steal = SplitQueue.co_steal_from

    def registering_init(self: SplitQueue, *args, **kwargs) -> None:
        orig_init(self, *args, **kwargs)
        self.engine.state.setdefault("queue-registry", {})[self.owner] = self

    def inverted_steal_from(
        self: SplitQueue, proc, want, probe_first=False, on_transfer=None
    ):
        own = self.engine.state.get("queue-registry", {}).get(proc.rank)
        if own is None or own.config.wait_free_steals or own is self:
            return (yield from orig_steal(
                self, proc, want, probe_first=probe_first, on_transfer=on_transfer
            ))
        hooks.protocol(proc, "steal-own-lock", victim=self.owner)
        yield from own.mutex.co_acquire(proc)
        try:
            return (yield from orig_steal(
                self, proc, want, probe_first=probe_first, on_transfer=on_transfer
            ))
        finally:
            yield from own.mutex.co_release(proc)

    SplitQueue.__init__ = registering_init
    SplitQueue.co_steal_from = inverted_steal_from
    try:
        yield
    finally:
        SplitQueue.__init__ = orig_init
        SplitQueue.co_steal_from = orig_steal


@contextlib.contextmanager
def no_mutation() -> Iterator[None]:
    yield


#: CLI names for the available mutations.
MUTATIONS: dict[str, Callable[[], contextlib.AbstractContextManager]] = {
    "none": no_mutation,
    "unlocked_split": unlocked_split,
    "no_dirty_mark": no_dirty_mark,
    "late_dirty_mark": late_dirty_mark,
    "fence_elision": fence_elision,
    "lock_order_inversion": lock_order_inversion,
}


def apply_mutation(name: str | None) -> contextlib.AbstractContextManager:
    """Context manager applying mutation ``name`` (None/"none" = no-op)."""
    key = name if name is not None else "none"
    try:
        return MUTATIONS[key]()
    except KeyError:
        raise ValueError(
            f"unknown mutation {key!r}; choose from {sorted(MUTATIONS)}"
        ) from None
