"""Per-process statistics for one ``tc_process`` phase.

These are the *core* per-phase numbers every caller gets back from
``TaskCollection.process``.  Auxiliary measurements (latency
distributions, queue occupancy, lock hold times, ...) live in the
:class:`repro.obs.metrics.MetricsRegistry` of an attached
:class:`repro.obs.record.Recorder` rather than in a free-form dict
here — attach a recorder to the engine to collect them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ProcessStats"]


@dataclass
class ProcessStats:
    """What one rank did during a single task-parallel phase.

    ``time_total`` is the virtual time the rank spent inside
    ``tc_process``; ``time_working`` the part spent executing task
    callbacks; the rest is queue management, stealing, and idling.
    """

    rank: int
    tasks_executed: int = 0
    time_total: float = 0.0
    time_working: float = 0.0
    steals_attempted: int = 0
    steals_successful: int = 0
    tasks_stolen: int = 0
    tasks_released: int = 0
    tasks_reacquired: int = 0
    dirty_msgs: int = 0
    dirty_msgs_skipped: int = 0
    td_msgs: int = 0
    waves: int = 0

    @property
    def time_overhead(self) -> float:
        """Virtual time spent outside task callbacks."""
        return self.time_total - self.time_working

    @property
    def efficiency(self) -> float:
        """Fraction of the phase spent executing tasks."""
        return self.time_working / self.time_total if self.time_total > 0 else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """All fields plus the derived properties, JSON-ready.

        Used by the bench report and the ``repro.obs`` metrics exporter.
        """
        d: dict[str, float | int] = {f.name: getattr(self, f.name) for f in fields(self)}
        d["time_overhead"] = self.time_overhead
        d["efficiency"] = self.efficiency
        return d
