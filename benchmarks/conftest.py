"""Benchmark-suite configuration.

Each ``bench_*.py`` regenerates one table/figure of the paper via the
``repro.bench`` harness, prints the same rows/series the paper reports,
and asserts the paper's *shape* (who wins, by roughly what factor).
Wall-clock time of the regeneration itself is what pytest-benchmark
records.  Scale with ``REPRO_SCALE=full`` for paper-sized process
counts.
"""
