"""Figures 5 and 6: SCF & TCE — Scioto vs Original, speedup and runtime.

Figure 5 plots parallel speedup (vs the single-process Scioto run) and
Figure 6 the raw runtimes, for four configurations on the heterogeneous
cluster: SCF, TCE, SCF-Original, TCE-Original.  The expected shape: the
Original (replicated list + shared counter) versions track the Scioto
versions at small scale, then flatten — mildly for SCF, severely for
TCE, whose counter claims outnumber its real tasks by ~6x.
"""

from __future__ import annotations

from repro.apps.scf import SCFProblem, run_scf_original, run_scf_scioto
from repro.apps.tce import TCEProblem, run_tce_original, run_tce_scioto
from repro.bench.harness import sweep_procs
from repro.sim.machines import heterogeneous_cluster
from repro.util.records import Series, SweepResult

__all__ = ["run_figure56", "scf_problem", "tce_problem"]


def scf_problem(scale: str) -> SCFProblem:
    if scale == "full":
        return SCFProblem(nblocks=40, blocksize=5)
    return SCFProblem(nblocks=20, blocksize=5)


def tce_problem(scale: str) -> TCEProblem:
    if scale == "full":
        return TCEProblem(nblocks=16, blocksize=64, density=0.4)
    return TCEProblem(nblocks=10, blocksize=48, density=0.4)


def run_figure56(scale: str = "quick") -> SweepResult:
    """Regenerate Figures 5+6; emits speedup and runtime series per config."""
    iters = 2
    scf = scf_problem(scale)
    tce = tce_problem(scale)
    procs = sweep_procs(scale, max_full=64, max_quick=16)
    base_scf = run_scf_scioto(1, scf, iterations=iters).elapsed
    base_tce = run_tce_scioto(1, tce).elapsed

    runs = {
        "SCF": lambda p: run_scf_scioto(
            p, scf, iterations=iters, machine=heterogeneous_cluster(p)
        ).elapsed,
        "SCF-Original": lambda p: run_scf_original(
            p, scf, iterations=iters, machine=heterogeneous_cluster(p)
        ).elapsed,
        "TCE": lambda p: run_tce_scioto(
            p, tce, machine=heterogeneous_cluster(p)
        ).elapsed,
        "TCE-Original": lambda p: run_tce_original(
            p, tce, machine=heterogeneous_cluster(p)
        ).elapsed,
    }
    bases = {"SCF": base_scf, "SCF-Original": base_scf,
             "TCE": base_tce, "TCE-Original": base_tce}

    result = SweepResult(experiment="figure5+6")
    for label, fn in runs.items():
        speedup = Series(label=f"{label}-speedup", unit="x")
        runtime = Series(label=f"{label}-runtime", unit="s")
        for p in procs:
            elapsed = fn(p)
            speedup.add(p, bases[label] / elapsed)
            runtime.add(p, elapsed)
        result.series.append(speedup)
        result.series.append(runtime)
    result.notes.append(f"SCF: nbf={scf.nbf}, {len(scf.significant_pairs())} significant pairs")
    result.notes.append(
        f"TCE: n={tce.n}, {len(tce.nonzero_triples())} real tasks of {len(tce.all_triples())} triples"
    )
    result.notes.append(f"1-proc baselines: SCF {base_scf:.3f}s, TCE {base_tce:.3f}s")
    return result
