"""Rendering of benchmark results: aligned tables and paper-vs-measured."""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.util.format import format_table
from repro.util.records import SweepResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.stats import ProcessStats

__all__ = ["render", "paper_vs_measured", "per_rank_table"]


def render(result: SweepResult, x_label: str = "procs", fmt: str = "{:.3g}") -> str:
    """Render a sweep as one aligned table, one column per series."""
    xs = sorted({x for s in result.series for x in s.xs})
    headers = [x_label] + [
        f"{s.label}" + (f" [{s.unit}]" if s.unit else "") for s in result.series
    ]
    rows = []
    for x in xs:
        row: list[object] = [int(x) if float(x).is_integer() else x]
        for s in result.series:
            row.append(fmt.format(s.y_at(x)) if x in s.xs else "-")
        rows.append(row)
    body = format_table(headers, rows, title=f"== {result.experiment} ==")
    if result.notes:
        body += "\n" + "\n".join(f"  note: {n}" for n in result.notes)
    return body


#: ``ProcessStats.to_dict`` keys shown by :func:`per_rank_table`, in order.
_PER_RANK_COLUMNS = (
    "tasks_executed",
    "steals_attempted",
    "steals_successful",
    "tasks_stolen",
    "td_msgs",
    "waves",
    "efficiency",
)


def per_rank_table(stats: Sequence["ProcessStats"], title: str = "per-rank") -> str:
    """Render one row per rank from :meth:`ProcessStats.to_dict`."""
    headers = ["rank"] + [c.replace("_", " ") for c in _PER_RANK_COLUMNS]
    rows = []
    for st in stats:
        d = st.to_dict()
        row: list[object] = [d["rank"]]
        for c in _PER_RANK_COLUMNS:
            v = d[c]
            row.append(f"{v:.3f}" if isinstance(v, float) else v)
        rows.append(row)
    return format_table(headers, rows, title=f"== {title} ==")


def paper_vs_measured(
    title: str,
    rows: Sequence[tuple[str, str, str, str]],
) -> str:
    """Render a (quantity, paper value, measured value, verdict) table."""
    return format_table(
        ["quantity", "paper", "measured", "shape"],
        rows,
        title=title,
    )
