"""Fleet jobs: the unit of work the meta-scheduler farms out.

A :class:`Job` is a small, picklable description of one batch of
simulation work; :func:`execute_job` runs it *inside a worker process*
and returns a picklable :class:`JobResult`.  Three job kinds cover the
embarrassingly parallel surfaces of the toolchain:

``explore``
    One shard of a schedule-exploration campaign: a scenario, a
    strategy, and a list of schedule indices.  Each index maps to a
    strategy seed through :func:`repro.fleet.seeds.derive_seed`, so the
    explored schedule set is independent of how indices were sharded
    into jobs.  Failures come back with their full decision lists so
    the parent can persist replayable traces.

``bench``
    One experiment of the paper-figure suite (``repro.bench``), run at
    a given scale.  Virtual-time results are deterministic, so a
    sharded suite reproduces the serial record exactly.

``mutation``
    One cell of the mutation matrix: explore a scenario under an
    intentionally seeded protocol bug and report whether the checker
    caught it — the fleet-scale version of the checker's self-test.

``predict``
    One scenario of a predictive-analysis campaign
    (:mod:`repro.analyze.predict`): capture a default-schedule trace,
    run the lockset / weakened-HB / obligation / lock-graph passes, and
    confirm predictions with witness replays — all worker-side; the
    parent gets a serialized report plus its rendered text.

``obs``
    One recorded run of an observability target
    (:mod:`repro.obs.scenarios`) streamed through a constant-memory
    :class:`~repro.obs.stream.SpillSink` into a worker-local spill
    directory.  The result carries only the spill path and counters —
    never the spans — so fleet-wide tracing stays bounded; the parent
    merges the spills into one multi-process Chrome trace with
    :func:`repro.obs.stream.merge_spills`.  With ``live=True`` each
    worker also publishes a telemetry feed (worker-local JSONL file)
    that the parent interleaves into one cluster-wide timeline with
    :func:`repro.obs.live.merge_feeds`.

``probe``
    Fleet self-test jobs (sleep / crash / raise) used by the failure-
    path tests and ``python -m repro.fleet probe``; a ``crash`` probe
    SIGKILLs its own worker mid-job to exercise requeue handling.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Job",
    "JobResult",
    "execute_job",
    "explore_jobs",
    "bench_jobs",
    "mutation_jobs",
    "predict_jobs",
    "obs_jobs",
    "trace_fingerprint",
    "JOB_KINDS",
]

JOB_KINDS = ("explore", "bench", "mutation", "predict", "obs", "probe")


@dataclass
class Job:
    """One schedulable unit of fleet work.

    Attributes:
        kind: One of :data:`JOB_KINDS`.
        key: Stable identifier, unique within a campaign; used for
            reporting and requeue accounting.
        params: Kind-specific payload (picklable primitives only).
        attempts: Dispatch count so far; maintained by the scheduler.
            A job whose worker dies is requeued exactly once
            (``attempts`` reaches 2) before being reported as crashed.
    """

    kind: str
    key: str
    params: dict[str, Any] = field(default_factory=dict)
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}; use one of {JOB_KINDS}")


@dataclass
class JobResult:
    """What a worker sends back for one completed job."""

    key: str
    kind: str
    worker: int = -1
    wall_s: float = 0.0
    error: str | None = None
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None


# ---------------------------------------------------------------------- #
# Job builders (parent side)
# ---------------------------------------------------------------------- #
def explore_jobs(
    targets: list[str],
    schedules: int,
    strategy: str = "random",
    seed: int = 0,
    engine_seed: int = 0,
    mutation: str | None = None,
    batch: int | None = None,
    nworkers: int = 1,
) -> list[Job]:
    """Shard ``schedules`` interleavings of each target into fleet jobs.

    The default batch size aims for ~4 jobs per worker per target so
    the work-stealing scheduler has slack to rebalance; explicit
    ``batch`` overrides.  Index ranges are contiguous per job, so jobs
    for one target stay adjacent in the initial distribution (locality)
    while remaining partition-independent thanks to derived seeds.
    """
    if schedules < 0:
        raise ValueError("schedules must be >= 0")
    if batch is None:
        batch = max(1, schedules // max(1, nworkers * 4))
    jobs = []
    for target in targets:
        for lo in range(0, schedules, batch):
            indices = list(range(lo, min(lo + batch, schedules)))
            jobs.append(
                Job(
                    kind="explore",
                    key=f"explore/{target}/{strategy}/{indices[0]}-{indices[-1]}",
                    params={
                        "target": target,
                        "strategy": strategy,
                        "indices": indices,
                        "seed": seed,
                        "engine_seed": engine_seed,
                        "mutation": mutation,
                    },
                )
            )
    return jobs


def bench_jobs(experiments: list[str], scale: str) -> list[Job]:
    """One job per paper-figure experiment."""
    return [
        Job(kind="bench", key=f"bench/{name}", params={"experiment": name, "scale": scale})
        for name in experiments
    ]


def mutation_jobs(
    cells: list[tuple[str, str]], schedules: int, seed: int = 0
) -> list[Job]:
    """One job per ``(target, mutation)`` cell of the mutation matrix."""
    return [
        Job(
            kind="mutation",
            key=f"mutation/{target}/{mutation}",
            params={
                "target": target,
                "mutation": mutation,
                "schedules": schedules,
                "seed": seed,
            },
        )
        for target, mutation in cells
    ]


def predict_jobs(
    targets: list[str],
    mutation: str | None = None,
    engine_seed: int = 0,
    confirm: bool = True,
    out_dir: str | None = None,
) -> list[Job]:
    """One job per target of a predictive-analysis campaign."""
    return [
        Job(
            kind="predict",
            key=f"predict/{target}/{mutation or 'none'}",
            params={
                "target": target,
                "mutation": mutation,
                "engine_seed": engine_seed,
                "confirm": confirm,
                "out_dir": out_dir,
            },
        )
        for target in targets
    ]


def obs_jobs(
    targets: list[str],
    out_dir: str,
    nprocs: int = 4,
    seed: int = 0,
    window: float | None = None,
    shard_size: int | None = None,
    live: bool = False,
    live_interval: float | None = None,
) -> list[Job]:
    """One streamed recording job per obs target.

    Each job spills into its own subdirectory of ``out_dir`` so merged
    traces never interleave shards from different runs; with ``live``
    each job also writes its own telemetry feed beside the spill.
    """
    return [
        Job(
            kind="obs",
            key=f"obs/{target}",
            params={
                "target": target,
                "nprocs": nprocs,
                "seed": seed,
                "spill_dir": os.path.join(out_dir, f"spill-{target}"),
                "window": window,
                "shard_size": shard_size,
                "live_path": (
                    os.path.join(out_dir, f"live-{target}.jsonl") if live else None
                ),
                "live_interval": live_interval,
            },
        )
        for target in targets
    ]


# ---------------------------------------------------------------------- #
# Trace fingerprints
# ---------------------------------------------------------------------- #
def trace_fingerprint(
    target: str,
    strategy: str,
    strategy_seed: int,
    engine_seed: int,
    mutation: str | None,
    signature: list,
    decisions: list[dict],
) -> str:
    """Content hash identifying one failing schedule for deduplication.

    Canonical-JSON SHA-256 over everything that determines the failing
    interleaving, so two workers that independently hit the same
    schedule produce byte-identical fingerprints.
    """
    doc = json.dumps(
        {
            "target": target,
            "strategy": strategy,
            "strategy_seed": strategy_seed,
            "engine_seed": engine_seed,
            "mutation": mutation or "none",
            "signature": signature,
            "decisions": decisions,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(doc.encode()).hexdigest()


# ---------------------------------------------------------------------- #
# Execution (worker side)
# ---------------------------------------------------------------------- #
def _execute_explore(params: dict[str, Any]) -> dict[str, Any]:
    # Imports live here so the scheduler parent can be imported without
    # pulling the whole runtime, and so forkserver preload stays light.
    from repro.check.runner import run_once
    from repro.check.scenarios import make_scenario
    from repro.check.strategies import make_strategy
    from repro.fleet.seeds import derive_seed
    from repro.obs.metrics import MetricsRegistry

    target = params["target"]
    strategy_name = params["strategy"]
    scenario = make_scenario(target)
    # Worker-local registry; rides back on the result and is merged into
    # the fleet registry under this worker's id (MetricsRegistry.merge_dict).
    registry = MetricsRegistry()
    events = 0
    failures = []
    for index in params["indices"]:
        strat_seed = derive_seed(target, strategy_name, params["seed"], index)
        strategy = make_strategy(strategy_name, seed=strat_seed)
        outcome = run_once(
            scenario,
            strategy,
            engine_seed=params["engine_seed"],
            mutation=params["mutation"],
        )
        events += outcome.events
        registry.observe("schedule_events", outcome.events, rank=0)
        registry.add(0, "schedules_run")
        if outcome.failed:
            registry.add(0, "failing_schedules")
            failures.append(
                {
                    "index": index,
                    "strategy_seed": strat_seed,
                    "signature": outcome.signature_json,
                    "failure": outcome.describe(),
                    "decisions": outcome.decisions,
                    "fingerprint": trace_fingerprint(
                        target,
                        strategy_name,
                        strat_seed,
                        params["engine_seed"],
                        params["mutation"],
                        outcome.signature_json,
                        outcome.decisions,
                    ),
                }
            )
    return {
        "target": target,
        "strategy": strategy_name,
        "schedules": len(params["indices"]),
        "events": events,
        "failures": failures,
        "metrics": registry.to_dict(),
    }


def _execute_bench(params: dict[str, Any]) -> dict[str, Any]:
    from repro.bench.__main__ import EXPERIMENTS

    name = params["experiment"]
    fn, _render = EXPERIMENTS[name]
    result = fn(params["scale"])
    return {"experiment": name, "result": result.to_dict()}


def _execute_mutation(params: dict[str, Any]) -> dict[str, Any]:
    shard = _execute_explore(
        {
            "target": params["target"],
            "strategy": "random",
            "indices": list(range(params["schedules"])),
            "seed": params["seed"],
            "engine_seed": 0,
            "mutation": params["mutation"],
        }
    )
    return {
        "target": params["target"],
        "mutation": params["mutation"],
        "schedules": shard["schedules"],
        "caught": bool(shard["failures"]),
        "signatures": sorted(
            {json.dumps(f["signature"]) for f in shard["failures"]}
        ),
    }


def _execute_predict(params: dict[str, Any]) -> dict[str, Any]:
    from repro.analyze.predict import predict

    report = predict(
        params["target"],
        mutation=params["mutation"],
        engine_seed=params["engine_seed"],
        confirm=params["confirm"],
        out_dir=params["out_dir"],
    )
    return {
        "target": report.target,
        "mutation": report.mutation,
        "events_captured": report.events_captured,
        "base_error": report.base_error,
        "predictions": len(report.predictions),
        "confirmed": report.confirmed,
        "kinds": sorted({p.kind for p in report.predictions}),
        "text": report.describe(),
    }


def _execute_obs(params: dict[str, Any]) -> dict[str, Any]:
    from repro.obs.flight import flight_from_env
    from repro.obs.scenarios import run_target

    run = run_target(
        params["target"],
        nprocs=params.get("nprocs", 4),
        seed=params.get("seed", 0),
        record=True,
        events=False,
        stream_dir=params["spill_dir"],
        shard_size=params.get("shard_size"),
        window=params.get("window"),
        live_path=params.get("live_path"),
        live_interval=params.get("live_interval"),
        # Armed when the fleet was launched with --flight-dir: periodic
        # flushes mean a SIGKILL'd worker still leaves its last spans.
        flight=flight_from_env(context=f"obs-{params['target']}"),
    )
    rec = run.recorder
    # Only the spill path and counters cross the pipe; the spans stay on
    # disk in the worker-local spill, keeping results O(1) regardless of
    # run length.
    return {
        "target": params["target"],
        "spill_dir": params["spill_dir"],
        "live_path": params.get("live_path"),
        "nprocs": len(run.engine.procs),
        "elapsed": run.elapsed,
        "events": run.events,
        "spans": rec.span_count,
        "instants": rec.instant_count,
        "edges": rec.edge_count,
        "dropped": rec.dropped,
        "metrics": rec.metrics.to_dict(),
    }


def _execute_probe(params: dict[str, Any]) -> dict[str, Any]:
    action = params.get("action", "ok")
    if action == "sleep":
        time.sleep(params.get("seconds", 0.05))
    elif action == "crash":
        # Self-test of the fleet's crash handling: die mid-job the way
        # an OOM-killed or segfaulted worker would — no reply, no exit
        # handler, just a vanished process.
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "exit":
        os._exit(params.get("code", 17))
    elif action == "raise":
        raise RuntimeError(params.get("message", "probe raised"))
    elif action != "ok":
        raise ValueError(f"unknown probe action {action!r}")
    return {"echo": params.get("payload"), "pid": os.getpid()}


_EXECUTORS = {
    "explore": _execute_explore,
    "bench": _execute_bench,
    "mutation": _execute_mutation,
    "predict": _execute_predict,
    "obs": _execute_obs,
    "probe": _execute_probe,
}


def execute_job(job: Job, worker: int = -1) -> JobResult:
    """Run ``job`` to completion; exceptions become ``result.error``."""
    t0 = time.perf_counter()  # host-side timing # repro: lint-disable=RPR002
    result = JobResult(key=job.key, kind=job.kind, worker=worker)
    try:
        result.payload = _EXECUTORS[job.kind](job.params)
    except Exception as exc:  # noqa: BLE001 - worker must never die on a job error
        result.error = f"{type(exc).__name__}: {exc}"
    result.wall_s = time.perf_counter() - t0  # repro: lint-disable=RPR002
    return result
