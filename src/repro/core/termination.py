"""Wave-based distributed termination detection (§5.2-§5.3).

Implements the Francez-Rodeh style algorithm the paper describes: a
binary spanning tree is mapped onto the process space (children of rank
``r`` are ``2r+1`` and ``2r+2``); a token wave travels down and back up
the tree.  Tokens start white; a process colors its up-token black when
it (or any descendant) performed a load-balancing operation since its
last vote.  The root declares termination only when a wave returns
all-white while it is itself passive; otherwise it launches another
wave.

Dirty marking and the votes-before optimization (§5.3)
------------------------------------------------------

Steals are one-sided, so the victim does not observe them.  To prevent
the scenario where a thief that already cast a white vote becomes active
again with stolen work, the thief sends the victim a *dirty mark* — an
extra message that forces the victim's next token black.  The paper's
optimization elides this message when it provably cannot matter:

    the victim ``pv`` only needs marking if the thief ``pt`` has already
    voted in the current wave AND NOT ``pv votes-before pt`` (i.e. ``pv``
    is not a descendant of ``pt`` in the spanning tree).

Both modes are implemented; the benchmark ``bench_ablation_termination``
counts the messages saved.

Tokens travel as one-sided messages into per-process mailboxes (how an
ARMCI-based implementation delivers them); each scheduler iteration
drains the mailbox, so active processes still forward down-waves
promptly while only *passive* processes vote.
"""

from __future__ import annotations

from repro.analyze import hooks
from repro.armci.runtime import Armci
from repro.obs.record import Recorder, instant
from repro.obs.tracing import trace
from repro.sim.engine import Engine, Proc
from repro.sim.counters import Counters
from repro.util.errors import TaskCollectionError

__all__ = ["TerminationDetector", "is_descendant", "tree_children", "tree_parent"]

WHITE = 0
BLACK = 1


def tree_parent(rank: int) -> int:
    """Parent of ``rank`` in the binary spanning tree (root is 0)."""
    if rank == 0:
        raise ValueError("root has no parent")
    return (rank - 1) // 2


def tree_children(rank: int, nprocs: int) -> list[int]:
    """Children of ``rank`` in the binary spanning tree."""
    return [c for c in (2 * rank + 1, 2 * rank + 2) if c < nprocs]


def is_descendant(a: int, b: int) -> bool:
    """True if ``a`` is a (proper) descendant of ``b`` in the spanning tree.

    In the up-wave, descendants vote before their ancestors, so
    ``is_descendant(a, b)`` is exactly the paper's ``a votes-before b``
    relation for distinct ranks on one root-to-leaf path.
    """
    while a > b:
        a = (a - 1) // 2
        if a == b:
            return True
    return False


class TerminationDetector:
    """Per-rank termination-detection state for one ``tc_process`` phase.

    All ranks' detectors for a phase are created together (see
    ``TaskCollection``); thieves reach their victim's detector through
    one-sided writes, charged through the ARMCI layer.
    """

    def __init__(
        self,
        engine: Engine,
        rank: int,
        tag: str,
        peers: list["TerminationDetector"],
        optimize: bool,
        counters: Counters,
    ) -> None:
        self.engine = engine
        self.armci = Armci.attach(engine)
        self.rank = rank
        self.nprocs = engine.nprocs
        self.tag = tag
        self.peers = peers  # shared list; peers[r] is rank r's detector
        self.optimize = optimize
        self.counters = counters
        self.children = tree_children(rank, self.nprocs)
        self.parent = tree_parent(rank) if rank != 0 else None
        self.dirty = False
        self.voted = False
        self.in_wave = False
        self.wave = 0
        self.child_tokens: dict[int, int] = {}
        self.done = False
        self._wave_started = 0.0  # root's wave launch time (obs only)

    # ------------------------------------------------------------------ #
    # Load-balancing hooks
    # ------------------------------------------------------------------ #
    def note_steal(self, proc: Proc, victim: int) -> None:
        """Record a successful steal; possibly dirty-mark the victim (§5.3)."""
        self._mark_dirty(proc)
        need_mark = (not self.optimize) or (
            self.voted and not is_descendant(victim, self.rank)
        )
        if need_mark:
            # The dirty mark is a *release* store: it must not be observed
            # by the victim before the steal's one-sided transfers have
            # completed, or the victim could vote white between seeing the
            # mark and the stolen tasks landing.  Fence first (§5.3).
            self.armci.fence(proc, victim)
            victim_det = self.peers[victim]
            self.armci.put(
                proc, victim, 8, lambda: victim_det._mark_dirty(proc, release=True)
            )
            instant(proc, "dirty-mark", "termination", detail=victim)
            self.counters.add(proc.rank, "dirty_msgs")
        else:
            instant(proc, "dirty-mark-skipped", "termination", detail=victim)
            self.counters.add(proc.rank, "dirty_msgs_skipped")

    def note_remote_add(self, proc: Proc, target: int) -> None:
        """Record a remote task insertion; the dirty flag piggybacks on the
        insert message itself (no extra communication)."""
        self._mark_dirty(proc)
        self.peers[target]._mark_dirty(proc)

    def _mark_dirty(self, proc: Proc | None = None, release: bool = False) -> None:
        if proc is not None:
            hooks.flag_write(
                proc,
                ("td-dirty", self.tag, self.rank),
                target=self.rank,
                release=release,
            )
        self.dirty = True

    # ------------------------------------------------------------------ #
    # Progress engine
    # ------------------------------------------------------------------ #
    def progress(self, proc: Proc, idle: bool) -> bool:
        """Drain pending tokens; vote / run the root wave logic when idle.

        Called from the scheduler on every iteration (cheap local mailbox
        probe while messages are absent).  Returns True once global
        termination has been detected and propagated to this rank.
        """
        from repro.armci.runtime import MAILBOX_CHECK_COST

        proc.advance(MAILBOX_CHECK_COST)
        if not self.armci.mailbox_empty(proc, self.tag):
            while True:
                msg = self.armci.poll_mailbox(proc, self.tag)
                if msg is None:
                    break
                self._handle(proc, msg[0], msg[1])
        if self.done:
            return True
        if idle:
            if self.rank == 0:
                self._root_step(proc)
            else:
                self._try_vote(proc)
        return self.done

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _handle(self, proc: Proc, src: int, payload: tuple) -> None:
        kind = payload[0]
        if kind == "down":
            _, wave = payload
            self.wave = wave
            self.in_wave = True
            self.voted = False
            self.child_tokens = {}
            for c in self.children:
                self._send(proc, c, ("down", wave))
        elif kind == "up":
            _, wave, color = payload
            if wave != self.wave:
                raise TaskCollectionError(
                    f"termination protocol error: rank {self.rank} got up-token "
                    f"for wave {wave} during wave {self.wave}"
                )
            self.child_tokens[src] = color
        elif kind == "done":
            self.done = True
            for c in self.children:
                self._send(proc, c, ("done",))
        else:  # pragma: no cover - defensive
            raise TaskCollectionError(f"unknown termination message {payload!r}")

    def _send(self, proc: Proc, dest: int, payload: tuple) -> None:
        self.counters.add(proc.rank, "td_msgs")
        trace(proc, "td-msg", f"{payload[0]} -> rank {dest}")
        self.armci.post(proc, dest, self.tag, payload)

    # ------------------------------------------------------------------ #
    # Voting
    # ------------------------------------------------------------------ #
    def _combined_color(self, proc: Proc) -> int:
        hooks.flag_read(proc, ("td-dirty", self.tag, self.rank))
        if self.dirty or any(c == BLACK for c in self.child_tokens.values()):
            return BLACK
        return WHITE

    def _try_vote(self, proc: Proc) -> None:
        """Non-root: pass the token up once passive with all child tokens."""
        if not self.in_wave or self.voted:
            return
        if len(self.child_tokens) < len(self.children):
            return
        color = self._combined_color(proc)
        hooks.flag_write(proc, ("td-dirty", self.tag, self.rank))
        self.dirty = False
        self.voted = True
        self.in_wave = False
        self._send(proc, self.parent, ("up", self.wave, color))
        self.counters.add(proc.rank, "votes")

    def _root_step(self, proc: Proc) -> None:
        """Root: start waves while idle; complete them when tokens return."""
        if not self.in_wave:
            self.wave += 1
            self.in_wave = True
            self.child_tokens = {}
            self._wave_started = proc.now
            self.counters.add(proc.rank, "waves")
            for c in self.children:
                self._send(proc, c, ("down", self.wave))
        if len(self.child_tokens) < len(self.children):
            return
        color = self._combined_color(proc)
        rec = Recorder.of(self.engine)
        if rec is not None:
            rec.metrics.observe(
                "wave_rtt", proc.now - self._wave_started, rank=proc.rank
            )
            rec.complete_span(
                proc,
                f"wave {self.wave}",
                "termination",
                self._wave_started,
                detail="white" if color == WHITE else "black",
            )
        hooks.flag_write(proc, ("td-dirty", self.tag, self.rank))
        self.dirty = False
        self.in_wave = False
        self.child_tokens = {}
        if color == WHITE:
            self.done = True
            trace(proc, "td-done", self.wave)
            for c in self.children:
                self._send(proc, c, ("done",))
