"""Full-trace event capture for predictive concurrency analysis.

The observed-schedule race detector (:mod:`repro.analyze.race`) keeps
only per-region last-access tables — enough to flag races *in the
executed interleaving*, nothing more.  The predictive passes
(:mod:`repro.analyze.predict`) need the whole story of one run: every
synchronization operation and shared access, in execution order, with
the lockset held at each point.  :class:`TraceCapture` records exactly
that.

A capture rides on the race detector (``RaceDetector.attach(engine,
capture=True)``): every sync/access hook the detector receives is
forwarded here and appended as a :class:`TraceEvent`.  Capture is
strictly observational — it performs no ``sync``/``advance`` and draws
no randomness, so a captured run is bit-for-bit the run it observes.

Event kinds
-----------

========================  =============================================
``request``               mutex requested (pre-grant; ``blocking`` names
                          the current holder when the caller will park)
``acquire`` / ``release`` mutex granted / released
``access``                shared-region access (``op`` r/w/rw/a)
``flag-write``            termination/steal flag store (``release``,
                          ``target`` as in the detector)
``flag-read``             flag load (acquire join)
``post`` / ``poll``       mailbox deposit / receive
``fence`` / ``collective``one-sided fence / barrier-allreduce
``rmw`` / ``rmw-done``    remote atomic bracket at ``target``
``put``                   unfenced one-sided write issue
``protocol``              runtime-layer protocol event (steal-transfer,
                          mark-decision, vote, wave-start, wave-down,
                          wave-complete, td-send, queue-release, ...)
========================  =============================================

While a rank sits inside an ``rmw`` bracket its lockset gains the
pseudo-lock ``rmw[target]`` — reservation atomics serialize exactly
like a lock at the target, which is what lets the lockset pass treat
wait-free queues as disciplined.

Deadlock monitor
----------------

The capture also maintains a live wait-for graph over mutexes.  When a
``request`` would close a cycle (the requester transitively waits on a
lock it already holds), :class:`PredictedDeadlockError` is raised at
the moment of the fatal acquire — mutex waiters never time out in this
runtime, so a closed cycle *is* a deadlock; raising early turns a hang
into a replayable failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = ["TraceEvent", "TraceCapture", "PredictedDeadlockError"]


class PredictedDeadlockError(ReproError):
    """A lock-acquisition cycle closed during a monitored run."""


@dataclass(frozen=True)
class TraceEvent:
    """One captured event of an instrumented run."""

    kind: str
    rank: int
    #: Per-rank local sequence number (program order within the rank).
    idx: int
    #: Global sequence number (execution order across ranks).
    seq: int
    time: float
    #: Names of locks (and rmw pseudo-locks) held by ``rank`` here.
    held: tuple[str, ...]
    data: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        extras = " ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        return f"[{self.seq}] rank {self.rank}#{self.idx} {self.kind} {extras}"


class TraceCapture:
    """Ordered event log plus live lockset / wait-for bookkeeping."""

    def __init__(self, engine: "Engine", deadlock_monitor: bool = True) -> None:
        self.engine = engine
        self.events: list[TraceEvent] = []
        self.deadlock_monitor = deadlock_monitor
        #: Live observers (witness strategies); called with each event.
        self.listeners: list[Callable[[TraceEvent], None]] = []
        self._local_idx = [0] * engine.nprocs
        self._held: list[list[str]] = [[] for _ in range(engine.nprocs)]
        # wait-for graph state: rank -> mutex name it is blocked on, and
        # mutex name -> rank currently holding it
        self._waiting_on: dict[int, str] = {}
        self._holder_of: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #
    def emit(self, proc: "Proc", kind: str, data: dict[str, Any]) -> TraceEvent:
        """Append one event (and notify live listeners)."""
        rank = proc.rank
        ev = TraceEvent(
            kind=kind,
            rank=rank,
            idx=self._local_idx[rank],
            seq=len(self.events),
            time=proc.now,
            held=tuple(self._held[rank]),
            data=data,
        )
        self._local_idx[rank] += 1
        self.events.append(ev)
        for fn in self.listeners:
            fn(ev)
        return ev

    def held_by(self, rank: int) -> tuple[str, ...]:
        return tuple(self._held[rank])

    # ------------------------------------------------------------------ #
    # Mutexes and the wait-for graph
    # ------------------------------------------------------------------ #
    def on_request(self, proc: "Proc", mutex: Any) -> None:
        name = mutex.name
        holder = mutex.holder
        blocking = holder.rank if holder is not None else None
        self.emit(
            proc,
            "request",
            {"mutex": name, "host": mutex.host_rank, "blocking": blocking},
        )
        if blocking is None or blocking == proc.rank:
            return
        self._waiting_on[proc.rank] = name
        if self.deadlock_monitor:
            cycle = self._find_cycle(proc.rank)
            if cycle is not None:
                self._waiting_on.pop(proc.rank, None)
                raise PredictedDeadlockError(
                    "lock-order cycle closed: "
                    + " -> ".join(f"rank {r} waits {m}" for r, m in cycle)
                )

    def _find_cycle(self, start: int) -> list[tuple[int, str]] | None:
        """Walk rank-waits-mutex-held-by-rank links from ``start``."""
        chain: list[tuple[int, str]] = []
        rank = start
        for _ in range(self.engine.nprocs + 1):
            name = self._waiting_on.get(rank)
            if name is None:
                return None
            chain.append((rank, name))
            holder = self._holder_of.get(name)
            if holder is None:
                return None
            if holder == start:
                return chain
            rank = holder
        return None  # pragma: no cover - bounded by nprocs

    def on_acquire(self, proc: "Proc", mutex: Any) -> None:
        name = mutex.name
        self._waiting_on.pop(proc.rank, None)
        self._holder_of[name] = proc.rank
        self._held[proc.rank].append(name)
        self.emit(proc, "acquire", {"mutex": name, "host": mutex.host_rank})

    def on_release(self, proc: "Proc", mutex: Any) -> None:
        name = mutex.name
        if name in self._held[proc.rank]:
            self._held[proc.rank].remove(name)
        if self._holder_of.get(name) == proc.rank:
            del self._holder_of[name]
        self.emit(proc, "release", {"mutex": name, "host": mutex.host_rank})

    # ------------------------------------------------------------------ #
    # Accesses, flags, messages, atomics
    # ------------------------------------------------------------------ #
    def on_access(
        self, proc: "Proc", region: Hashable, op: str, site: str
    ) -> None:
        self.emit(proc, "access", {"region": region, "op": op, "site": site})

    def on_flag_write(
        self, proc: "Proc", region: Hashable, target: int | None, release: bool
    ) -> None:
        self.emit(
            proc,
            "flag-write",
            {"region": region, "target": target, "release": release},
        )

    def on_flag_read(self, proc: "Proc", region: Hashable) -> None:
        self.emit(proc, "flag-read", {"region": region})

    def on_post(self, proc: "Proc", target: int, tag: str) -> None:
        self.emit(proc, "post", {"target": target, "tag": tag})

    def on_poll(self, proc: "Proc", tag: str) -> None:
        self.emit(proc, "poll", {"tag": tag})

    def on_fence(self, proc: "Proc", target: int | None) -> None:
        self.emit(proc, "fence", {"target": target})

    def on_collective(self, procs: list["Proc"]) -> None:
        ranks = tuple(sorted(p.rank for p in procs))
        for p in procs:
            self.emit(p, "collective", {"ranks": ranks})

    def on_rmw(self, proc: "Proc", target: int) -> None:
        self.emit(proc, "rmw", {"target": target})
        self._held[proc.rank].append(f"rmw[{target}]")

    def on_rmw_done(self, proc: "Proc", target: int) -> None:
        pseudo = f"rmw[{target}]"
        if pseudo in self._held[proc.rank]:
            self._held[proc.rank].remove(pseudo)
        self.emit(proc, "rmw-done", {"target": target})

    def on_put(self, proc: "Proc", target: int) -> None:
        self.emit(proc, "put", {"target": target})

    def on_protocol(self, proc: "Proc", kind: str, data: dict[str, Any]) -> None:
        self.emit(proc, "protocol", {"what": kind, **data})
