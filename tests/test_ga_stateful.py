"""Stateful property test: a GlobalArray must mirror a NumPy array under
any interleaved sequence of put/get/acc operations from any ranks.

A deterministic random op script is distributed across ranks, with each
op pinned to its own virtual-time slot so the global serialization order
is known.  A plain ndarray shadow is updated by the same ops *inside the
simulation* (at apply time), so every ``get`` can be checked against the
exact intermediate state, and the final contents must match an
independent replay.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import GlobalArray
from repro.sim.engine import Engine

_SHAPE = (9, 7)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    nprocs=st.integers(1, 6),
    nops=st.integers(1, 25),
)
def test_ga_mirrors_numpy_under_random_ops(seed, nprocs, nops):
    rng = np.random.default_rng(seed)
    script = []
    for t in range(nops):
        op = str(rng.choice(["put", "acc", "get"]))
        lo = tuple(int(rng.integers(0, s)) for s in _SHAPE)
        hi = tuple(int(rng.integers(l + 1, s + 1)) for l, s in zip(lo, _SHAPE))
        value = rng.standard_normal([h - l for l, h in zip(lo, hi)])
        alpha = float(rng.uniform(-2, 2))
        rank = int(rng.integers(0, nprocs))
        script.append((t, rank, op, lo, hi, value, alpha))

    shadow = np.zeros(_SHAPE)  # mutated inside the sim, in global op order
    get_mismatches: list[int] = []

    def main(proc):
        ga = GlobalArray.create(proc, "m", _SHAPE)
        ga.sync(proc)
        for t, rank, op, lo, hi, value, alpha in script:
            if rank != proc.rank:
                continue
            # dedicated time slot per op => unambiguous global order
            proc.sleep((t + 1) * 1e-3 - proc.now)
            box = tuple(slice(l, h) for l, h in zip(lo, hi))
            if op == "put":
                ga.put(proc, lo, hi, value)
                shadow[box] = value
            elif op == "acc":
                ga.acc(proc, lo, hi, value, alpha=alpha)
                shadow[box] += alpha * value
            else:
                got = ga.get(proc, lo, hi)
                if not np.allclose(got, shadow[box], atol=1e-12):
                    get_mismatches.append(t)
        proc.sleep((nops + 2) * 1e-3 - proc.now)
        return ga.read_full(proc)

    eng = Engine(nprocs, seed=seed, max_events=2_000_000)
    eng.spawn_all(main)
    result = eng.run()

    assert not get_mismatches, f"gets diverged from shadow at t={get_mismatches}"
    # independent replay of the mutation history
    expect = np.zeros(_SHAPE)
    for t, rank, op, lo, hi, value, alpha in sorted(script):
        box = tuple(slice(l, h) for l, h in zip(lo, hi))
        if op == "put":
            expect[box] = value
        elif op == "acc":
            expect[box] += alpha * value
    for final in result.returns:
        assert np.allclose(final, expect, atol=1e-10)
    assert np.allclose(shadow, expect, atol=1e-10)
