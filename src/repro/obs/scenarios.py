"""Recordable targets for the ``repro.obs`` CLI.

A target is anything we can run under the recorder: any model-checker
scenario from :mod:`repro.check.scenarios` (small adversarial protocol
drivers) or an application preset — UTS trees, an SCF iteration, a TCE
contraction.  Each run returns an :class:`ObsRun` carrying the engine,
the recorder/tracer, and a determinism *fingerprint*: the virtual-time
results and every ``Counters`` map, per rank and bit-for-bit, which is
what ``python -m repro.obs verify`` compares between recording-on and
recording-off runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.scf.parallel import run_scf_scioto
from repro.apps.scf.problem import SCFProblem
from repro.apps.tce.parallel import run_tce_scioto
from repro.apps.tce.problem import TCEProblem
from repro.apps.uts.presets import PRESETS, preset
from repro.apps.uts.scioto_uts import run_uts_scioto
from repro.armci.runtime import Armci
from repro.check.scenarios import SCENARIOS as CHECK_SCENARIOS
from repro.check.scenarios import make_scenario
from repro.core.collection import TaskCollection
from repro.core.stats import ProcessStats
from repro.obs.record import Recorder
from repro.obs.tracing import Tracer
from repro.sim.engine import Engine

__all__ = ["ObsRun", "TARGETS", "run_target", "fingerprint"]


@dataclass
class ObsRun:
    """One recorded (or deliberately unrecorded) run of a target."""

    target: str
    engine: Engine
    recorder: Recorder | None
    tracer: Tracer | None
    elapsed: float
    events: int
    process_stats: list[ProcessStats] | None = None
    extra: dict[str, Any] = field(default_factory=dict)


def fingerprint(run: ObsRun) -> dict:
    """Everything that must be identical with recording on and off.

    Virtual-time outcome plus every per-rank counter value from both
    the ARMCI layer and every task collection the run created.
    """
    engine = run.engine
    fp: dict[str, Any] = {
        "elapsed": run.elapsed,
        "events": run.events,
        "clocks": [p.now for p in engine.procs],
        "armci": Armci.attach(engine).counters.per_rank_snapshot(),
    }
    registry = engine.state.get(TaskCollection._KEY)
    if registry is not None:
        fp["tc"] = [s.counters.per_rank_snapshot() for s in registry["shared"]]
    return fp


def _attach(
    engine: Engine,
    record: bool,
    events: bool,
    edges: bool = True,
    sink: Any | None = None,
    window: float | None = None,
    flight: Any | None = None,
    live: Any | None = None,
) -> tuple[Recorder | None, Tracer | None]:
    rec = (
        Recorder.attach(
            engine, edges=edges, sink=sink, window=window, flight=flight,
            live=live,
        )
        if record
        else None
    )
    trc = Tracer.attach(engine) if record and events else None
    return rec, trc


def _run_check(
    name: str, seed: int, record: bool, events: bool, edges: bool = True, **obs: Any
) -> ObsRun:
    scenario = make_scenario(name)
    engine = Engine(scenario.nprocs, seed=seed, max_events=scenario.max_events)
    rec, trc = _attach(engine, record, events, edges, **obs)
    scenario.build(engine)
    result = engine.run()
    return ObsRun(
        target=name,
        engine=engine,
        recorder=rec,
        tracer=trc,
        elapsed=result.elapsed,
        events=result.events,
    )


def _run_uts(
    preset_name: str, nprocs: int, seed: int, record: bool, events: bool,
    edges: bool = True, **obs: Any,
) -> ObsRun:
    captured: list[Engine] = []

    def hook(engine: Engine) -> None:
        captured.append(engine)
        _attach(engine, record, events, edges, **obs)

    r = run_uts_scioto(nprocs, preset(preset_name), seed=seed, engine_hook=hook)
    engine = captured[0]
    return ObsRun(
        target=f"uts-{preset_name}",
        engine=engine,
        recorder=Recorder.of(engine),
        tracer=Tracer.of(engine),
        elapsed=r.elapsed,
        events=r.sim.events,
        process_stats=r.per_rank,
        extra={"nodes": r.stats.nodes, "throughput": r.throughput},
    )


def _run_scf(
    nprocs: int, seed: int, record: bool, events: bool, edges: bool = True,
    **obs: Any,
) -> ObsRun:
    captured: list[Engine] = []

    def hook(engine: Engine) -> None:
        captured.append(engine)
        _attach(engine, record, events, edges, **obs)

    problem = SCFProblem(nblocks=8, blocksize=4, decay=0.9)
    r = run_scf_scioto(nprocs, problem, iterations=2, seed=seed, engine_hook=hook)
    engine = captured[0]
    return ObsRun(
        target="scf",
        engine=engine,
        recorder=Recorder.of(engine),
        tracer=Tracer.of(engine),
        elapsed=r.elapsed,
        events=r.sim.events,
        extra={"energy": r.energies[-1], "iterations": r.iterations},
    )


def _run_tce(
    nprocs: int, seed: int, record: bool, events: bool, edges: bool = True,
    **obs: Any,
) -> ObsRun:
    captured: list[Engine] = []

    def hook(engine: Engine) -> None:
        captured.append(engine)
        _attach(engine, record, events, edges, **obs)

    problem = TCEProblem(nblocks=6, blocksize=8, density=0.4, seed=3)
    r = run_tce_scioto(nprocs, problem, seed=seed, engine_hook=hook)
    engine = captured[0]
    return ObsRun(
        target="tce",
        engine=engine,
        recorder=Recorder.of(engine),
        tracer=Tracer.of(engine),
        elapsed=r.elapsed,
        events=r.sim.events,
        extra={"tasks_real": r.tasks_real},
    )


def _target_table() -> dict[str, Callable[..., ObsRun]]:
    table: dict[str, Callable[..., ObsRun]] = {}
    for name in CHECK_SCENARIOS:
        table[name] = (
            lambda nprocs, seed, record, events, edges=True, _n=name, **obs: (
                _run_check(_n, seed, record, events, edges, **obs)
            )
        )
    for p in PRESETS:
        table[f"uts-{p}"] = (
            lambda nprocs, seed, record, events, edges=True, _p=p, **obs: (
                _run_uts(_p, nprocs, seed, record, events, edges, **obs)
            )
        )
    table["scf"] = _run_scf
    table["tce"] = _run_tce
    return table


#: Target name -> runner(nprocs, seed, record, events, edges=True).
TARGETS: dict[str, Callable[..., ObsRun]] = _target_table()


def run_target(
    name: str,
    nprocs: int = 4,
    seed: int = 0,
    record: bool = True,
    events: bool = True,
    edges: bool = True,
    stream_dir: Any | None = None,
    shard_size: int | None = None,
    window: float | None = None,
    flight: Any | None = None,
    sink: Any | None = None,
    live_path: Any | None = None,
    live_interval: float | None = None,
) -> ObsRun:
    """Run target ``name`` and return its :class:`ObsRun`.

    Check-scenario targets use their scenario's fixed rank count;
    ``nprocs`` applies to the application presets.  With
    ``record=False`` nothing attaches — the run is the pristine
    baseline the determinism check compares against.  ``edges=False``
    records spans but not causal edges (the other half of the
    determinism check: edges must be metadata-only).

    Streaming options: ``stream_dir`` records through a constant-memory
    :class:`~repro.obs.stream.SpillSink` spilling sharded JSONL there
    (sealed with a footer index when the run finishes); ``window``
    enables rolling metrics windows at that virtual-time interval;
    ``flight`` installs a :class:`~repro.obs.flight.FlightRecorder`; and
    ``live_path`` publishes interval telemetry frames there as an
    append-only ``repro-obs-live/1`` feed (interval from
    ``live_interval``, falling back to ``window`` and then the bus
    default).
    """
    try:
        runner = TARGETS[name]
    except KeyError:
        raise ValueError(
            f"unknown obs target {name!r}; choose from {sorted(TARGETS)}"
        ) from None
    if stream_dir is not None:
        if sink is not None:
            raise ValueError("pass either stream_dir or sink, not both")
        from repro.obs.stream import DEFAULT_SHARD_SIZE, SpillSink

        sink = SpillSink(stream_dir, shard_size=shard_size or DEFAULT_SHARD_SIZE)
    live = None
    if live_path is not None:
        from repro.obs.live import DEFAULT_INTERVAL, TelemetryBus

        live = TelemetryBus(
            live_path,
            interval=live_interval or window or DEFAULT_INTERVAL,
            label=name,
        )
    run = runner(
        nprocs, seed, record, events, edges, sink=sink, window=window,
        flight=flight, live=live,
    )
    if run.recorder is not None:
        run.recorder.finish()
    return run
