"""Victim-selection policies for work stealing.

The paper uses uniform random victim selection (§5.1).  Two classic
alternatives are provided for experimentation:

* ``random`` — uniform over the other ranks (the paper's policy).
* ``ring`` — cycle deterministically through victims starting from the
  rank's right neighbour; bounds the time to find the one loaded rank
  but creates convoys under contention.
* ``last_victim`` — retry the last successful victim first (work tends
  to stay where it was found), falling back to random after a failure.

Policies are deterministic functions of the per-rank RNG stream and
their own state, preserving the simulator's reproducibility.
"""

from __future__ import annotations

from repro.sim.engine import Proc
from repro.util.errors import TaskCollectionError

__all__ = ["make_victim_selector", "STEAL_POLICIES"]

STEAL_POLICIES = ("random", "ring", "last_victim")


class _RandomSelector:
    def __init__(self, proc: Proc) -> None:
        self.proc = proc

    def next_victim(self) -> int:
        victim = int(self.proc.rng.integers(0, self.proc.nprocs - 1))
        return victim + 1 if victim >= self.proc.rank else victim

    def report(self, victim: int, success: bool) -> None:
        pass


class _RingSelector:
    def __init__(self, proc: Proc) -> None:
        self.proc = proc
        self._next = (proc.rank + 1) % proc.nprocs

    def next_victim(self) -> int:
        victim = self._next
        self._next = (self._next + 1) % self.proc.nprocs
        if self._next == self.proc.rank:
            self._next = (self._next + 1) % self.proc.nprocs
        if victim == self.proc.rank:  # only possible transiently at start
            victim = (victim + 1) % self.proc.nprocs
        return victim

    def report(self, victim: int, success: bool) -> None:
        if success:
            self._next = victim  # keep draining the same neighbourhood

    # ring never selects self by construction


class _LastVictimSelector(_RandomSelector):
    def __init__(self, proc: Proc) -> None:
        super().__init__(proc)
        self._last: int | None = None

    def next_victim(self) -> int:
        if self._last is not None:
            victim, self._last = self._last, None
            return victim
        return super().next_victim()

    def report(self, victim: int, success: bool) -> None:
        self._last = victim if success else None


def make_victim_selector(policy: str, proc: Proc):
    """Instantiate the victim selector named by ``policy`` for ``proc``."""
    if policy == "random":
        return _RandomSelector(proc)
    if policy == "ring":
        return _RingSelector(proc)
    if policy == "last_victim":
        return _LastVictimSelector(proc)
    raise TaskCollectionError(
        f"unknown steal policy {policy!r}; choose from {STEAL_POLICIES}"
    )
