"""Recording must not perturb the deterministic schedule.

The acceptance bar of the observability subsystem: attaching a
``Recorder`` (spans + metrics + instants) leaves virtual-time results
and every ``Counters`` total bit-for-bit unchanged.  The fingerprint
covers elapsed time, engine event count, per-rank clocks, and the full
per-rank ARMCI and task-collection counter maps.
"""

from __future__ import annotations

import pytest

from repro.obs.scenarios import fingerprint, run_target


@pytest.mark.parametrize("target", ["queue", "steals"])
def test_recording_leaves_run_bit_for_bit_unchanged(target):
    off = fingerprint(run_target(target, record=False))
    on = fingerprint(run_target(target, record=True))
    assert off == on


def test_recorded_run_actually_recorded_something():
    run = run_target("steals", record=True)
    assert run.recorder is not None
    assert len(run.recorder.finished_spans()) > 0
    assert run.recorder.metrics.histograms  # at least one histogram fed


def test_verify_cli_passes_on_check_scenarios(capsys):
    from repro.obs.__main__ import main

    assert main(["verify", "queue", "steals"]) == 0
    assert "2/2 targets deterministic" in capsys.readouterr().out
