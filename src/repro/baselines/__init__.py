"""Baseline schedulers the paper compares Scioto against (§6.2).

* :class:`~repro.baselines.mpi_ws.MpiWorkStealing` — two-sided work
  stealing over message passing with explicit polling (the original UTS
  load balancer).
* :class:`~repro.baselines.global_counter.GlobalCounterScheduler` — a
  replicated task list claimed via a shared atomic counter (the original
  SCF and TCE load balancer).
"""

from repro.baselines.mpi_ws import MpiWorkStealing
from repro.baselines.global_counter import GlobalCounterScheduler

__all__ = ["MpiWorkStealing", "GlobalCounterScheduler"]
