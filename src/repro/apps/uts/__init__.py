"""The Unbalanced Tree Search benchmark (Olivier et al., LCPC 2006).

UTS performs exhaustive parallel traversal of a deterministic,
highly-unbalanced tree whose shape is derived from SHA-1: each node's
child count comes from hashing its 20-byte descriptor, so the same
parameters always generate the same tree regardless of how the
traversal is parallelized.  Millions of fine-grained tasks with extreme
imbalance make UTS a stress test for dynamic load balancing (§6.2).
"""

from repro.apps.uts.tree import UTSParams, UTSNode, TreeStats, root_node, children_of, count_tree
from repro.apps.uts.scioto_uts import run_uts_scioto, UTSRunResult
from repro.apps.uts.mpi_uts import run_uts_mpi

__all__ = [
    "UTSParams",
    "UTSNode",
    "TreeStats",
    "root_node",
    "children_of",
    "count_tree",
    "run_uts_scioto",
    "run_uts_mpi",
    "UTSRunResult",
]
