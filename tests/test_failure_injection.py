"""Failure injection: errors inside the runtime surface cleanly."""

from __future__ import annotations

import pytest

from repro.core import SciotoConfig, Task, TaskCollection
from repro.sim.engine import Engine
from repro.util.errors import SimLimitError, TaskCollectionError


def _run(nprocs, main, *args, seed=0, max_events=2_000_000):
    eng = Engine(nprocs, seed=seed, max_events=max_events)
    eng.spawn_all(main, *args)
    return eng.run()


def test_task_callback_exception_propagates():
    def main(proc):
        tc = TaskCollection.create(proc)

        def bad(tc_, task):
            raise RuntimeError(f"task exploded on rank {tc_.rank}")

        h = tc.register(bad)
        if proc.rank == 0:
            tc.add(Task(callback=h))
        tc.process()

    with pytest.raises(RuntimeError, match="task exploded"):
        _run(2, main)


def test_queue_overflow_during_processing():
    def main(proc):
        tc = TaskCollection.create(proc, max_tasks=4)

        def bomb(tc_, task):
            # each task spawns two more: exceeds max_tasks quickly
            tc_.add(Task(callback=h))
            tc_.add(Task(callback=h))

        h = tc.register(bomb)
        if proc.rank == 0:
            tc.add(Task(callback=h))
        tc.process()

    with pytest.raises(TaskCollectionError, match="overflow"):
        _run(1, main)


def test_runaway_workload_hits_event_limit():
    def main(proc):
        tc = TaskCollection.create(proc, max_tasks=1000)

        def forever(tc_, task):
            tc_.proc.compute(1e-7)
            tc_.add(Task(callback=h))  # never drains

        h = tc.register(forever)
        if proc.rank == 0:
            tc.add(Task(callback=h))
        tc.process()

    with pytest.raises(SimLimitError):
        _run(2, main, max_events=30_000)


def test_mismatched_collective_registration_detected():
    """Ranks registering different numbers of callbacks produce a clear
    error when the missing handle is dispatched."""

    def main(proc):
        tc = TaskCollection.create(proc, config=SciotoConfig(load_balancing=False))
        h = tc.register(lambda tc_, t: None)
        if proc.rank == 0:
            tc.register(lambda tc_, t: None)  # extra handle only on rank 0
            tc.add(Task(callback=1), rank=1)  # rank 1 cannot dispatch it
        tc.process()

    with pytest.raises(TaskCollectionError, match="not registered"):
        _run(2, main)


def test_exception_mid_simulation_tears_down_cleanly():
    """After an exception, the engine joins all threads; a fresh engine
    in the same interpreter works fine (no leaked state)."""

    def bad_main(proc):
        proc.sleep(1e-6)
        if proc.rank == 3:
            raise ValueError("kaboom")
        proc.sleep(1.0)

    with pytest.raises(ValueError, match="kaboom"):
        _run(5, bad_main)

    def good_main(proc):
        tc = TaskCollection.create(proc)
        h = tc.register(lambda tc_, t: None)
        if proc.rank == 0:
            tc.add(Task(callback=h))
        return tc.process().tasks_executed

    result = _run(3, good_main)
    assert sum(result.returns) == 1


def test_add_after_destroy_rejected():
    def main(proc):
        tc = TaskCollection.create(proc)
        h = tc.register(lambda tc_, t: None)
        tc.destroy()
        tc.add(Task(callback=h))

    with pytest.raises(TaskCollectionError, match="destroyed"):
        _run(2, main)


def test_steal_disabled_work_stays_put_even_when_idle():
    """With load balancing off, idle ranks must not acquire work."""
    ran_on = set()

    def main(proc):
        tc = TaskCollection.create(proc, config=SciotoConfig(load_balancing=False))

        def track(tc_, t):
            tc_.proc.compute(10e-6)
            ran_on.add(tc_.rank)

        h = tc.register(track)
        if proc.rank == 0:
            for _ in range(10):
                tc.add(Task(callback=h))
        tc.process()

    _run(4, main)
    assert ran_on == {0}
