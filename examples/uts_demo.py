#!/usr/bin/env python3
"""Unbalanced Tree Search: Scioto vs MPI work stealing (paper §6.2-6.3).

Traverses the same deterministic SHA-1 tree with three schedulers and
compares throughput — the experiment behind Figures 7 and 8:

* Scioto with split queues (the paper's design),
* Scioto with fully-locked queues ("No Split"),
* the two-sided MPI work-stealing baseline with explicit polling.

Run:
    python examples/uts_demo.py [nprocs]
"""

import sys

from repro.apps.uts import UTSParams, count_tree, run_uts_mpi, run_uts_scioto
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster


def main(nprocs: int = 8) -> None:
    params = UTSParams(tree_type="geometric", b0=4.0, gen_mx=10, root_seed=17)
    ref = count_tree(params)
    print(f"tree: {ref.nodes} nodes, {ref.leaves} leaves, depth {ref.max_depth}")
    print(f"running on {nprocs} simulated ranks (half Opteron, half Xeon)\n")
    machine = heterogeneous_cluster(nprocs)

    split = run_uts_scioto(nprocs, params, machine=machine, seed=1)
    nosplit = run_uts_scioto(
        nprocs, params, machine=machine, seed=1,
        config=SciotoConfig(split_queues=False),
    )
    mpi = run_uts_mpi(nprocs, params, machine=machine, seed=1)

    for label, r in (("Scioto split-queues", split),
                     ("MPI work stealing  ", mpi),
                     ("Scioto locked (no split)", nosplit)):
        assert r.stats.nodes == ref.nodes, "traversal must be exhaustive"
        print(f"{label:26s} {r.throughput / 1e6:6.2f} Mnodes/s "
              f"({r.elapsed * 1e3:.2f} ms virtual)")
    print(f"\nScioto steals: {split.total_steals}; "
          f"all three traversals visited exactly {ref.nodes} nodes")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
