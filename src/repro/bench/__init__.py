"""Benchmark harness: regenerates every table and figure of the paper.

Each module produces a :class:`~repro.util.records.SweepResult` whose
series correspond to the lines/rows of the paper's exhibit:

========================  ==========================================
module                    paper exhibit
========================  ==========================================
``repro.bench.table1``    Table 1 — task-queue op microbenchmarks
``repro.bench.figure4``   Fig. 4 — termination vs barrier timings
``repro.bench.figure56``  Fig. 5/6 — SCF & TCE speedup and runtime
``repro.bench.figure7``   Fig. 7 — UTS on the heterogeneous cluster
``repro.bench.figure8``   Fig. 8 — UTS on the Cray XT4
``repro.bench.ablations`` A2-A5 — design-choice ablations
========================  ==========================================

Run everything from the command line::

    python -m repro.bench [--scale quick|full] [--only figure7 ...]

Scale ``quick`` (default) uses reduced process counts and workloads so
the whole suite finishes in minutes; ``full`` uses the paper's process
counts (to 512 ranks for Figure 8).  Set via ``REPRO_SCALE`` or
``--scale``.
"""

from repro.bench.harness import scale, sweep_procs
from repro.bench.report import render, paper_vs_measured

__all__ = ["scale", "sweep_procs", "render", "paper_vs_measured"]
