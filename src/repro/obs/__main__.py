"""Command-line entry point for the observability subsystem.

Subcommands:

* ``run`` — execute a target (check scenario or UTS/SCF/TCE preset)
  with recording on; write a Chrome trace JSON (``--trace``, open it
  in Perfetto), a metrics JSON (``--metrics``), and/or print the ASCII
  timeline and summary.
* ``summarize`` — post-hoc report over an exported trace JSON.
* ``critical-idle`` — the longest per-rank idle gaps in an exported
  trace, with the spans that bounded them.
* ``verify`` — run targets twice, recording off and on, and require
  the virtual-time fingerprints (elapsed, event count, per-rank clocks
  and every ``Counters`` value) to match bit-for-bit.  Exits 1 on any
  divergence.

Examples::

    python -m repro.obs run uts-small --trace out.json --metrics m.json
    python -m repro.obs run steals --timeline
    python -m repro.obs summarize out.json --top 10
    python -m repro.obs critical-idle out.json
    python -m repro.obs verify queue termination steals
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.check.scenarios import SCENARIOS as CHECK_SCENARIOS
from repro.sim.backends import BACKENDS, ENV_BACKEND
from repro.obs.analyze import critical_idle, load_chrome_trace, summarize
from repro.obs.export import (
    ascii_timeline,
    summary_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.scenarios import TARGETS, fingerprint, run_target


def _cmd_run(args: argparse.Namespace) -> int:
    run = run_target(args.target, nprocs=args.nprocs, seed=args.seed)
    rec = run.recorder
    assert rec is not None
    print(
        f"{run.target}: {run.elapsed * 1e3:.3f} ms virtual, "
        f"{run.events} engine events, {len(rec.spans)} spans "
        f"({rec.dropped} dropped), {len(rec.instants)} instants"
    )
    for k, v in run.extra.items():
        print(f"  {k}: {v}")
    if args.trace:
        path = write_chrome_trace(rec, args.trace, tracer=run.tracer)
        print(f"chrome trace -> {path} (open in https://ui.perfetto.dev)")
    if args.metrics:
        pstats = (
            [s.to_dict() for s in run.process_stats]
            if run.process_stats is not None
            else None
        )
        path = write_metrics_json(rec, args.metrics, process_stats=pstats)
        print(f"metrics json -> {path}")
    if args.timeline:
        print()
        print(ascii_timeline(rec.spans, run.engine.nprocs, width=args.width))
        print()
        print(summary_table(rec.spans, run.engine.nprocs))
        if run.process_stats is not None:
            from repro.bench.report import per_rank_table

            print()
            print(per_rank_table(run.process_stats, title=f"{run.target} per-rank"))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.trace)
    print(summarize(spans, width=args.width, top=args.top))
    return 0


def _cmd_critical_idle(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.trace)
    gaps = critical_idle(spans, top=args.top)
    if not gaps:
        print("no idle gaps between spans")
        return 0
    print(f"longest {len(gaps)} idle gaps:")
    for g in gaps:
        print(f"  {g.describe()}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    targets = args.targets or sorted(CHECK_SCENARIOS)
    bad = 0
    for name in targets:
        base = fingerprint(
            run_target(name, nprocs=args.nprocs, seed=args.seed, record=False)
        )
        rec = fingerprint(
            run_target(name, nprocs=args.nprocs, seed=args.seed, record=True)
        )
        if base == rec:
            print(f"{name}: ok (recording leaves the run bit-for-bit unchanged)")
            continue
        bad += 1
        print(f"{name}: DIVERGED with recording on")
        for key in sorted(set(base) | set(rec)):
            if base.get(key) != rec.get(key):
                print(f"  {key}: off={base.get(key)!r}")
                print(f"  {key}:  on={rec.get(key)!r}")
    print(f"\n{len(targets) - bad}/{len(targets)} targets deterministic under recording")
    return 1 if bad else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.obs", description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[*sorted(BACKENDS), "auto"],
        default=None,
        help="context-switch backend for the runs (sets $REPRO_SIM_BACKEND; "
        "all backends produce identical results)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a target with recording on")
    p_run.add_argument("target", choices=sorted(TARGETS))
    p_run.add_argument("--nprocs", type=int, default=4,
                       help="rank count for application presets")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--trace", metavar="PATH",
                       help="write Chrome trace_event JSON here")
    p_run.add_argument("--metrics", metavar="PATH",
                       help="write flat metrics JSON here")
    p_run.add_argument("--timeline", action="store_true",
                       help="print the ASCII per-rank timeline + summary")
    p_run.add_argument("--width", type=int, default=80)
    p_run.set_defaults(fn=_cmd_run)

    p_sum = sub.add_parser("summarize", help="report over an exported trace")
    p_sum.add_argument("trace", help="Chrome trace JSON written by 'run'")
    p_sum.add_argument("--top", type=int, default=5)
    p_sum.add_argument("--width", type=int, default=80)
    p_sum.set_defaults(fn=_cmd_summarize)

    p_idle = sub.add_parser("critical-idle", help="longest per-rank idle gaps")
    p_idle.add_argument("trace", help="Chrome trace JSON written by 'run'")
    p_idle.add_argument("--top", type=int, default=5)
    p_idle.set_defaults(fn=_cmd_critical_idle)

    p_ver = sub.add_parser(
        "verify", help="recording-on == recording-off determinism check"
    )
    p_ver.add_argument("targets", nargs="*",
                       help="targets to verify (default: all check scenarios)")
    p_ver.add_argument("--nprocs", type=int, default=4)
    p_ver.add_argument("--seed", type=int, default=0)
    p_ver.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    if args.backend is not None:
        os.environ[ENV_BACKEND] = args.backend
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
