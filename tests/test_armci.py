"""Tests for the ARMCI one-sided layer: ordering, atomics, messages, collectives."""

from __future__ import annotations

import operator

import pytest

from repro.armci.runtime import Armci
from repro.sim.engine import Engine
from repro.sim.machines import uniform_cluster


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=500_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestPutGet:
    def test_put_applies_at_target_and_get_reads(self):
        store = {}

        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                armci.put(proc, 1, 64, lambda: store.__setitem__("x", 42))
            armci.barrier(proc)
            return armci.get(proc, 1, 64, lambda: store.get("x"))

        _, res = _run(2, main)
        assert res.returns == [42, 42]

    def test_remote_get_costs_round_trip(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            t0 = proc.now
            armci.get(proc, (proc.rank + 1) % 2, 1024, lambda: None)
            return proc.now - t0

        eng, res = _run(2, main)
        m = eng.machine
        assert res.returns[0] == pytest.approx(2 * m.latency + 1024 / m.net_bandwidth)

    def test_local_get_costs_memcpy_only(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            t0 = proc.now
            armci.get(proc, proc.rank, 1024, lambda: None)
            return proc.now - t0

        eng, res = _run(2, main)
        assert res.returns[0] == pytest.approx(eng.machine.local_copy_time(1024))
        assert res.returns[0] < eng.machine.get_time(1024)

    def test_counters_track_remote_traffic(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                armci.put(proc, 1, 100, None)
                armci.get(proc, 1, 200, None)

        eng, _ = _run(2, main)
        c = Armci.attach(eng).counters
        assert c.get(0, "put_remote") == 1
        assert c.get(0, "bytes_put") == 100
        assert c.get(0, "bytes_get") == 200


class TestRmw:
    def test_fetch_add_returns_unique_values(self):
        cell = {"v": 0}

        def main(proc):
            armci = Armci.attach(proc.engine)
            got = []
            for _ in range(10):
                def fa():
                    v = cell["v"]
                    cell["v"] += 1
                    return v
                got.append(armci.rmw(proc, 0, fa))
            return got

        _, res = _run(4, main)
        all_vals = [v for r in res.returns for v in r]
        assert sorted(all_vals) == list(range(40))
        assert cell["v"] == 40

    def test_rmw_serializes_at_target(self):
        """Concurrent atomics on one host must take at least n * service time."""

        def main(proc):
            armci = Armci.attach(proc.engine)
            cell = proc.engine.state.setdefault("cell", {"v": 0})

            def fa():
                v = cell["v"]
                cell["v"] += 1
                return v

            armci.rmw(proc, 0, fa)
            return proc.now

        eng, res = _run(8, main)
        m = eng.machine
        # 7 remote requests all arrive at t=latency; they serialize at the host.
        expected_last = m.latency + 7 * m.rmw_overhead + m.latency
        assert max(res.returns) >= expected_last - 1e-12


class TestMessages:
    def test_post_and_poll_roundtrip(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                armci.post(proc, 1, "tok", ("hello", 7))
                return None
            while True:
                msg = armci.poll_mailbox(proc, "tok")
                if msg is not None:
                    return msg
                proc.advance(1e-6)

        _, res = _run(2, main)
        assert res.returns[1] == (0, ("hello", 7))

    def test_poll_empty_returns_none(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            return armci.poll_mailbox(proc, "nothing")

        _, res = _run(2, main)
        assert res.returns == [None, None]

    def test_messages_fifo_per_tag(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                for i in range(5):
                    armci.post(proc, 1, "t", i)
                return None
            proc.advance(1e-3)
            out = []
            while True:
                msg = armci.poll_mailbox(proc, "t")
                if msg is None:
                    break
                out.append(msg[1])
            return out

        _, res = _run(2, main)
        assert res.returns[1] == [0, 1, 2, 3, 4]


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            proc.advance(proc.rank * 10e-6)
            armci.barrier(proc)
            return proc.now

        _, res = _run(4, main)
        assert len(set(round(t, 12) for t in res.returns)) == 1
        assert res.returns[0] > 30e-6

    def test_allreduce_sum(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            return armci.allreduce(proc, proc.rank + 1, operator.add)

        _, res = _run(5, main)
        assert res.returns == [15] * 5

    def test_allreduce_single_proc(self):
        def main(proc):
            return Armci.attach(proc.engine).allreduce(proc, 9, operator.add)

        _, res = _run(1, main)
        assert res.returns == [9]

    def test_allreduce_reusable(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            a = armci.allreduce(proc, 1, operator.add)
            b = armci.allreduce(proc, proc.rank, max)
            return (a, b)

        _, res = _run(3, main)
        assert res.returns == [(3, 2)] * 3

    def test_broadcast_from_root(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            value = "payload" if proc.rank == 2 else None
            return armci.broadcast(proc, value, root=2)

        _, res = _run(4, main)
        assert res.returns == ["payload"] * 4

    def test_attach_is_idempotent(self):
        eng = Engine(2)
        assert Armci.attach(eng) is Armci.attach(eng)
