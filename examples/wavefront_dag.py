#!/usr/bin/env python3
"""Wavefront computation with inter-task dependencies (paper §8 extension).

The paper's future work promises "support for tasks that exhibit
arbitrary inter-task dependencies"; ``repro.core.graph.TaskGraph``
implements it.  This example runs the classic 2D wavefront: cell (i, j)
depends on (i-1, j) and (i, j-1), computing a dynamic-programming
recurrence over a distributed Global Array.  Anti-diagonals become
runnable one after another, and work stealing keeps all ranks busy as
the frontier sweeps.

Run:
    python examples/wavefront_dag.py [nprocs]
"""

import sys

import numpy as np

from repro.core import TaskCollection, TaskGraph
from repro.ga import GlobalArray
from repro.sim.engine import run_spmd

N = 12  # wavefront grid (N x N cells)


def main(proc):
    grid = GlobalArray.create(proc, "wave", (N, N))
    grid.sync(proc)
    tc = TaskCollection.create(proc, task_size=64)
    tg = TaskGraph.create(tc)

    def cell(tc_, task):
        i, j = task.body
        p = tc_.proc
        up = grid.get(p, (i - 1, j), (i, j + 1))[0, 0] if i > 0 else 0.0
        left = grid.get(p, (i, j - 1), (i + 1, j))[0, 0] if j > 0 else 0.0
        p.compute(2e-6)
        value = max(up, left) + (i + 1) * (j + 1) % 7  # arbitrary recurrence
        grid.put(p, (i, j), (i + 1, j + 1), np.array([[value]]))

    for i in range(N):
        for j in range(N):
            deps = []
            if i > 0:
                deps.append(f"c{i-1},{j}")
            if j > 0:
                deps.append(f"c{i},{j-1}")
            # home each cell on the rank that owns it in the global array
            tg.add(f"c{i},{j}", cell, body=(i, j), deps=deps,
                   rank=grid.locate((i, j)))

    stats = tg.process()
    grid.sync(proc)
    return (stats.tasks_executed, grid.read_full(proc))


def reference() -> np.ndarray:
    out = np.zeros((N, N))
    for i in range(N):
        for j in range(N):
            up = out[i - 1, j] if i > 0 else 0.0
            left = out[i, j - 1] if j > 0 else 0.0
            out[i, j] = max(up, left) + (i + 1) * (j + 1) % 7
    return out


if __name__ == "__main__":
    nprocs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    sim = run_spmd(nprocs, main, seed=0)
    per_rank = [r[0] for r in sim.returns]
    result = sim.returns[0][1]
    ok = np.allclose(result, reference())
    print(f"wavefront {N}x{N} over {nprocs} ranks")
    print(f"cells executed per rank: {per_rank} (total {sum(per_rank)})")
    print(f"virtual time: {sim.elapsed * 1e3:.3f} ms")
    print(f"matches sequential dynamic program: {ok}")
    assert ok and sum(per_rank) == N * N
