"""Tests for virtual-time mutexes and barriers."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import SimBarrier, SimMutex


def _run(nprocs, main, *args, machine=None, seed=0):
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=500_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestSimMutex:
    def test_mutual_exclusion_in_virtual_time(self):
        """Critical-section intervals must not overlap in virtual time."""
        intervals = []

        def main(proc, box):
            mtx = box["m"]
            for _ in range(3):
                mtx.acquire(proc)
                start = proc.now
                proc.advance(5e-6)
                proc.sync()
                intervals.append((start, proc.now, proc.rank))
                mtx.release(proc)

        eng = Engine(4, max_events=100_000)
        box = {"m": SimMutex(eng, 0, "t")}
        eng.spawn_all(main, box)
        eng.run()
        intervals.sort()
        for (s1, e1, _), (s2, e2, _) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-15, f"overlap: ({s1},{e1}) vs ({s2},{e2})"

    def test_fifo_granting(self):
        grant_order = []

        def main(proc, box):
            mtx = box["m"]
            proc.advance(proc.rank * 1e-7)  # stagger arrival by rank
            mtx.acquire(proc)
            grant_order.append(proc.rank)
            proc.advance(10e-6)  # hold long enough that all others queue
            mtx.release(proc)

        eng = Engine(5, max_events=100_000)
        box = {"m": SimMutex(eng, 0, "t")}
        eng.spawn_all(main, box)
        eng.run()
        assert grant_order == [0, 1, 2, 3, 4]

    def test_release_without_hold_rejected(self):
        def main(proc, box):
            box["m"].release(proc)

        eng = Engine(1)
        box = {"m": SimMutex(eng, 0, "t")}
        eng.spawn_all(main, box)
        with pytest.raises(RuntimeError, match="does not hold"):
            eng.run()

    def test_local_acquire_cheaper_than_remote(self):
        costs = {}

        def main(proc, box):
            mtx = box["m"]
            if proc.rank == 1:
                proc.advance(50e-6)  # let rank 0 finish first; no contention
            t0 = proc.now
            mtx.acquire(proc)
            mtx.release(proc)
            costs[proc.rank] = proc.now - t0

        eng = Engine(2, max_events=100_000)
        box = {"m": SimMutex(eng, 0, "t")}
        eng.spawn_all(main, box)
        eng.run()
        assert costs[0] < costs[1]

    def test_contention_counter(self):
        def main(proc, box):
            mtx = box["m"]
            mtx.acquire(proc)
            proc.advance(10e-6)
            mtx.release(proc)

        eng = Engine(3, max_events=100_000)
        box = {"m": SimMutex(eng, 0, "t")}
        eng.spawn_all(main, box)
        eng.run()
        assert box["m"].acquires == 3
        assert box["m"].contended_acquires == 2


class TestSimBarrier:
    def test_all_leave_after_last_arrival(self):
        leave_times = {}

        def main(proc, box):
            proc.advance(proc.rank * 10e-6)
            box["b"].wait(proc)
            leave_times[proc.rank] = proc.now

        eng = Engine(4, max_events=100_000)
        box = {"b": SimBarrier(eng, 4, lambda n: 2e-6)}
        eng.spawn_all(main, box)
        eng.run()
        expected = 30e-6 + 2e-6  # last arrival + modelled cost
        for t in leave_times.values():
            assert t == pytest.approx(expected)

    def test_reusable_across_generations(self):
        def main(proc, box):
            for i in range(3):
                proc.advance((proc.rank + i) * 1e-6)
                box["b"].wait(proc)
            return proc.now

        eng = Engine(3, max_events=100_000)
        box = {"b": SimBarrier(eng, 3, lambda n: 1e-6)}
        eng.spawn_all(main, box)
        result = eng.run()
        assert len(set(result.returns)) == 1
        assert box["b"].waits == 9

    def test_single_proc_barrier_is_trivial(self):
        def main(proc, box):
            box["b"].wait(proc)
            return proc.now

        eng = Engine(1)
        box = {"b": SimBarrier(eng, 1, lambda n: 3e-6)}
        eng.spawn_all(main, box)
        assert eng.run().returns[0] == pytest.approx(3e-6)
