"""Figure 4: termination detection vs ARMCI and MPI barriers, 1-64 procs.

The paper detects termination after executing a single no-op task and
finds the wave algorithm completes in roughly twice the time of the
barrier operations, growing ~log(p).
"""

from __future__ import annotations

from repro.armci.runtime import Armci
from repro.core import SciotoConfig, Task, TaskCollection
from repro.mpi import Mpi
from repro.sim.engine import Engine
from repro.util.records import Series, SweepResult

__all__ = ["run_figure4"]


def _termination_time(nprocs: int) -> float:
    """Time from entering tc_process with one no-op task to detection."""

    def main(proc):
        tc = TaskCollection.create(proc, task_size=64, config=SciotoConfig())
        h = tc.register(lambda tc_, t: None)
        if proc.rank == 0:
            tc.add(Task(callback=h))
        Armci.attach(proc.engine).barrier(proc)
        t0 = proc.now
        tc.process()
        return proc.now - t0

    eng = Engine(nprocs, max_events=2_000_000)
    eng.spawn_all(main)
    res = eng.run()
    return max(res.returns)


def _barrier_time(nprocs: int, which: str) -> float:
    """Completion time of one barrier, measured from the last arrival."""

    def main(proc):
        armci = Armci.attach(proc.engine)
        mpi = Mpi.attach(proc.engine)
        # warm up / align all ranks first
        armci.barrier(proc)
        t0 = proc.now
        if which == "armci":
            armci.barrier(proc)
        else:
            mpi.barrier(proc)
        return proc.now - t0

    eng = Engine(nprocs, max_events=1_000_000)
    eng.spawn_all(main)
    res = eng.run()
    return max(res.returns)


def run_figure4(scale: str = "quick") -> SweepResult:
    """Regenerate Figure 4 (times in µs, log-log shaped like the paper)."""
    max_p = 64 if scale == "full" else 16
    procs = [1]
    while procs[-1] < max_p:
        procs.append(procs[-1] * 2)
    result = SweepResult(experiment="figure4")
    td = Series(label="scioto-termination", unit="us")
    fence = Series(label="armci-barrier", unit="us")
    barrier = Series(label="mpi-barrier", unit="us")
    for p in procs:
        td.add(p, _termination_time(p) * 1e6)
        fence.add(p, _barrier_time(p, "armci") * 1e6)
        barrier.add(p, _barrier_time(p, "mpi") * 1e6)
    result.series = [td, fence, barrier]
    result.notes.append(
        "paper: termination detected in ~2x the time of ARMCI/MPI barriers"
    )
    return result
