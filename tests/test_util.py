"""Tests for formatting helpers and result records."""

from __future__ import annotations

import pytest

from repro.util.format import format_rate, format_table, format_us
from repro.util.records import ExperimentRecord, Series, SweepResult


class TestFormat:
    def test_format_us(self):
        assert format_us(18.0819e-6) == "18.0819us"
        assert format_us(0.5e-6, digits=2) == "0.50us"

    def test_format_rate(self):
        assert format_rate(63_100_000) == "63.10 M/s"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a    bbbb")
        assert all(len(l) >= 6 for l in lines[2:])

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestRecords:
    def test_series_add_and_lookup(self):
        s = Series(label="l", unit="us")
        s.add(2, 10.0)
        s.add(4, 20.0)
        assert s.y_at(4) == 20.0
        with pytest.raises(ValueError):
            s.y_at(8)

    def test_sweep_get_by_label(self):
        r = SweepResult(experiment="e", series=[Series(label="a"), Series(label="b")])
        assert r.get("b").label == "b"
        assert r.labels() == ["a", "b"]
        with pytest.raises(KeyError):
            r.get("c")

    def test_experiment_record_defaults(self):
        rec = ExperimentRecord("figure7", "scioto", 64, 72.0, "Mnodes/s")
        assert rec.extra == {}


class TestBenchHarness:
    def test_scale_resolution(self, monkeypatch):
        from repro.bench.harness import scale

        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale() == "quick"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert scale() == "full"
        assert scale("quick") == "quick"  # explicit override wins
        with pytest.raises(ValueError):
            scale("huge")

    def test_sweep_procs(self):
        from repro.bench.harness import sweep_procs

        assert sweep_procs("quick", max_quick=16) == [2, 4, 8, 16]
        assert sweep_procs("full", max_full=64) == [2, 4, 8, 16, 32, 64]

    def test_render_mixed_xs(self):
        from repro.bench.report import render

        a = Series(label="a", unit="u")
        a.add(2, 1.0)
        b = Series(label="b")
        b.add(4, 2.0)
        text = render(SweepResult(experiment="e", series=[a, b], notes=["n"]))
        assert "-" in text  # missing points rendered as dash
        assert "note: n" in text


class TestAtomicWrite:
    def test_writes_content_and_returns_path(self, tmp_path):
        from repro.util.io import atomic_write_text

        target = tmp_path / "out.json"
        assert atomic_write_text(target, "hello") == target
        assert target.read_text() == "hello"

    def test_creates_parent_directories(self, tmp_path):
        from repro.util.io import atomic_write_text

        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_overwrites_atomically_without_temp_leftovers(self, tmp_path):
        from repro.util.io import atomic_write_text

        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_destination_and_no_temp(self, tmp_path, monkeypatch):
        import os as _os

        from repro.util import io as uio

        target = tmp_path / "out.txt"
        uio.atomic_write_text(target, "original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(uio.os, "replace", boom)
        with pytest.raises(OSError, match="disk full"):
            uio.atomic_write_text(target, "partial")
        monkeypatch.undo()
        # The old document survives intact and the temp file is gone.
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]
        assert _os.path.exists(target)
