"""Virtual-time synchronization resources: mutexes and barriers.

These model the synchronization objects the communication layers are
built from.  A :class:`SimMutex` is held for *virtual* time — the
interval between the holder's acquire and release events — so lock
contention (e.g. a process stalled behind a thief manipulating its
queue, §5 of the paper) shows up in the measured timings exactly as it
would on the real machine.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.analyze.race import RaceDetector
from repro.obs.record import Recorder, causal_edge
from repro.obs.tracing import trace
from repro.sim.engine import blocking_method

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = ["SimMutex", "SimBarrier"]


class SimMutex:
    """A mutex hosted on ``host_rank``, lockable from any rank.

    Acquiring from the host rank costs a local atomic
    (``local_lock_overhead``); acquiring from a remote rank costs a
    network round trip (``lock_time``).  Waiters queue FIFO and are
    granted the lock at the releaser's time plus a grant latency.
    """

    def __init__(self, engine: Engine, host_rank: int, name: str = "mutex") -> None:
        self.engine = engine
        self.host_rank = host_rank
        self.name = name
        self.holder: Proc | None = None
        self._waiters: deque[Proc] = deque()
        self.acquires = 0
        self.contended_acquires = 0
        self._acquired_at = 0.0  # holder's virtual acquire time (obs only)
        self._grant_src: tuple[int, float] | None = None  # releaser point (obs only)

    def _request_cost(self, proc: Proc) -> float:
        m = self.engine.machine
        return m.local_lock_overhead if proc.rank == self.host_rank else m.lock_time()

    def _release_cost(self, proc: Proc) -> float:
        m = self.engine.machine
        return m.local_lock_overhead if proc.rank == self.host_rank else m.unlock_time()

    acquire = blocking_method("co_acquire")

    def co_acquire(self, proc: Proc):
        """Block (in virtual time) until ``proc`` holds the mutex."""
        rec = Recorder.of(self.engine)
        t_req = proc.now
        proc.advance(self._request_cost(proc))
        yield from proc.co_sync()
        det = RaceDetector.of(self.engine)
        if det is not None:
            # Pre-grant request: no yield happens between here and the
            # holder check below, so the capture's wait-for graph sees
            # exactly the park this call is about to commit to.
            det.on_mutex_request(proc, self)
        if self.holder is None:
            self.holder = proc
        else:
            self.contended_acquires += 1
            self._waiters.append(proc)
            yield from proc.co_park(f"mutex {self.name}@{self.host_rank}")
            assert self.holder is proc
            if rec is not None:
                rec.complete_span(
                    proc, f"lock-wait {self.name}", "lock", t_req, detail=self.name
                )
            # Only the proc the releaser just granted to runs here, so the
            # grant source written in release() is ours to consume.
            if self._grant_src is not None:
                causal_edge(proc, "lock", *self._grant_src, detail=self.name)
                self._grant_src = None
        det = RaceDetector.of(self.engine)
        if det is not None:
            det.on_mutex_acquire(proc, self)
        trace(proc, "mutex-acq", self.name)
        self.acquires += 1
        if rec is not None:
            rec.metrics.observe("lock_wait", proc.now - t_req, rank=proc.rank)
            self._acquired_at = proc.now

    release = blocking_method("co_release")

    def co_release(self, proc: Proc):
        """Release the mutex and grant it to the next FIFO waiter, if any."""
        if self.holder is not proc:
            raise RuntimeError(f"rank {proc.rank} released {self.name} it does not hold")
        proc.advance(self._release_cost(proc))
        yield from proc.co_sync()
        det = RaceDetector.of(self.engine)
        if det is not None:
            det.on_mutex_release(proc, self)
        trace(proc, "mutex-rel", self.name)
        rec = Recorder.of(self.engine)
        if rec is not None:
            rec.metrics.observe("lock_hold", proc.now - self._acquired_at, rank=proc.rank)
        if self._waiters:
            nxt = self._waiters.popleft()
            self.holder = nxt
            self._grant_src = (proc.rank, proc.now)
            grant_latency = (
                self.engine.machine.local_lock_overhead
                if nxt.rank == self.host_rank
                else self.engine.machine.latency
            )
            self.engine.wake(nxt, proc.now + grant_latency)
        else:
            self.holder = None

    def locked(self) -> bool:
        return self.holder is not None


class SimBarrier:
    """A reusable (cyclic) barrier with an analytic completion-cost model.

    All ranks park until the last arrives; everyone is then released at
    ``t_last_arrival + cost_fn(nprocs)``.  The cost function encodes the
    algorithm being modelled (dissemination for MPI, tree gather/release
    for ARMCI) — Figure 4 compares these against Scioto's fully
    message-level termination detector.
    """

    def __init__(self, engine: Engine, nprocs: int, cost_fn) -> None:
        self.engine = engine
        self.nprocs = nprocs
        self.cost_fn = cost_fn
        self._arrived: list[Proc] = []
        self._generation = 0
        self.waits = 0

    wait = blocking_method("co_wait")

    def co_wait(self, proc: Proc):
        """Arrive at the barrier; returns when all ranks have arrived."""
        self.waits += 1
        yield from proc.co_sync()
        if self.nprocs == 1:
            proc.advance(self.cost_fn(1))
            return
        self._arrived.append(proc)
        if len(self._arrived) < self.nprocs:
            gen = self._generation
            yield from proc.co_park(f"barrier(gen={gen})")
            return
        # Last arrival: release everyone at the modelled completion time.
        release_at = proc.now + self.cost_fn(self.nprocs)
        waiters, self._arrived = self._arrived[:-1], []
        self._generation += 1
        det = RaceDetector.of(self.engine)
        if det is not None:
            det.on_collective(waiters + [proc])
        for w in waiters:
            self.engine.wake(w, release_at)
        proc.advance(release_at - proc.now)
        yield from proc.co_sync()
