"""Tests for the vector-clock race detector (repro.analyze)."""

from __future__ import annotations

import pytest

from repro.analyze import RaceDetector, VectorClock
from repro.analyze.runner import run_race_detection
from repro.armci.runtime import Armci
from repro.sim.engine import Engine


def _run(nprocs, main, *, detect=True, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=500_000)
    det = RaceDetector.attach(eng) if detect else None
    eng.spawn_all(main)
    eng.run()
    return eng, det


class TestVectorClock:
    def test_join_is_componentwise_max(self):
        a, b = VectorClock(3), VectorClock(3)
        a.tick(0), a.tick(0), b.tick(1)
        a.join(b)
        assert list(a.c) == [2, 1, 0]
        # array-backed storage: copies and snapshots are buffer memcpys
        assert list(a.copy().c) == [2, 1, 0]
        assert list(a.snapshot()) == [2, 1, 0]

    def test_ordered_before_epoch_test(self):
        a, b = VectorClock(2), VectorClock(2)
        a.tick(0)
        assert not a.ordered_before(0, b)
        b.join(a)
        assert a.ordered_before(0, b)


class TestSyncEdges:
    """True negatives: properly synchronized accesses never race."""

    def test_mutex_orders_conflicting_writes(self):
        shared = {}

        def main(proc):
            armci = Armci.attach(proc.engine)
            if "m" not in shared:
                shared["m"] = armci.create_mutex(0, "m")
            mtx = shared["m"]
            mtx.acquire(proc)
            det = RaceDetector.of(proc.engine)
            det.record(proc, "cell", "w")
            mtx.release(proc)

        _, det = _run(3, main)
        assert det.races == []
        assert det.accesses == 3

    def test_unsynchronized_writes_race(self):
        def main(proc):
            proc.sync()
            RaceDetector.of(proc.engine).record(proc, "cell", "w")

        _, det = _run(2, main)
        assert len(det.races) == 1
        assert det.races[0].kind == "data-race"
        assert {det.races[0].first.rank, det.races[0].second.rank} == {0, 1}

    def test_reads_never_race_with_reads(self):
        def main(proc):
            proc.sync()
            RaceDetector.of(proc.engine).record(proc, "cell", "r")

        _, det = _run(4, main)
        assert det.races == []

    def test_atomics_never_race_with_atomics(self):
        def main(proc):
            proc.sync()
            RaceDetector.of(proc.engine).record(proc, "cell", "a")

        _, det = _run(4, main)
        assert det.races == []

    def test_atomic_races_with_plain_write(self):
        def main(proc):
            proc.sync()
            det = RaceDetector.of(proc.engine)
            det.record(proc, "cell", "a" if proc.rank else "w")

        _, det = _run(2, main)
        assert len(det.races) == 1

    def test_barrier_orders_across_ranks(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            det = RaceDetector.of(proc.engine)
            if proc.rank == 0:
                det.record(proc, "cell", "w")
            armci.barrier(proc)
            if proc.rank == 1:
                det.record(proc, "cell", "w")

        _, det = _run(2, main)
        assert det.races == []

    def test_rmw_serialization_orders_closure_accesses(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            det = RaceDetector.of(proc.engine)
            armci.rmw(proc, 0, lambda: det.record(proc, "cell", "rw"))

        _, det = _run(3, main)
        assert det.races == []

    def test_message_edge_orders_post_and_poll(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            det = RaceDetector.of(proc.engine)
            if proc.rank == 0:
                det.record(proc, "cell", "w")
                armci.post(proc, 1, "t", ("hello",))
            else:
                while armci.mailbox_empty(proc, "t"):
                    proc.sleep(1e-6)
                armci.poll_mailbox(proc, "t")
                det.record(proc, "cell", "w")

        _, det = _run(2, main)
        assert det.races == []

    def test_detector_off_is_zero_cost(self):
        def main(proc):
            proc.sync()

        eng, det = _run(2, main, detect=False)
        assert det is None
        assert RaceDetector.of(eng) is None


class TestFenceDiscipline:
    def test_unfenced_release_flag_store_reported(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            det = RaceDetector.of(proc.engine)
            if proc.rank == 1:
                armci.put(proc, 0, 64, None)  # transfer, never fenced
                armci.put(
                    proc, 0, 8,
                    lambda: det.flag_write(proc, "flag", target=0, release=True),
                )

        _, det = _run(2, main)
        assert len(det.races) == 1
        assert det.races[0].kind == "unfenced-flag-store"

    def test_fence_clears_pending_ops(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            det = RaceDetector.of(proc.engine)
            if proc.rank == 1:
                armci.put(proc, 0, 64, None)
                armci.fence(proc, 0)
                armci.put(
                    proc, 0, 8,
                    lambda: det.flag_write(proc, "flag", target=0, release=True),
                )

        _, det = _run(2, main)
        assert det.races == []

    def test_flag_stores_never_race_with_each_other(self):
        def main(proc):
            proc.sync()
            det = RaceDetector.of(proc.engine)
            det.flag_write(proc, "flag")
            det.flag_read(proc, "flag")

        _, det = _run(3, main)
        assert det.races == []


class TestScenarioRuns:
    """The acceptance criteria: clean seed runs are race-free, the
    mutations are deterministically caught."""

    @pytest.mark.parametrize(
        "target", ["queue", "queue-wf", "termination", "steals", "waitfree", "graph"]
    )
    def test_clean_scenarios_report_zero_races(self, target):
        res = run_race_detection(target)
        assert res.error is None
        assert res.races == []
        assert res.accesses > 0  # the hooks are actually firing

    def test_unlocked_split_produces_data_race(self):
        res = run_race_detection("queue", mutation="unlocked_split")
        assert res.racy
        assert any(r.kind == "data-race" for r in res.races)
        # both sides of at least one pair point into the queue code
        race = res.races[0]
        assert "queue" in str(race.region)

    def test_unlocked_split_caught_on_every_scenario_with_steals(self):
        for target in ("queue", "termination", "steals", "graph"):
            assert run_race_detection(target, mutation="unlocked_split").racy

    def test_fence_elision_produces_unfenced_flag_store(self):
        races = []
        for target in ("graph", "termination", "steals", "waitfree"):
            races.extend(run_race_detection(target, mutation="fence_elision").races)
        assert any(r.kind == "unfenced-flag-store" for r in races)

    def test_race_report_carries_sites_and_vector_times(self):
        res = run_race_detection("queue", mutation="unlocked_split")
        race = res.races[0]
        assert race.first.rank != race.second.rank
        assert race.first.site and race.second.site
        assert len(race.first.vc) == len(race.second.vc)
        text = race.describe()
        assert "vc=" in text and ".py" in text

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_race_detection("nonesuch")


class TestCli:
    def test_race_clean_exit_zero(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["race", "--target", "queue"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_race_mutated_exit_one(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["race", "--target", "queue", "--mutate", "unlocked_split"]) == 1
        assert "data-race" in capsys.readouterr().out
