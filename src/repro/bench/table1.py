"""Table 1: microbenchmark timings of core task-collection operations.

Measures, with 1 kB task bodies and chunk size 10 exactly as the paper
specifies: local insert, remote insert, local get, and remote steal, on
both machine models.  Paper values (µs):

====================  ========  =========
operation             cluster   Cray XT4
====================  ========  =========
Local Insert          0.4952    0.9330
Remote Insert         18.0819   27.018
Local Get             0.3613    0.6913
Remote Steal          29.0080   32.384
====================  ========  =========
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SciotoConfig, Task
from repro.core.queue import SplitQueue
from repro.sim.engine import Engine
from repro.sim.machines import MachineSpec, cray_xt4, uniform_cluster
from repro.sim.counters import Counters
from repro.util.records import Series, SweepResult

__all__ = ["run_table1", "PAPER_TABLE1"]

#: Paper-reported values in seconds: op -> (cluster, xt4).
PAPER_TABLE1 = {
    "local_insert": (0.4952e-6, 0.9330e-6),
    "remote_insert": (18.0819e-6, 27.018e-6),
    "local_get": (0.3613e-6, 0.6913e-6),
    "remote_steal": (29.0080e-6, 32.384e-6),
}

_BODY = 1024 - 64  # 1 kB descriptors: header + body
_REPS = 200
_CHUNK = 10


@dataclass
class _Timings:
    local_insert: float
    remote_insert: float
    local_get: float
    remote_steal: float


def _microbench(machine: MachineSpec) -> _Timings:
    """Time the four queue operations on one machine model."""
    cfg = SciotoConfig(chunk_size=_CHUNK)
    out: dict[str, float] = {}

    def main(proc):
        queue = proc.engine.state.setdefault(
            "q",
            SplitQueue(proc.engine, 0, 100_000, _BODY, cfg, Counters()),
        )
        mk = lambda i: Task(callback=0, body=i, body_size=_BODY)
        if proc.rank == 0:
            # --- local insert ---
            t0 = proc.now
            for i in range(_REPS):
                queue.push_local(proc, mk(i))
            out["local_insert"] = (proc.now - t0) / _REPS
            # --- local get (drain what we inserted) ---
            t0 = proc.now
            for _ in range(_REPS):
                queue.pop_local(proc)
            out["local_get"] = (proc.now - t0) / _REPS
            # leave plenty of stealable work in the shared portion
            for i in range(_REPS * _CHUNK * 2):
                queue.push_local(proc, mk(i))
            queue._private, queue._shared = [], queue._private + queue._shared
            proc.sleep(1.0 - proc.now)  # park while rank 1 measures
        else:
            proc.sleep(0.5)
            # --- remote insert ---
            t0 = proc.now
            for i in range(_REPS):
                queue.add_remote(proc, mk(i))
            out["remote_insert"] = (proc.now - t0) / _REPS
            # --- remote steal (chunk of 10 per op) ---
            t0 = proc.now
            for _ in range(_REPS):
                got = queue.steal_from(proc, _CHUNK)
                assert len(got) == _CHUNK, "steal microbench ran out of work"
            out["remote_steal"] = (proc.now - t0) / _REPS

    eng = Engine(2, machine=machine, max_events=5_000_000)
    eng.spawn_all(main)
    eng.run()
    return _Timings(**out)


def run_table1(scale: str = "quick") -> SweepResult:
    """Regenerate Table 1; returns one series per machine (µs values)."""
    del scale  # the microbenchmark is cheap at any scale
    result = SweepResult(experiment="table1")
    ops = ["local_insert", "remote_insert", "local_get", "remote_steal"]
    for label, machine, col in (
        ("cluster", uniform_cluster(2), 0),
        ("cray-xt4", cray_xt4(2), 1),
    ):
        timings = _microbench(machine)
        measured = Series(label=f"{label}-measured", unit="us")
        paper = Series(label=f"{label}-paper", unit="us")
        for i, op in enumerate(ops):
            measured.add(i, getattr(timings, op) * 1e6)
            paper.add(i, PAPER_TABLE1[op][col] * 1e6)
        result.series.extend([measured, paper])
    result.notes.append("x axis: 0=local_insert 1=remote_insert 2=local_get 3=remote_steal")
    result.notes.append("task body 1kB, chunk size 10 (paper §6.1)")
    return result
