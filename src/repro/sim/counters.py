"""Lightweight counters for communication- and scheduler-level statistics.

Every layer keeps a :class:`Counters` instance; benchmarks read them to
report message counts, bytes moved, steals, and the dirty-mark message
savings of the termination-detector optimization (ablation A2).

The implementation lives in :class:`repro.obs.metrics.CounterFamily`
(the observability subsystem's counter kind); ``Counters`` remains as a
thin compatibility facade so the long-standing ``counters.add(rank,
key)`` call sites and the benchmark readers keep working unchanged.
"""

from __future__ import annotations

from repro.obs.metrics import CounterFamily

__all__ = ["Counters"]


class Counters(CounterFamily):
    """A two-level counter map: ``counters[rank][key] -> float``.

    Thin facade over :class:`~repro.obs.metrics.CounterFamily`; see
    there for the API (``add``/``get``/``total``/``keys``/``snapshot``
    plus ``per_rank_snapshot``).
    """
