"""Checkable workloads: small, adversarial-friendly protocol drivers.

A scenario wires a workload onto a fresh :class:`~repro.sim.engine.Engine`
and names the invariants that must hold on every schedule of that
workload.  Workloads are deliberately small — a handful of ranks, tens
of tasks — because schedule exploration multiplies run count, not run
size: bugs of depth 2-3 show up in tiny workloads once the interleaving
is adversarial (the whole point of the checker).

All scenario workloads derive their randomness from the engine's seeded
per-rank RNG streams, so for a fixed engine seed the *program* is
deterministic and only the *schedule* varies between exploration runs.
"""

from __future__ import annotations

from typing import Callable

from repro.check.invariants import (
    CheckContext,
    ExactlyOnce,
    GraphDependencyOrder,
    InvariantChecker,
    MutexBalance,
    NoEarlyTermination,
    QueueConsistency,
)
from repro.core.collection import TaskCollection
from repro.core.config import SciotoConfig
from repro.core.graph import TaskGraph
from repro.core.queue import SplitQueue
from repro.core.task import Task
from repro.sim.engine import Engine
from repro.sim.counters import Counters

__all__ = [
    "Scenario",
    "QueueScenario",
    "TerminationScenario",
    "StealTerminationScenario",
    "WaitFreeScenario",
    "GraphScenario",
    "SCENARIOS",
    "make_scenario",
]


class Scenario:
    """One checkable workload.

    Subclasses set :attr:`name`, :attr:`nprocs`, :attr:`max_events`, and
    implement :meth:`build` (spawn mains on the engine, return the
    :class:`CheckContext`) and :meth:`checkers`.
    """

    name: str = "scenario"
    nprocs: int = 4
    max_events: int = 500_000

    def build(self, engine: Engine) -> CheckContext:
        raise NotImplementedError

    def checkers(self) -> list[InvariantChecker]:
        raise NotImplementedError


class QueueScenario(Scenario):
    """Direct split-queue stress: one queue per rank, concurrent owner
    pushes/pops against thief steals, checked for descriptor conservation
    and mutex balance.  Exercises release/reacquire split moves under
    every interleaving the strategy can produce.
    """

    name = "queue"
    nprocs = 3
    max_events = 200_000

    def __init__(self, wait_free: bool = False) -> None:
        self.wait_free = wait_free
        self.capacity = 64

    def build(self, engine: Engine) -> CheckContext:
        cfg = SciotoConfig(wait_free_steals=self.wait_free, chunk_size=4)
        counters = Counters()
        queues = [
            SplitQueue(engine, r, self.capacity, 32, cfg, counters, name="chk")
            for r in range(engine.nprocs)
        ]

        def main(proc):
            q = queues[proc.rank]
            if proc.rank == 0:
                # owner: rounds of push-then-drain so the queue repeatedly
                # crosses the release/reacquire thresholds while thieves
                # are still active — every drain of the private portion
                # forces a reacquire split move against in-flight steals
                body = 0
                for _round in range(4):
                    for _ in range(6):
                        yield from q.co_push_local(
                            proc, Task(callback=0, body=body, affinity=body % 3)
                        )
                        body += 1
                    yield from proc.co_sleep(float(proc.rng.uniform(0.0, 1e-6)))
                    while (yield from q.co_pop_local(proc)) is not None:
                        yield from proc.co_sleep(float(proc.rng.uniform(0.0, 0.5e-6)))
            else:
                # thieves: steal from rank 0 throughout the owner's run,
                # absorb, and drain locally
                for _ in range(10):
                    yield from proc.co_sleep(float(proc.rng.uniform(0.0, 1.5e-6)))
                    got = yield from queues[0].co_steal_from(proc, 3)
                    if got:
                        yield from q.co_absorb_stolen(proc, got)
                    while (yield from q.co_pop_local(proc)) is not None:
                        pass

        engine.spawn_all(main)
        return CheckContext(capacity=self.capacity, expect_complete=False)

    def checkers(self) -> list[InvariantChecker]:
        return [QueueConsistency(), MutexBalance()]


class TerminationScenario(Scenario):
    """Full ``tc_process`` phase over a spawning task tree with remote
    adds, checked for exactly-once execution and never-early termination.
    This is the protocol stack the paper's correctness rests on: split
    queues + work stealing + wave termination with votes-before.
    """

    name = "termination"
    nprocs = 4
    max_events = 500_000
    tree_limit = 14  # bodies < limit spawn two children

    def __init__(self, config: SciotoConfig | None = None) -> None:
        self.config = config if config is not None else SciotoConfig(chunk_size=2)
        self.capacity = 256

    def build(self, engine: Engine) -> CheckContext:
        limit = self.tree_limit

        def main(proc):
            tc = yield from TaskCollection.co_create(
                proc, task_size=64, max_tasks=self.capacity, config=self.config
            )

            def node(tc_, t):
                # yield mid-task: execution spans several scheduling
                # decision points, as real task bodies (with comm) do —
                # this is what gives the post-steal race window depth
                tc_.proc.compute(0.5e-6)
                yield from tc_.proc.co_sleep(float(tc_.proc.rng.uniform(0.1e-6, 1.0e-6)))
                if t.body < limit:
                    left = Task(callback=h, body=2 * t.body + 1)
                    right = Task(callback=h, body=2 * t.body + 2)
                    yield from tc_.co_add(left)
                    # a sprinkle of remote adds exercises add_remote and
                    # the piggybacked dirty marking
                    dest = (tc_.rank + 1) % tc_.nprocs if t.body % 5 == 0 else None
                    yield from tc_.co_add(right, rank=dest)

            h = tc.register(node)
            if proc.rank == 0:
                yield from tc.co_add(Task(callback=h, body=0))
            yield from tc.co_process()

        engine.spawn_all(main)
        return CheckContext(capacity=self.capacity, expect_complete=True)

    def checkers(self) -> list[InvariantChecker]:
        return [
            ExactlyOnce(),
            NoEarlyTermination(),
            QueueConsistency(),
            MutexBalance(),
        ]


class StealTerminationScenario(TerminationScenario):
    """Termination with steals as the *only* load-balancing channel.

    Remote adds carry a piggybacked dirty mark that is not part of §5.3's
    steal-marking protocol; in a workload that mixes both, a victim's own
    remote-add dirty flag blackens its vote and masks a broken
    ``note_steal`` (the wave relaunches and the run self-heals).  This
    scenario drops remote adds and uses the minimal 3-rank tree — root
    plus two leaves — so the §5.3 race (thief votes white, then steals,
    then stalls while the wave completes) is reachable at low depth.
    This is the target that catches the ``no_dirty_mark`` mutation.
    """

    name = "steals"
    nprocs = 3

    def build(self, engine: Engine) -> CheckContext:
        limit = self.tree_limit

        def main(proc):
            tc = yield from TaskCollection.co_create(
                proc, task_size=64, max_tasks=self.capacity, config=self.config
            )

            def node(tc_, t):
                tc_.proc.compute(0.5e-6)
                yield from tc_.proc.co_sleep(float(tc_.proc.rng.uniform(0.1e-6, 1.0e-6)))
                if t.body < limit:
                    yield from tc_.co_add(Task(callback=h, body=2 * t.body + 1))
                    yield from tc_.co_add(Task(callback=h, body=2 * t.body + 2))

            h = tc.register(node)
            if proc.rank == 0:
                yield from tc.co_add(Task(callback=h, body=0))
            yield from tc.co_process()

        engine.spawn_all(main)
        return CheckContext(capacity=self.capacity, expect_complete=True)


class WaitFreeScenario(TerminationScenario):
    """The termination workload with the §8 wait-free steal protocol:
    reservation atomics instead of the queue mutex."""

    name = "waitfree"

    def __init__(self) -> None:
        super().__init__(SciotoConfig(wait_free_steals=True, chunk_size=2))


class GraphScenario(Scenario):
    """TaskGraph DAG execution: a fan-out/fan-in diamond lattice whose
    dependency counters are decremented with one-sided atomics, checked
    for dependency order and exactly-once dispatch."""

    name = "graph"
    nprocs = 3
    max_events = 500_000

    #: name -> deps; two stacked diamonds plus a cross edge.
    DAG: dict[str, tuple[str, ...]] = {
        "a": (),
        "b": ("a",),
        "c": ("a",),
        "d": ("b", "c"),
        "e": ("d",),
        "f": ("d",),
        "g": ("e", "f"),
        "h": ("c", "f"),
    }

    def build(self, engine: Engine) -> CheckContext:
        dag = self.DAG

        def main(proc):
            tc = yield from TaskCollection.co_create(proc, task_size=64, max_tasks=64)
            tg = yield from TaskGraph.co_create(tc)

            def work(tc_, t):
                tc_.proc.compute(float(tc_.proc.rng.uniform(0.2e-6, 1e-6)))

            for i, (name, deps) in enumerate(dag.items()):
                tg.add(name, work, deps=list(deps), rank=i % proc.nprocs)
            yield from tg.co_process()

        engine.spawn_all(main)
        return CheckContext(capacity=64, expect_complete=True, dag=dict(dag))

    def checkers(self) -> list[InvariantChecker]:
        return [
            GraphDependencyOrder(),
            ExactlyOnce(),
            NoEarlyTermination(),
            MutexBalance(),
        ]


#: CLI names for the checkable targets.
SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "queue": QueueScenario,
    "queue-wf": lambda: QueueScenario(wait_free=True),
    "termination": TerminationScenario,
    "steals": StealTerminationScenario,
    "waitfree": WaitFreeScenario,
    "graph": GraphScenario,
}


def make_scenario(name: str) -> Scenario:
    """Instantiate the scenario registered as ``name``."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown target {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory()
