"""C-style facade matching the paper's §3 function names.

This module exists so the quickstart example can read like Figure 3 of
the paper; it is a thin veneer over the object API in
``repro.core.collection``.

Example (compare with the paper's matrix-multiply listing)::

    tc = tc_create(proc, sizeof_mm_task, CHUNK_SIZE, MAX_TASKS)
    hdl = tc_register(tc, mm_task_fcn)
    task = tc_task_create(sizeof_mm_task, hdl)
    ...
    tc_add(tc, me, AFFINITY_HIGH, task)
    tc_task_reuse(task)
    tc_process(tc)
    tc_destroy(tc)
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.collection import TaskCollection
from repro.core.config import SciotoConfig
from repro.core.stats import ProcessStats
from repro.core.task import Task
from repro.sim.engine import Proc

__all__ = [
    "tc_create",
    "tc_destroy",
    "tc_add",
    "tc_process",
    "tc_reset",
    "tc_register",
    "tc_task_create",
    "tc_task_destroy",
    "tc_task_body",
    "tc_task_reuse",
]


def tc_create(
    proc: Proc,
    task_sz: int,
    chunk_sz: int,
    max_sz: int,
    config: SciotoConfig | None = None,
) -> TaskCollection:
    """Collectively create a task collection (paper's ``tc_create``)."""
    return TaskCollection.create(
        proc, task_size=task_sz, chunk_size=chunk_sz, max_tasks=max_sz, config=config
    )


def tc_destroy(tc: TaskCollection) -> None:
    """Collectively destroy a task collection."""
    tc.destroy()


def tc_register(tc: TaskCollection, fcn: Callable[[TaskCollection, Task], None]) -> int:
    """Collectively register a task callback; returns a portable handle."""
    return tc.register(fcn)


def tc_add(tc: TaskCollection, proc_rank: int, affinity: int, task: Task) -> None:
    """Add a copy of ``task`` to rank ``proc_rank`` with the given affinity.

    On return the task buffer is available for reuse (copy-in semantics).
    """
    tc.add(task, rank=proc_rank, affinity=affinity)


def tc_process(tc: TaskCollection) -> ProcessStats:
    """Collectively process the collection until global termination."""
    return tc.process()


def tc_reset(tc: TaskCollection) -> None:
    """Collectively empty the collection for reuse."""
    tc.reset()


def tc_task_create(body_sz: int, task_handle: int) -> Task:
    """Create a local task buffer bound to a registered callback handle."""
    return Task(callback=task_handle, body=None, body_size=body_sz)


def tc_task_destroy(task: Task) -> None:
    """Free a local task buffer (a no-op under garbage collection)."""
    del task


def tc_task_body(task: Task) -> Any:
    """Access the user-defined body of a task descriptor."""
    return task.body


def tc_task_reuse(task: Task) -> Task:
    """Mark a task buffer for reuse after ``tc_add`` copied it out."""
    return task
