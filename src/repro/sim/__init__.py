"""Deterministic discrete-event cluster simulator.

This package is the hardware substrate of the reproduction: a
virtual-time machine on which the real Scioto protocols (split queues,
work stealing, termination waves) execute unmodified.  See
``DESIGN.md`` for the substitution rationale.
"""

from repro.sim.backends import (
    BACKENDS,
    ENV_BACKEND,
    SwitchBackend,
    available_backends,
    greenlet_available,
    resolve_backend_name,
)
from repro.sim.engine import Engine, Proc, SchedulingStrategy, SimResult, run_spmd
from repro.sim.machines import (
    MachineSpec,
    cray_xt4,
    heterogeneous_cluster,
    uniform_cluster,
)
from repro.sim.resources import SimBarrier, SimMutex
from repro.sim.counters import Counters
from repro.obs.tracing import Tracer, TraceEvent, trace

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "SwitchBackend",
    "available_backends",
    "greenlet_available",
    "resolve_backend_name",
    "Engine",
    "Proc",
    "SchedulingStrategy",
    "SimResult",
    "run_spmd",
    "MachineSpec",
    "uniform_cluster",
    "heterogeneous_cluster",
    "cray_xt4",
    "SimBarrier",
    "SimMutex",
    "Counters",
    "Tracer",
    "TraceEvent",
    "trace",
]
