"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench                      # everything, quick scale
    python -m repro.bench --scale full         # paper-scale process counts
    python -m repro.bench --only figure7 table1
    python -m repro.bench --json out.json      # custom record path
    python -m repro.bench perf                 # wall-clock engine throughput
    python -m repro.bench perf --quick         # schema-validation subset

Every run also writes the machine-readable record ``BENCH_sim.json``
(schema ``repro-bench/1``: per-experiment series plus host wall
seconds) at the repo root, so the perf trajectory is tracked commit to
commit.  Disable with ``--no-json``.

``perf`` is a separate mode: instead of the paper's virtual-time
figures it measures *host* events/second per scenario on every
available context-switch backend and writes ``BENCH_wall.json``
(schema ``repro-bench-wall/1``).  See :mod:`repro.bench.perf` and
``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.ablations import (
    run_ablation_affinity,
    run_ablation_chunk,
    run_ablation_static,
    run_ablation_termination,
    run_ablation_waitfree,
)
from repro.bench.figure4 import run_figure4
from repro.bench.figure56 import run_figure56
from repro.bench.figure7 import run_figure7
from repro.bench.figure8 import run_figure8
from repro.bench.harness import scale as resolve_scale
from repro.bench.harness import write_bench_json
from repro.bench.report import render
from repro.bench.table1 import run_table1

EXPERIMENTS = {
    "table1": (run_table1, dict(x_label="op", fmt="{:.3f}")),
    "figure4": (run_figure4, dict(fmt="{:.1f}")),
    "figure56": (run_figure56, dict(fmt="{:.3g}")),
    "figure7": (run_figure7, dict(fmt="{:.2f}")),
    "figure8": (run_figure8, dict(fmt="{:.2f}")),
    "ablation-termination": (run_ablation_termination, dict(fmt="{:.3g}")),
    "ablation-chunk": (run_ablation_chunk, dict(x_label="chunk", fmt="{:.3g}")),
    "ablation-affinity": (run_ablation_affinity, dict(x_label="mode", fmt="{:.3g}")),
    "ablation-static": (run_ablation_static, dict(fmt="{:.2f}")),
    "ablation-waitfree": (run_ablation_waitfree, dict(fmt="{:.2f}")),
}


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "perf":
        from repro.bench.perf import main as perf_main

        return perf_main(argv[1:])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["quick", "full"], default=None)
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="run only these experiments")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="run experiments sharded over N fleet workers "
                             "(python -m repro.fleet; default: in-process)")
    parser.add_argument("--json", default="BENCH_sim.json", metavar="PATH",
                        help="machine-readable record path (default: %(default)s)")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing the JSON record")
    args = parser.parse_args(argv)
    s = resolve_scale(args.scale)
    chosen = args.only or list(EXPERIMENTS)
    if args.jobs is not None:
        measured = _run_fleet(chosen, s, args.jobs)
    else:
        print(f"# repro benchmark suite — scale={s}\n")
        measured = []
        for name in chosen:
            fn, render_kwargs = EXPERIMENTS[name]
            # Sanctioned wall-clock site: this measures how long the *host*
            # takes to run the experiment, not anything in virtual time.
            t0 = time.perf_counter()  # repro: lint-disable=RPR002
            result = fn(s)
            wall = time.perf_counter() - t0  # repro: lint-disable=RPR002
            print(render(result, **render_kwargs))
            print(f"  ({wall:.1f}s wall)\n")
            measured.append((result, wall))
    if not args.no_json:
        out = write_bench_json(measured, args.json, s)
        print(f"bench record -> {out}")
    return 0


def _run_fleet(chosen: list[str], scale_name: str, jobs: int):
    """Run ``chosen`` experiments as fleet jobs; results keep suite order.

    Virtual-time results are deterministic, so the sharded record is
    identical to the serial one — only the host wall differs (and the
    per-experiment wall is measured *inside* the worker, so the record
    stays comparable).
    """
    from repro.fleet.jobs import bench_jobs
    from repro.fleet.scheduler import FleetScheduler
    from repro.util.records import SweepResult

    print(f"# repro benchmark suite — scale={scale_name}, fleet jobs={jobs}\n")
    report = FleetScheduler(jobs).run(bench_jobs(chosen, scale_name))
    if not report.ok:
        details = [c["key"] for c in report.crashed] + [
            f"{r.key}: {r.error}" for r in report.failed_results
        ]
        raise RuntimeError(f"fleet bench run failed: {details}")
    by_name = {r.payload["experiment"]: r for r in report.completed}
    measured = []
    for name in chosen:
        res = by_name[name]
        sweep = SweepResult.from_dict(res.payload["result"])
        _fn, render_kwargs = EXPERIMENTS[name]
        print(render(sweep, **render_kwargs))
        print(f"  ({res.wall_s:.1f}s wall on worker {res.worker})\n")
        measured.append((sweep, res.wall_s))
    print(
        f"fleet: {len(report.completed)} experiments on {jobs} workers, "
        f"{report.steals} steals, {report.waves} waves\n"
    )
    return measured


if __name__ == "__main__":
    sys.exit(main())
