"""UTS tree generation: SHA-1 splittable random streams.

Follows the UTS benchmark definition: a node is a 20-byte SHA-1 digest;
child ``i`` of a node is ``SHA1(digest || i)``.  The node's child count
is a deterministic function of its digest and depth:

* **geometric** trees — the child count is geometrically distributed
  with depth-dependent expectation ``b(d) = b0 * (1 - d / gen_mx)``
  (linear shape) truncated at depth ``gen_mx``.  Moderately unbalanced;
  the workload of Figures 7-8.
* **binomial** trees — the root has ``b0`` children; every other node
  has ``m`` children with probability ``q`` and none otherwise.  With
  ``q * m < 1`` the tree is finite but its subtree sizes have huge
  variance: the classic stress test for work stealing.

Because the digest chain fully determines the tree, any traversal order
(or parallelization) yields identical node/leaf counts — which is how
the tests validate the runtime.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

__all__ = ["UTSParams", "UTSNode", "TreeStats", "root_node", "children_of", "count_tree", "num_children"]


@dataclass(frozen=True)
class UTSParams:
    """Parameters selecting a deterministic UTS tree.

    Attributes:
        tree_type: ``"geometric"`` or ``"binomial"``.
        b0: Root branching factor (also the expected branching at depth 0
            for geometric trees).
        gen_mx: Maximum depth of a geometric tree.
        q: Probability a non-root binomial node has children.
        m: Number of children of a non-leaf binomial node.
        root_seed: Seed of the root digest; different seeds give
            completely different trees.
    """

    tree_type: str = "geometric"
    b0: float = 4.0
    gen_mx: int = 6
    q: float = 0.15
    m: int = 4
    root_seed: int = 19

    def __post_init__(self) -> None:
        if self.tree_type not in ("geometric", "binomial"):
            raise ValueError(f"unknown tree_type {self.tree_type!r}")
        if self.tree_type == "binomial" and self.q * self.m >= 1.0:
            raise ValueError(
                f"binomial tree with q*m = {self.q * self.m:.3f} >= 1 is "
                "supercritical (infinite with positive probability)"
            )


@dataclass(frozen=True)
class UTSNode:
    """One tree node: its SHA-1 digest and its depth."""

    digest: bytes
    depth: int


@dataclass
class TreeStats:
    """Exhaustive traversal statistics (the benchmark's checksum)."""

    nodes: int = 0
    leaves: int = 0
    max_depth: int = 0

    def merge(self, other: "TreeStats") -> "TreeStats":
        return TreeStats(
            nodes=self.nodes + other.nodes,
            leaves=self.leaves + other.leaves,
            max_depth=max(self.max_depth, other.max_depth),
        )


def root_node(params: UTSParams) -> UTSNode:
    """The root of the tree selected by ``params``."""
    digest = hashlib.sha1(params.root_seed.to_bytes(8, "big")).digest()
    return UTSNode(digest=digest, depth=0)


def _uniform(digest: bytes) -> float:
    """Map a digest to a uniform value in [0, 1)."""
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


def num_children(params: UTSParams, node: UTSNode) -> int:
    """Deterministic child count of ``node``."""
    u = _uniform(node.digest)
    if params.tree_type == "geometric":
        if node.depth >= params.gen_mx:
            return 0
        b_d = params.b0 * (1.0 - node.depth / params.gen_mx)
        if b_d <= 0:
            return 0
        p = 1.0 / (1.0 + b_d)
        # inverse-CDF sample of Geometric(p) supported on {0, 1, 2, ...}
        return int(math.floor(math.log(1.0 - u) / math.log(1.0 - p)))
    # binomial
    if node.depth == 0:
        return int(params.b0)
    return params.m if u < params.q else 0


def children_of(params: UTSParams, node: UTSNode) -> list[UTSNode]:
    """Generate the children of ``node`` via the SHA-1 chain."""
    n = num_children(params, node)
    out = []
    for i in range(n):
        digest = hashlib.sha1(node.digest + i.to_bytes(4, "big")).digest()
        out.append(UTSNode(digest=digest, depth=node.depth + 1))
    return out


def count_tree(params: UTSParams, max_nodes: int | None = None) -> TreeStats:
    """Sequentially traverse the whole tree (reference implementation).

    Args:
        max_nodes: Abort with :class:`ValueError` if the tree exceeds this
            many nodes — a guard against accidentally huge parameters.
    """
    stats = TreeStats()
    stack = [root_node(params)]
    while stack:
        node = stack.pop()
        stats.nodes += 1
        stats.max_depth = max(stats.max_depth, node.depth)
        if max_nodes is not None and stats.nodes > max_nodes:
            raise ValueError(f"tree exceeds max_nodes={max_nodes}")
        kids = children_of(params, node)
        if not kids:
            stats.leaves += 1
        else:
            stack.extend(kids)
    return stats
