"""Edge cases for ``repro.obs.analyze.critical_idle``.

The happy path (a gap between two spans, overlapping covers) is tested
in ``test_obs_export.py``; these are the boundary conditions: an empty
recording, a single-rank run, and a run whose recording ends inside a
termination wave (open spans).
"""

from __future__ import annotations

from repro.obs.analyze import critical_idle, summarize
from repro.obs.record import SpanRecord
from repro.obs.scenarios import run_target


def _span(rank, name, cat, start, end):
    return SpanRecord(rank=rank, name=name, category=cat, start=start, end=end)


class TestEmptyRecording:
    def test_no_spans_yields_no_gaps(self):
        assert critical_idle([]) == []

    def test_only_open_spans_yields_no_gaps(self):
        # A run that aborted mid-span records end=None; those spans
        # cover nothing and must not crash the merge.
        open_span = SpanRecord(rank=0, name="wave 3", category="termination",
                               start=1.0, end=None)
        assert critical_idle([open_span]) == []

    def test_summarize_copes_with_empty_stream(self):
        assert "no finished spans" in summarize([])


class TestSingleRank:
    def test_single_rank_gap_found(self):
        spans = [
            _span(0, "t1", "task", 0.0, 1.0),
            _span(0, "t2", "task", 5.0, 6.0),
        ]
        (gap,) = critical_idle(spans)
        assert (gap.rank, gap.start, gap.end) == (0, 1.0, 5.0)

    def test_single_rank_real_run(self):
        # nprocs=1: no steals, no cross-rank tokens — gaps can only come
        # from scheduler polling, and the extent bounds must hold.
        run = run_target("uts-tiny", nprocs=1)
        spans = run.recorder.finished_spans()
        assert spans and all(s.rank == 0 for s in spans)
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        for gap in critical_idle(spans, top=100):
            assert gap.rank == 0
            assert t0 <= gap.start < gap.end <= t1

    def test_no_gap_before_first_or_after_last_span(self):
        # Outside a rank's recorded extent nothing is known: no gaps.
        spans = [_span(0, "t", "task", 2.0, 3.0), _span(1, "u", "task", 0.0, 9.0)]
        assert critical_idle(spans) == []


class TestTerminationDuringWave:
    def test_open_wave_span_is_ignored(self):
        # The root launched a wave that never completed (recording ended
        # mid-wave): the open span must not mask the real gap.
        spans = [
            _span(0, "t1", "task", 0.0, 1.0),
            _span(0, "t2", "task", 4.0, 5.0),
            SpanRecord(rank=0, name="wave 9", category="termination",
                       start=0.5, end=None),
        ]
        (gap,) = critical_idle(spans)
        assert (gap.start, gap.end) == (1.0, 4.0)

    def test_completed_wave_span_masks_the_gap(self):
        # Same layout, but the wave completed: the rank was inside the
        # wave interval, so there is no uncovered stretch.
        spans = [
            _span(0, "t1", "task", 0.0, 1.0),
            _span(0, "t2", "task", 4.0, 5.0),
            _span(0, "wave 9", "termination", 0.5, 4.5),
        ]
        assert critical_idle(spans) == []

    def test_real_run_with_waves_has_consistent_gaps(self):
        # The termination scenario ends through a full wave protocol;
        # every reported gap must be bounded by real span names.
        run = run_target("termination")
        spans = run.recorder.finished_spans()
        assert any(s.category == "termination" for s in spans)
        names = {s.name for s in spans}
        for gap in critical_idle(spans, top=10):
            assert gap.duration > 0
            assert gap.before in names and gap.after in names
