"""Tests for accumulate semantics, fences, and counter bookkeeping."""

from __future__ import annotations

import pytest

from repro.armci.runtime import Armci
from repro.sim.engine import Engine
from repro.sim.machines import heterogeneous_cluster, uniform_cluster


def _run(nprocs, main, *args, seed=0, machine=None):
    eng = Engine(nprocs, seed=seed, machine=machine, max_events=500_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestAccumulate:
    def test_remote_acc_applies_and_serializes(self):
        cell = {"v": 0.0}

        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank != 0:
                armci.acc(proc, 0, 8192, lambda: cell.__setitem__("v", cell["v"] + 1))
                return proc.now
            proc.sleep(1e-3)
            return None

        eng, res = _run(4, main)
        assert cell["v"] == 3.0
        # three 8kB accumulates arriving together must serialize at the
        # target's combine unit: completion times strictly increase
        finishes = sorted(t for t in res.returns if t is not None)
        assert finishes[0] < finishes[1] < finishes[2]
        m = eng.machine
        combine = 8192 / m.local_mem_bandwidth + m.rmw_overhead
        assert finishes[2] - finishes[0] >= 2 * combine * 0.99

    def test_local_acc_cheap_and_immediate(self):
        cell = {"v": 0.0}

        def main(proc):
            armci = Armci.attach(proc.engine)
            t0 = proc.now
            armci.acc(proc, proc.rank, 1024, lambda: cell.__setitem__("v", 7.0))
            return proc.now - t0

        eng, res = _run(1, main)
        assert cell["v"] == 7.0
        assert res.returns[0] == pytest.approx(2 * eng.machine.local_copy_time(1024))


class TestFence:
    def test_fence_charges_flush(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            t0 = proc.now
            armci.fence(proc)
            return proc.now - t0

        eng, res = _run(2, main)
        assert res.returns[0] == pytest.approx(eng.machine.latency)


class TestCounters:
    def test_snapshot_and_keys(self):
        def main(proc):
            armci = Armci.attach(proc.engine)
            if proc.rank == 0:
                armci.put(proc, 1, 100, None)
                armci.get(proc, 1, 50, None)
                armci.rmw(proc, 1, lambda: 0)

        eng, _ = _run(2, main)
        snap = Armci.attach(eng).counters.snapshot()
        assert snap["put_remote"] == 1
        assert snap["bytes_get"] == 50
        assert snap["rmw"] == 1
        assert "put_remote" in Armci.attach(eng).counters.keys()


class TestEngineMisc:
    def test_machine_validation_at_construction(self):
        with pytest.raises(ValueError, match="cpu factors"):
            Engine(8, machine=heterogeneous_cluster(4))

    def test_current_proc_during_run(self):
        seen = []

        def main(proc):
            proc.sync()
            seen.append(proc.engine.current is proc)

        _run(3, main)
        assert seen == [True, True, True]

    def test_uniform_machine_any_size(self):
        eng = Engine(100, machine=uniform_cluster(1))
        assert eng.machine.cpu_factor(99) == 1.0
