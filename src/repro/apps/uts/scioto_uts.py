"""UTS on Scioto: one task per tree node, stats gathered in CLOs (§6.2).

Matches the paper's port of UTS: the traversal starts from a single
task holding the root; each task counts its node, generates the
children via SHA-1, and adds one new task per child.  Tree statistics
accumulate in a common local object per rank and are reduced at the
end — the CLO mechanism §2.3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.armci.runtime import Armci
from repro.apps.uts.tree import TreeStats, UTSParams, children_of, root_node
from repro.core import SciotoConfig, Task, TaskCollection
from repro.core.stats import ProcessStats
from repro.sim.engine import Engine, SimResult
from repro.sim.machines import MachineSpec

__all__ = ["run_uts_scioto", "UTSRunResult", "UTS_BODY_BYTES"]

#: Wire size of a UTS task body (digest + depth + bookkeeping).
UTS_BODY_BYTES = 32


@dataclass
class UTSRunResult:
    """Aggregated outcome of a parallel UTS run.

    ``throughput`` is the paper's figure-of-merit: tree nodes processed
    per second of virtual time across all ranks.
    """

    stats: TreeStats
    elapsed: float
    throughput: float
    nprocs: int
    per_rank: list[ProcessStats]
    sim: SimResult

    @property
    def total_steals(self) -> int:
        return sum(s.steals_successful for s in self.per_rank)


def _uts_main(proc, params: UTSParams, config: SciotoConfig):
    tc = yield from TaskCollection.co_create(
        proc, task_size=UTS_BODY_BYTES, max_tasks=1 << 20, config=config
    )

    def node_task(tc_: TaskCollection, task: Task):
        node = task.body
        p = tc_.proc
        # §6.3: processing one node costs 0.3158us (Opteron) / 0.4753us
        # (Xeon) / 0.5681us (XT4) — the machine model scales the factor.
        p.compute(p.machine.cpu_reference)
        local: TreeStats = tc_.clo(stats_h)
        local.nodes += 1
        local.max_depth = max(local.max_depth, node.depth)
        kids = children_of(params, node)
        if not kids:
            local.leaves += 1
            return
        for child in kids:
            yield from tc_.co_add(Task(callback=h, body=child, body_size=UTS_BODY_BYTES))

    h = tc.register(node_task)
    stats_h = tc.register_clo(TreeStats())
    if proc.rank == 0:
        yield from tc.co_add(
            Task(callback=h, body=root_node(params), body_size=UTS_BODY_BYTES)
        )

    armci = Armci.attach(proc.engine)
    yield from armci.co_barrier(proc)
    t0 = proc.now
    pstats = yield from tc.co_process()
    local = tc.clo(stats_h)
    total: TreeStats = yield from armci.co_allreduce(proc, local, TreeStats.merge)
    elapsed = yield from armci.co_allreduce(proc, proc.now - t0, max)
    return (total, elapsed, pstats)


def run_uts_scioto(
    nprocs: int,
    params: UTSParams,
    machine: MachineSpec | None = None,
    seed: int = 0,
    config: SciotoConfig | None = None,
    max_events: int | None = None,
    engine_hook=None,
) -> UTSRunResult:
    """Run UTS with Scioto task collections on ``nprocs`` simulated ranks.

    ``engine_hook``, if given, is called with the freshly built
    :class:`~repro.sim.engine.Engine` before any rank is spawned — the
    attachment point for observers (``repro.obs``, ``repro.analyze``).
    """
    cfg = config if config is not None else SciotoConfig()
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events)
    if engine_hook is not None:
        engine_hook(eng)
    eng.spawn_all(_uts_main, params, cfg)
    sim = eng.run()
    total, elapsed, _ = sim.returns[0]
    per_rank = [r[2] for r in sim.returns]
    return UTSRunResult(
        stats=total,
        elapsed=elapsed,
        throughput=total.nodes / elapsed if elapsed > 0 else 0.0,
        nprocs=nprocs,
        per_rank=per_rank,
        sim=sim,
    )
