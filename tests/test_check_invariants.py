"""Unit tests for the model-checker invariants over synthetic event lists."""

from __future__ import annotations

import itertools

from repro.check.invariants import (
    CheckContext,
    ExactlyOnce,
    GraphDependencyOrder,
    MutexBalance,
    NoEarlyTermination,
    QueueConsistency,
)
from repro.obs.tracing import TraceEvent

_clock = itertools.count()


def ev(kind, detail=None, rank=0):
    return TraceEvent(time=next(_clock) * 1e-6, rank=rank, kind=kind, detail=detail)


def names(violations):
    return sorted({v.invariant for v in violations})


class TestExactlyOnce:
    def test_clean(self):
        evs = [ev("task-add", 1), ev("task-exec", 1), ev("task-add", 2), ev("task-exec", 2)]
        assert ExactlyOnce().check(evs, CheckContext()) == []

    def test_double_execution(self):
        evs = [ev("task-add", 1), ev("task-exec", 1), ev("task-exec", 1)]
        out = ExactlyOnce().check(evs, CheckContext())
        assert any("executed 2 times" in v.message for v in out)

    def test_never_executed(self):
        evs = [ev("task-add", 1), ev("task-add", 2), ev("task-exec", 1)]
        out = ExactlyOnce().check(evs, CheckContext(expect_complete=True))
        assert any("never executed" in v.message for v in out)
        # open-ended workloads may legally leave tasks queued
        assert ExactlyOnce().check(evs, CheckContext(expect_complete=False)) == []

    def test_phantom_execution(self):
        out = ExactlyOnce().check([ev("task-exec", 9)], CheckContext(expect_complete=False))
        assert any("never added" in v.message for v in out)

    def test_duplicate_add(self):
        evs = [ev("task-add", 1), ev("task-add", 1), ev("task-exec", 1)]
        out = ExactlyOnce().check(evs, CheckContext())
        assert any("added twice" in v.message for v in out)


class TestNoEarlyTermination:
    def test_clean(self):
        evs = [ev("task-exec", 1), ev("td-done", 3)]
        assert NoEarlyTermination().check(evs, CheckContext()) == []

    def test_exec_after_done(self):
        evs = [ev("task-exec", 1), ev("td-done", 3), ev("task-exec", 2, rank=2)]
        out = NoEarlyTermination().check(evs, CheckContext())
        assert names(out) == ["no-early-termination"]

    def test_missing_declaration(self):
        out = NoEarlyTermination().check([ev("task-exec", 1)], CheckContext(expect_complete=True))
        assert any("without a termination declaration" in v.message for v in out)


class TestQueueConsistency:
    def test_clean_lifecycle(self):
        evs = [
            ev("q-push", (0, 1)),
            ev("q-push", (0, 2)),
            ev("q-steal", (0, (2,)), rank=1),
            ev("q-absorb", (1, (2,)), rank=1),
            ev("q-pop", (0, 1)),
            ev("q-pop", (1, 2), rank=1),
        ]
        assert QueueConsistency().check(evs, CheckContext(capacity=4)) == []

    def test_pop_of_stolen_descriptor(self):
        """The signature of a split-pointer race: the owner pops a task a
        thief has already removed."""
        evs = [
            ev("q-push", (0, 1)),
            ev("q-steal", (0, (1,)), rank=2),
            ev("q-pop", (0, 1)),
        ]
        out = QueueConsistency().check(evs, CheckContext())
        assert any("lost or duplicated" in v.message for v in out)

    def test_absorb_without_steal(self):
        out = QueueConsistency().check([ev("q-absorb", (1, (5,)), rank=1)], CheckContext())
        assert len(out) == 1

    def test_capacity_bound(self):
        evs = [ev("q-push", (0, uid)) for uid in range(5)]
        out = QueueConsistency().check(evs, CheckContext(capacity=3))
        assert any("capacity" in v.message for v in out)

    def test_remote_add_tracked(self):
        evs = [ev("q-add-remote", (2, 7), rank=0), ev("q-pop", (2, 7), rank=2)]
        assert QueueConsistency().check(evs, CheckContext()) == []


class TestMutexBalance:
    def test_clean(self):
        evs = [
            ev("mutex-acq", "tq[0]", rank=1),
            ev("mutex-rel", "tq[0]", rank=1),
            ev("mutex-acq", "tq[0]", rank=2),
            ev("mutex-rel", "tq[0]", rank=2),
        ]
        assert MutexBalance().check(evs, CheckContext()) == []

    def test_double_grant(self):
        evs = [ev("mutex-acq", "m", rank=0), ev("mutex-acq", "m", rank=1)]
        out = MutexBalance().check(evs, CheckContext())
        assert any("while held" in v.message for v in out)

    def test_release_by_non_holder(self):
        evs = [ev("mutex-acq", "m", rank=0), ev("mutex-rel", "m", rank=1)]
        out = MutexBalance().check(evs, CheckContext())
        assert any("does not hold it" in v.message for v in out)

    def test_held_at_end(self):
        out = MutexBalance().check([ev("mutex-acq", "m", rank=0)], CheckContext())
        assert any("still held" in v.message for v in out)


class TestGraphDependencyOrder:
    DAG = {"a": (), "b": ("a",), "c": ("a", "b")}

    def test_clean(self):
        evs = [ev("graph-node", n) for n in ("a", "b", "c")]
        assert GraphDependencyOrder().check(evs, CheckContext(dag=self.DAG)) == []

    def test_dependency_violation(self):
        evs = [ev("graph-node", "b"), ev("graph-node", "a"), ev("graph-node", "c")]
        out = GraphDependencyOrder().check(evs, CheckContext(dag=self.DAG))
        assert any("before its dependency" in v.message for v in out)

    def test_missing_node(self):
        evs = [ev("graph-node", "a")]
        out = GraphDependencyOrder().check(evs, CheckContext(dag=self.DAG, expect_complete=True))
        assert any("never executed" in v.message for v in out)

    def test_double_dispatch(self):
        evs = [ev("graph-node", "a"), ev("graph-node", "a")]
        out = GraphDependencyOrder().check(evs, CheckContext(dag=self.DAG, expect_complete=False))
        assert any("dispatched twice" in v.message for v in out)

    def test_no_dag_no_checks(self):
        assert GraphDependencyOrder().check([ev("graph-node", "x")], CheckContext(dag=None)) == []
