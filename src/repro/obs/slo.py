"""Declarative SLOs with multi-window burn-rate alerting over live feeds.

An SLO spec is a JSON document (:data:`SLO_SCHEMA`) with one entry per
objective::

    {
      "schema": "repro-obs-slo/1",
      "slos": [
        {
          "name": "steal-tail",
          "objective": "steal_latency:p99",
          "threshold": 0.005,
          "direction": "lower",
          "target": 0.99,
          "alerts": [
            {"long": 12, "short": 3, "factor": 2.0}
          ]
        }
      ]
    }

Each telemetry frame (one virtual-time window of the
``repro-obs-live/1`` feed — see :mod:`repro.obs.live`) is scored good
or bad: the frame's value of ``objective`` (a histogram name plus one
of ``p50``/``p95``/``p99``/``mean``/``count``, or the pseudo-metrics
``ev_s`` and ``counter:<name>``) is compared against ``threshold`` in
``direction``.  Frames in which the objective's metric recorded nothing
are skipped — an SLO over steal latency says nothing about windows with
no steals.

Compliance and burn follow the standard SRE error-budget algebra:
``target`` is the demanded good-frame fraction (0.99 → a 1% budget),
and the *burn rate* over a lookback of N frames is the observed
bad-frame fraction divided by the budget — burn 1.0 spends the budget
exactly at the end of the compliance horizon, burn 2.0 twice as fast.
An alert fires only when **both** its lookbacks exceed ``factor``
(long window for significance, short window to confirm the burn is
still happening), the classic multi-window rule that suppresses both
one-frame blips and stale pages.

``python -m repro.obs slo FEED --spec SPEC`` renders the verdict;
``--fail-on-burn`` exits nonzero when any alert fires (or any
objective's overall compliance misses its target), which is the CI
acceptance gate the ROADMAP's open-loop serving scenario plugs into.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SLO_SCHEMA",
    "SloSpec",
    "AlertRule",
    "SloResult",
    "load_spec",
    "evaluate",
    "render_report",
]

#: Schema tag expected at the top of an SLO spec document.
SLO_SCHEMA = "repro-obs-slo/1"

_QUANTITIES = ("p50", "p95", "p99", "mean", "count")


@dataclass(frozen=True)
class AlertRule:
    """One multi-window burn-rate rule: fire when both windows burn."""

    long: int  #: lookback length in frames (significance window)
    short: int  #: confirmation lookback in frames
    factor: float  #: burn-rate threshold both lookbacks must exceed


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over a telemetry feed."""

    name: str
    objective: str  #: "<histogram>:<p50|p95|p99|mean|count>", "ev_s", or "counter:<key>"
    threshold: float
    target: float  #: demanded good-frame fraction, e.g. 0.99
    direction: str = "lower"  #: "lower" (value must stay below) or "higher"
    alerts: tuple[AlertRule, ...] = ()


@dataclass
class SloResult:
    """Verdict for one SLO over one feed."""

    spec: SloSpec
    frames_scored: int
    frames_bad: int
    compliance: float | None  #: good fraction, None when nothing scored
    burn_rates: list[tuple[AlertRule, float, float]] = field(default_factory=list)
    fired: list[AlertRule] = field(default_factory=list)

    @property
    def met(self) -> bool:
        """True when compliance meets target (vacuously for no data)."""
        return self.compliance is None or self.compliance >= self.spec.target

    @property
    def burning(self) -> bool:
        return bool(self.fired)


def load_spec(path: str | Path) -> list[SloSpec]:
    """Parse and validate an SLO spec document."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SLO_SCHEMA:
        raise ValueError(
            f"{path}: unsupported SLO spec schema {doc.get('schema')!r}; "
            f"expected {SLO_SCHEMA}"
        )
    specs: list[SloSpec] = []
    for i, raw in enumerate(doc.get("slos", ())):
        where = f"{path}: slos[{i}]"
        for key in ("name", "objective", "threshold", "target"):
            if key not in raw:
                raise ValueError(f"{where}: missing {key!r}")
        direction = raw.get("direction", "lower")
        if direction not in ("lower", "higher"):
            raise ValueError(f"{where}: direction must be 'lower' or 'higher'")
        if not 0.0 < raw["target"] <= 1.0:
            raise ValueError(f"{where}: target must be in (0, 1]")
        objective = raw["objective"]
        if (
            objective != "ev_s"
            and not objective.startswith("counter:")
            and (":" not in objective or objective.rsplit(":", 1)[1] not in _QUANTITIES)
        ):
            raise ValueError(
                f"{where}: objective must be 'ev_s', 'counter:<key>', or "
                f"'<histogram>:<{'|'.join(_QUANTITIES)}>', got {objective!r}"
            )
        alerts = []
        for j, a in enumerate(raw.get("alerts", ())):
            for key in ("long", "short", "factor"):
                if key not in a:
                    raise ValueError(f"{where}: alerts[{j}]: missing {key!r}")
            if a["short"] > a["long"]:
                raise ValueError(
                    f"{where}: alerts[{j}]: short lookback exceeds long"
                )
            alerts.append(AlertRule(int(a["long"]), int(a["short"]), float(a["factor"])))
        specs.append(
            SloSpec(
                name=raw["name"],
                objective=objective,
                threshold=float(raw["threshold"]),
                target=float(raw["target"]),
                direction=direction,
                alerts=tuple(alerts),
            )
        )
    if not specs:
        raise ValueError(f"{path}: spec contains no SLOs")
    return specs


def _frame_value(frame: dict, objective: str) -> float | None:
    """The objective's value in one frame, or None when unscorable."""
    if objective == "ev_s":
        return frame.get("ev_s")
    if objective.startswith("counter:"):
        return (frame.get("counters") or {}).get(objective[len("counter:"):])
    name, quantity = objective.rsplit(":", 1)
    hist = (frame.get("histograms") or {}).get(name)
    if hist is None:
        return None
    return hist.get(quantity)


def evaluate(
    frames: list[dict], specs: list[SloSpec], label: str | None = None
) -> list[SloResult]:
    """Score every spec over the feed's frames (optionally one label)."""
    if label is not None:
        frames = [f for f in frames if f.get("label") == label]
    results: list[SloResult] = []
    for spec in specs:
        # Per-frame verdicts, in feed order: True = bad window.
        bad: list[bool] = []
        for frame in frames:
            value = _frame_value(frame, spec.objective)
            if value is None:
                continue
            if spec.direction == "lower":
                bad.append(value > spec.threshold)
            else:
                bad.append(value < spec.threshold)
        scored = len(bad)
        nbad = sum(bad)
        budget = 1.0 - spec.target
        result = SloResult(
            spec=spec,
            frames_scored=scored,
            frames_bad=nbad,
            compliance=(1.0 - nbad / scored) if scored else None,
        )
        for rule in spec.alerts:
            if scored == 0:
                result.burn_rates.append((rule, 0.0, 0.0))
                continue
            long_tail = bad[-rule.long:]
            short_tail = bad[-rule.short:]
            long_rate = sum(long_tail) / len(long_tail)
            short_rate = sum(short_tail) / len(short_tail)
            if budget > 0:
                long_burn = long_rate / budget
                short_burn = short_rate / budget
            else:
                # target == 1.0: any bad frame is an infinite burn.
                long_burn = float("inf") if long_rate else 0.0
                short_burn = float("inf") if short_rate else 0.0
            result.burn_rates.append((rule, long_burn, short_burn))
            if long_burn > rule.factor and short_burn > rule.factor:
                result.fired.append(rule)
        results.append(result)
    return results


def render_report(results: list[SloResult]) -> str:
    """Human-readable verdict table for ``repro.obs slo``."""
    lines: list[str] = []
    for r in results:
        spec = r.spec
        sign = "<=" if spec.direction == "lower" else ">="
        status = "OK"
        if r.burning:
            status = "BURNING"
        elif not r.met:
            status = "VIOLATED"
        elif r.compliance is None:
            status = "NO DATA"
        lines.append(
            f"{spec.name}: {status}  ({spec.objective} {sign} {spec.threshold:g}, "
            f"target {spec.target:.4g})"
        )
        if r.compliance is None:
            lines.append("  no scorable frames")
            continue
        lines.append(
            f"  compliance {r.compliance:.4f} over {r.frames_scored} frames "
            f"({r.frames_bad} bad); error budget "
            f"{(1.0 - spec.target):.4g}"
        )
        for rule, long_burn, short_burn in r.burn_rates:
            fired = rule in r.fired
            lines.append(
                f"  burn[{rule.long}w/{rule.short}w @ {rule.factor:g}x]: "
                f"long {long_burn:.3g}x, short {short_burn:.3g}x"
                + ("  << FIRING" if fired else "")
            )
    return "\n".join(lines)
