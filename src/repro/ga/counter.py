"""Shared global counters (GA ``read_inc``).

The original SCF and TCE codes the paper compares against balance load
by replicating the task list on every process and atomically
incrementing a shared counter to claim the next task (§6.2).  The
counter lives on one rank; every claim is a remote atomic that
serializes at the host — the contention the paper's Figures 5/6 show.
"""

from __future__ import annotations

from repro.armci.runtime import Armci
from repro.sim.engine import Engine, Proc, blocking_method

__all__ = ["GlobalCounter"]


class GlobalCounter:
    """An atomically-incremented counter hosted on ``host_rank``."""

    _KEY = "ga_counters"

    def __init__(self, engine: Engine, host_rank: int = 0) -> None:
        self.engine = engine
        self.host_rank = host_rank
        self.armci = Armci.attach(engine)
        self._value = 0

    create = classmethod(blocking_method("co_create"))

    @classmethod
    def co_create(cls, proc: Proc, host_rank: int = 0):
        """Collectively create a counter (call from every rank, in order)."""
        registry = proc.engine.state.setdefault(cls._KEY, {"counts": [0] * proc.nprocs, "objs": []})
        idx = registry["counts"][proc.rank]
        registry["counts"][proc.rank] += 1
        yield from proc.co_sync()
        if idx == len(registry["objs"]):
            registry["objs"].append(cls(proc.engine, host_rank))
        counter = registry["objs"][idx]
        yield from counter.armci.co_barrier(proc)
        return counter

    read_inc = blocking_method("co_read_inc")

    def co_read_inc(self, proc: Proc, amount: int = 1):
        """Atomically fetch the current value and add ``amount`` (NGA_Read_inc)."""

        def _fetch_add() -> int:
            v = self._value
            self._value += amount
            return v

        return (yield from self.armci.co_rmw(proc, self.host_rank, _fetch_add))

    reset = blocking_method("co_reset")

    def co_reset(self, proc: Proc):
        """Collectively reset the counter to zero."""
        yield from self.armci.co_barrier(proc)
        if proc.rank == self.host_rank:
            self._value = 0
        yield from self.armci.co_barrier(proc)

    def peek(self) -> int:
        """Read the value without cost (test/debug only)."""
        return self._value
