"""Fleet-wide trace aggregation and crash forensics.

``obs`` jobs record a target through a constant-memory spill in the
worker, ship only the spill path + counters over the pipe, and the
parent merges the spills into one multi-process Chrome trace.  With a
``flight_dir``, workers leave breadcrumbs and periodic flight dumps,
and the scheduler writes a crash report for every worker death —
forensics that survive SIGKILL.
"""

from __future__ import annotations

import json

from repro.fleet.jobs import Job, execute_job, obs_jobs
from repro.fleet.scheduler import FleetScheduler
from repro.obs.stream import SpillReader, merge_spills


class TestObsJobs:
    def test_builder_one_spill_dir_per_target(self, tmp_path):
        jobs = obs_jobs(["queue", "steals"], str(tmp_path), window=1e-3)
        assert [j.key for j in jobs] == ["obs/queue", "obs/steals"]
        dirs = {j.params["spill_dir"] for j in jobs}
        assert len(dirs) == 2
        assert all(j.params["window"] == 1e-3 for j in jobs)

    def test_execute_obs_spills_and_returns_counts_only(self, tmp_path):
        job = obs_jobs(["queue"], str(tmp_path))[0]
        result = execute_job(job)
        assert result.ok, result.error
        p = result.payload
        assert p["spans"] > 0 and p["dropped"] == 0
        # only the path crosses the pipe; the spans live in the spill
        assert "span_records" not in p
        reader = SpillReader(p["spill_dir"])
        assert reader.index["spans"] == p["spans"]
        assert reader.nprocs == p["nprocs"]

    def test_inline_campaign_then_merge(self, tmp_path):
        jobs = obs_jobs(["queue", "steals"], str(tmp_path / "spills"))
        report = FleetScheduler(2, inline=True).run(jobs)
        assert report.ok
        items = [
            (i + 1, r.payload["target"], r.payload["spill_dir"])
            for i, r in enumerate(sorted(report.completed, key=lambda r: r.key))
        ]
        out = merge_spills(items, tmp_path / "merged.json")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["processes"] == 2
        assert doc["otherData"]["spans"] == sum(
            r.payload["spans"] for r in report.completed
        )


class TestTraceCli:
    def test_trace_subcommand_merges_across_workers(self, tmp_path, capsys):
        from repro.fleet.__main__ import main

        trace = tmp_path / "fleet_trace.json"
        rc = main(
            [
                "trace",
                "--target", "queue", "steals",
                "--jobs", "2",
                "--out", str(tmp_path / "spills"),
                "--trace", str(trace),
                "--quiet",
            ]
        )
        assert rc == 0
        doc = json.loads(trace.read_text())
        assert doc["otherData"]["source"] == "repro.fleet trace"
        assert doc["otherData"]["processes"] == 2
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        # labels carry the worker that recorded each run
        assert {lbl.split(":", 1)[1] for lbl in labels} == {"queue", "steals"}


class TestCrashForensics:
    def test_sigkill_leaves_breadcrumb_and_crash_reports(self, tmp_path):
        flight = tmp_path / "flight"
        jobs = [
            Job(kind="probe", key=f"probe/{i}",
                params={"action": "sleep", "seconds": 0.01})
            for i in range(3)
        ] + [Job(kind="probe", key="probe/crash", params={"action": "crash"})]
        report = FleetScheduler(2, flight_dir=flight).run(jobs)
        assert len(report.crashed) == 1
        # one crash report per death: the requeue and the final flagging
        reports = sorted(flight.glob("fleet-crash-*.json"))
        assert len(reports) == report.worker_deaths == 2
        docs = [json.loads(p.read_text()) for p in reports]
        assert {d["job_fate"] for d in docs} == {"requeued", "crashed"}
        for doc in docs:
            assert doc["schema"] == "repro-fleet-crash/1"
            assert doc["job"]["key"] == "probe/crash"
            # the breadcrumb is the worker's own last write before dying:
            # it still says "running", with the pid the parent saw die
            assert doc["breadcrumb"]["status"] == "running"
            assert doc["breadcrumb"]["job_key"] == "probe/crash"
            assert doc["breadcrumb"]["pid"] == doc["pid"]

    def test_obs_job_worker_leaves_periodic_flight_dump(self, tmp_path):
        flight = tmp_path / "flight"
        jobs = obs_jobs(["uts-small"], str(tmp_path / "spills"))
        report = FleetScheduler(1, flight_dir=flight).run(jobs)
        assert report.ok
        dumps = list(flight.glob("flight-obs-uts-small-*.json"))
        assert len(dumps) == 1
        doc = json.loads(dumps[0].read_text())
        # flushed mid-run (no failure occurred), so a SIGKILL at any
        # point would still have found a recent snapshot on disk
        assert doc["reason"] == "periodic"
        assert doc["records_seen"] > 0
        assert doc["rings"]
