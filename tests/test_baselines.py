"""Tests for the baseline schedulers (MPI work stealing, global counter)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.global_counter import GlobalCounterScheduler
from repro.baselines.mpi_ws import MpiWorkStealing
from repro.sim.engine import Engine


def _run(nprocs, main, *args, seed=0, max_events=3_000_000):
    eng = Engine(nprocs, seed=seed, max_events=max_events)
    eng.spawn_all(main, *args)
    return eng, eng.run()


class TestMpiWorkStealing:
    def _tree_run(self, nprocs, seed, fanout=3, depth=4, chunk=4, poll=4):
        """Each item spawns ``fanout`` children down to ``depth``."""
        done = []

        def main(proc):
            def process(p, item, push):
                ident, d = item
                p.compute(1e-6)
                done.append(ident)
                if d < depth:
                    for c in range(fanout):
                        push((ident * fanout + c + 1, d + 1))

            ws = MpiWorkStealing(proc, process, chunk=chunk, poll_interval=poll)
            initial = [(0, 0)] if proc.rank == 0 else []
            return ws.run(initial)

        _, res = _run(nprocs, main, seed=seed)
        expected = sum(fanout**d for d in range(depth + 1))
        return done, expected, res

    @pytest.mark.parametrize("nprocs", [1, 2, 4, 7])
    def test_all_items_processed_exactly_once(self, nprocs):
        done, expected, _ = self._tree_run(nprocs, seed=3)
        assert len(done) == expected
        assert len(set(done)) == expected

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5000), nprocs=st.integers(2, 6))
    def test_exactly_once_random_seeds(self, seed, nprocs):
        done, expected, _ = self._tree_run(nprocs, seed=seed)
        assert sorted(done) == sorted(set(done))
        assert len(done) == expected

    def test_work_spreads_across_ranks(self):
        def main(proc):
            def process(p, item, push):
                p.compute(20e-6)
                if item < 200:
                    push(item * 2 + 1)
                    push(item * 2 + 2)

            ws = MpiWorkStealing(proc, process, chunk=2)
            ws.run([0] if proc.rank == 0 else [])
            return ws.processed

        _, res = _run(4, main, seed=1)
        assert sum(res.returns) > 0
        assert sum(1 for c in res.returns if c > 0) >= 3

    def test_steal_counters(self):
        def main(proc):
            def process(p, item, push):
                p.compute(50e-6)
                if item < 60:
                    push(item * 2 + 1)
                    push(item * 2 + 2)

            ws = MpiWorkStealing(proc, process)
            ws.run([0] if proc.rank == 0 else [])
            return (ws.steals, ws.steal_attempts)

        _, res = _run(3, main, seed=2)
        total_steals = sum(r[0] for r in res.returns)
        total_attempts = sum(r[1] for r in res.returns)
        assert total_attempts >= total_steals
        assert total_steals >= 1


class TestGlobalCounterScheduler:
    def test_each_task_claimed_exactly_once(self):
        claimed = []

        def main(proc):
            sched = GlobalCounterScheduler(
                proc, lambda p, t: claimed.append((t, p.rank))
            )
            return sched.run(list(range(30)))

        _, res = _run(4, main)
        assert sorted(t for t, _ in claimed) == list(range(30))
        assert sum(s.tasks_claimed for s in res.returns) == 30

    def test_faster_ranks_claim_more(self):
        from repro.sim.machines import heterogeneous_cluster

        def main(proc):
            def work(p, t):
                p.compute(100e-6)

            sched = GlobalCounterScheduler(proc, work)
            return sched.run(list(range(200))).tasks_claimed

        eng = Engine(4, machine=heterogeneous_cluster(4), max_events=3_000_000)
        eng.spawn_all(main)
        res = eng.run()
        fast = res.returns[0] + res.returns[2]
        slow = res.returns[1] + res.returns[3]
        assert fast > slow

    def test_stats_fields(self):
        def main(proc):
            sched = GlobalCounterScheduler(proc, lambda p, t: p.compute(1e-6))
            return sched.run(list(range(10)))

        _, res = _run(2, main)
        for s in res.returns:
            assert s.time_total > 0
            assert s.time_working <= s.time_total
            assert s.time_overhead >= 0

    def test_empty_task_list(self):
        def main(proc):
            sched = GlobalCounterScheduler(proc, lambda p, t: None)
            return sched.run([])

        _, res = _run(3, main)
        assert all(s.tasks_claimed == 0 for s in res.returns)

    def test_counter_claims_serialize_total_time(self):
        """All p ranks claiming concurrently must take longer per claim
        than a single rank (host-side serialization)."""

        def main(proc):
            sched = GlobalCounterScheduler(proc, lambda p, t: None)
            stats = sched.run(list(range(100)))
            return stats.time_total

        _, res1 = _run(2, main)
        _, res8 = _run(8, main)
        # same 100 claims, but 8 ranks contend at the host
        assert max(res8.returns) > 0.5 * max(res1.returns)
