"""Span recording: nesting, ordering, zero-cost-off, capacity limits."""

from __future__ import annotations

from repro.obs.record import _NULL_SPAN, Recorder, instant, observe, span
from repro.sim.engine import Engine


def test_spans_nest_with_depth_and_parent():
    eng = Engine(2, max_events=100_000)
    rec = Recorder.attach(eng)

    def main(proc):
        with span(proc, "outer", "task"):
            proc.advance(10e-6)
            with span(proc, "inner", "comm"):
                proc.advance(2e-6)
            proc.advance(1e-6)
        proc.sync()

    eng.spawn_all(main)
    eng.run()
    spans = rec.finished_spans()
    assert len(spans) == 4  # outer + inner per rank
    for r in range(2):
        outer = next(s for s in spans if s.rank == r and s.name == "outer")
        inner = next(s for s in spans if s.rank == r and s.name == "inner")
        assert outer.depth == 0 and outer.parent is None
        assert inner.depth == 1
        assert rec.spans[inner.parent] is outer
        # the child lies strictly inside the parent
        assert outer.start <= inner.start <= inner.end <= outer.end
        assert abs(outer.duration - 13e-6) < 1e-12
        assert abs(inner.duration - 2e-6) < 1e-12


def test_span_ordering_is_monotone_per_rank():
    eng = Engine(3, seed=1, max_events=100_000)
    rec = Recorder.attach(eng)

    def main(proc):
        for i in range(5):
            with span(proc, f"step{i}", "runtime"):
                proc.advance((proc.rank + 1) * 1e-6)
            proc.sync()

    eng.spawn_all(main)
    eng.run()
    for r in range(3):
        starts = [s.start for s in rec.spans if s.rank == r]
        assert starts == sorted(starts)
        assert len(starts) == 5


def test_hooks_are_noops_without_recorder():
    eng = Engine(1, max_events=100_000)

    def main(proc):
        ctx = span(proc, "ignored", "task")
        assert ctx is _NULL_SPAN  # shared singleton: no allocation per call
        with ctx:
            proc.advance(1e-6)
        observe(proc, "steal_latency", 1e-6)
        instant(proc, "marker")

    eng.spawn_all(main)
    eng.run()
    assert Recorder.of(eng) is None
    assert "obs" not in eng.state


def test_complete_span_and_instants():
    eng = Engine(1, max_events=100_000)
    rec = Recorder.attach(eng)

    def main(proc):
        t0 = proc.now
        proc.advance(5e-6)
        rec.complete_span(proc, "wave 1", "termination", t0, detail="white")
        instant(proc, "dirty-mark", "termination", detail=3)

    eng.spawn_all(main)
    eng.run()
    (s,) = rec.by_category("termination")
    assert s.name == "wave 1" and abs(s.duration - 5e-6) < 1e-12
    (i,) = rec.instants
    assert i.name == "dirty-mark" and i.detail == 3


def test_capacity_drops_spans_but_keeps_stack_consistent():
    eng = Engine(1, max_events=100_000)
    rec = Recorder.attach(eng, capacity=2)

    def main(proc):
        for i in range(5):
            with span(proc, f"s{i}", "task"):
                proc.advance(1e-6)

    eng.spawn_all(main)
    eng.run()
    assert len(rec.spans) == 2
    assert rec.dropped == 3
    assert all(s.end is not None for s in rec.spans)


def test_recorder_attach_is_idempotent():
    eng = Engine(1, max_events=1_000)
    a = Recorder.attach(eng)
    b = Recorder.attach(eng)
    assert a is b
    assert Recorder.of(eng) is a
