"""Fleet failure paths: dead workers, requeues, and the process pool.

These tests cross the real process boundary: a ``crash`` probe
SIGKILLs its own worker mid-job (no reply, no exit handler — the same
signature as an OOM kill or a segfault), and the scheduler must detect
the death via the process sentinel, requeue the job exactly once, and
flag it in ``report.crashed`` after the second death.  Nothing may be
silently dropped, and the surviving jobs must all complete.
"""

from __future__ import annotations

import pytest

from repro.fleet.jobs import Job
from repro.fleet.pool import InlinePool, ProcessPool
from repro.fleet.scheduler import FleetScheduler


def sleep_jobs(n, seconds=0.01):
    return [
        Job(kind="probe", key=f"probe/{i}",
            params={"action": "sleep", "seconds": seconds})
        for i in range(n)
    ]


def crash_job(key="probe/crash"):
    return Job(kind="probe", key=key, params={"action": "crash"})


class TestWorkerCrash:
    def test_sigkilled_job_requeued_once_then_flagged(self):
        jobs = sleep_jobs(4) + [crash_job()]
        report = FleetScheduler(2).run(jobs)
        # The four healthy jobs all completed.
        assert len(report.completed) == 4
        assert {r.key for r in report.completed} == {j.key for j in jobs[:4]}
        # The crash probe was requeued exactly once...
        assert report.requeued_keys == ["probe/crash"]
        # ...then flagged after its second death — never dropped.
        assert len(report.crashed) == 1
        entry = report.crashed[0]
        assert entry["key"] == "probe/crash"
        assert entry["attempts"] == 2
        assert "died" in entry["error"]
        assert report.worker_deaths == 2
        assert report.accounted() == report.jobs_total == 5
        assert not report.ok

    def test_hard_exit_is_also_a_crash(self):
        """os._exit (no traceback, no reply) takes the same path."""
        jobs = sleep_jobs(2) + [
            Job(kind="probe", key="probe/exit", params={"action": "exit"})
        ]
        report = FleetScheduler(2).run(jobs)
        assert len(report.completed) == 2
        assert [c["key"] for c in report.crashed] == ["probe/exit"]
        assert report.accounted() == 3

    def test_raise_is_a_job_error_not_a_crash(self):
        """A Python exception must come back as result.error — the
        worker survives and keeps serving jobs."""
        jobs = sleep_jobs(3) + [
            Job(kind="probe", key="probe/raise",
                params={"action": "raise", "message": "synthetic"})
        ]
        report = FleetScheduler(2).run(jobs)
        assert len(report.completed) == 4
        assert report.worker_deaths == 0
        assert report.crashed == []
        (failed,) = report.failed_results
        assert failed.key == "probe/raise"
        assert "synthetic" in failed.error


class TestPoolBehaviour:
    def test_jobs_exceeding_host_cores_complete(self):
        """--jobs N with N above the core count must degrade, not fail
        (this container has very few cores, so N=4 already oversubscribes)."""
        report = FleetScheduler(4).run(sleep_jobs(8))
        assert report.ok
        assert len(report.completed) == 8

    def test_results_attributed_to_worker_seats(self):
        report = FleetScheduler(2).run(sleep_jobs(6))
        assert {r.worker for r in report.completed} <= {0, 1}

    def test_inline_pool_refuses_crash_probes(self):
        with pytest.raises(ValueError, match="ProcessPool"):
            InlinePool(1).send(0, crash_job())

    def test_process_pool_respawn_guards(self):
        with ProcessPool(1) as pool:
            with pytest.raises(RuntimeError, match="still alive"):
                pool.respawn(0)

    def test_send_to_dead_worker_rejected(self):
        pool = ProcessPool(1)
        try:
            pool.send(0, crash_job())
            # Wait for the sentinel to fire.
            events = []
            for _ in range(100):
                events = pool.poll(0.1)
                if events:
                    break
            assert events and events[0].kind == "crash"
            with pytest.raises(RuntimeError, match="dead"):
                pool.send(0, sleep_jobs(1)[0])
            pool.respawn(0)
            assert pool.pid(0) is not None
        finally:
            pool.close()
