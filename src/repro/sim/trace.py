"""Deprecated re-export shim for :mod:`repro.sim.counters`.

The counter map historically lived in ``repro.sim.trace``, which
collided confusingly with :mod:`repro.sim.tracing` (the structured
event tracer).  The module was renamed to :mod:`repro.sim.counters`;
import :class:`~repro.sim.counters.Counters` from there.  This shim
keeps old imports working for one release and warns.
"""

from __future__ import annotations

import warnings

from repro.sim.counters import Counters

__all__ = ["Counters"]

warnings.warn(
    "repro.sim.trace has been renamed to repro.sim.counters; "
    "update imports to 'from repro.sim.counters import Counters'",
    DeprecationWarning,
    stacklevel=2,
)
