#!/usr/bin/env python3
"""Quickstart: the paper's §4 example — task-parallel blocked matmul.

Mirrors Figure 3 of the paper line by line using the C-style facade
(``tc_create`` / ``tc_register`` / ``tc_add`` / ``tc_process``): all
ranks collectively create global arrays A, B, C and a task collection,
seed one multiply task per owned block triple, and process the
collection to termination with locality-aware work stealing.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.armci.runtime import Armci
from repro.core import AFFINITY_HIGH
from repro.core.capi import (
    tc_add,
    tc_create,
    tc_destroy,
    tc_process,
    tc_register,
    tc_task_body,
    tc_task_create,
    tc_task_reuse,
)
from repro.ga import GlobalArray
from repro.ga.array import GaRuntime
from repro.sim.engine import run_spmd

N = 32  # matrix dimension
NUM_BLOCKS = 4  # blocks per dimension
BS = N // NUM_BLOCKS
CHUNK_SIZE = 2
MAX_TASKS = NUM_BLOCKS**3 + 8


def mm_task_fcn(tc, task):
    """Multiply one block pair and accumulate into C (the paper's callback)."""
    mm = tc_task_body(task)  # (A, B, C handles, i, j, k) — portable refs
    a_h, b_h, c_h, i, j, k = mm
    proc = tc.proc
    arrays = GaRuntime.attach(proc.engine).arrays
    a, b, c = arrays[a_h], arrays[b_h], arrays[c_h]
    a_blk = a.get(proc, (i * BS, k * BS), ((i + 1) * BS, (k + 1) * BS))
    b_blk = b.get(proc, (k * BS, j * BS), ((k + 1) * BS, (j + 1) * BS))
    proc.compute(2.0 * BS**3 * proc.machine.seconds_per_flop)
    c.acc(proc, (i * BS, j * BS), ((i + 1) * BS, (j + 1) * BS), a_blk @ b_blk)


def main(proc, a_mat, b_mat):
    # Initialize Global Arrays: A, B, and C
    a = GlobalArray.create(proc, "A", (N, N))
    b = GlobalArray.create(proc, "B", (N, N))
    c = GlobalArray.create(proc, "C", (N, N))
    lo, hi = a.distribution(proc.rank)
    sl = tuple(slice(x, y) for x, y in zip(lo, hi))
    a.access(proc)[...] = a_mat[sl]
    b.access(proc)[...] = b_mat[sl]
    a.sync(proc)

    tc = tc_create(proc, task_sz=64, chunk_sz=CHUNK_SIZE, max_sz=MAX_TASKS)
    hdl = tc_register(tc, mm_task_fcn)
    task = tc_task_create(body_sz=64, task_handle=hdl)

    def get_owner(i, j, k):
        return a.locate((i * BS, k * BS))

    me = proc.rank
    for i in range(NUM_BLOCKS):
        for j in range(NUM_BLOCKS):
            for k in range(NUM_BLOCKS):
                if get_owner(i, j, k) == me:
                    task.body = (a.gid, b.gid, c.gid, i, j, k)
                    tc_add(tc, me, AFFINITY_HIGH, task)
                    task = tc_task_reuse(task)

    stats = tc_process(tc)
    c.sync(proc)
    result = c.read_full(proc)
    tc_destroy(tc)
    Armci.attach(proc.engine).barrier(proc)
    return (stats.tasks_executed, stats.steals_successful, result)


if __name__ == "__main__":
    rng = np.random.default_rng(1)
    a_mat = rng.standard_normal((N, N))
    b_mat = rng.standard_normal((N, N))

    sim = run_spmd(4, main, a_mat, b_mat, seed=0)

    total_tasks = sum(r[0] for r in sim.returns)
    total_steals = sum(r[1] for r in sim.returns)
    c_mat = sim.returns[0][2]
    ok = np.allclose(c_mat, a_mat @ b_mat, atol=1e-10)
    print(f"blocked matmul on 4 simulated ranks: {total_tasks} tasks "
          f"({NUM_BLOCKS**3} expected), {total_steals} steals")
    print(f"virtual time: {sim.elapsed * 1e6:.1f} us")
    print(f"result matches numpy: {ok}")
    assert ok and total_tasks == NUM_BLOCKS**3
