"""Coz-style what-if projection over the causal graph.

Answering "what if steals were twice as fast?" by scaling the steal
histograms and re-summing per-rank totals is wrong in exactly the way
causal profiling exists to fix: most of a category's time is usually
*off* the critical path, and shrinking it there changes nothing.  The
honest version re-schedules the happens-before DAG
(:class:`repro.obs.critpath.CausalGraph`): every cut point's new time
is the max over its dependencies — the previous point on its own rank
plus its (scaled) local segment, and every incoming cross-rank edge's
source plus the edge's (scaled) latency.  The projected makespan is the
latest re-scheduled point.

Two modelling choices, both conservative and both documented in
``docs/observability.md``:

* **Elastic waits.**  A segment that ends at an incoming edge and was
  mostly waiting (idle/lock blame above the same threshold the
  critical-path walk uses) contributes only its non-wait blame locally;
  the wait was slack created by the dependency and stretches or
  shrinks with it.  Segments not released by an edge keep their full
  duration — we cannot know that their idle was caused by anything we
  model, so we refuse to shrink it.
* **Spawn edges order, they do not delay.**  A task's time sitting in a
  queue is scheduler slack, not work; spawn edges therefore project
  with zero latency and only constrain ordering.

With every scale factor at 1.0 the projection reproduces the measured
makespan exactly (each point's measured time is already the max of its
dependencies); with all factors ≤ 1.0 it is monotonically ≤ measured,
which is the sanity property ``repro.obs whatif`` is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from repro.obs.critpath import BLAME_CATEGORIES, CausalGraph, edge_blame

__all__ = ["Projection", "project", "parse_scales", "render_projection"]

#: Blame categories treated as elastic wait (see module docstring).
_WAIT_BLAME = frozenset({"idle", "lock"})


@dataclass
class Projection:
    """Result of re-scheduling the graph under a set of scale factors."""

    scales: dict[str, float]
    measured_makespan: float
    projected_makespan: float
    #: (rank, point-index) -> projected time, for inspection/tests
    times: dict[tuple[int, int], float]

    @property
    def speedup(self) -> float:
        """Measured / projected (1.0 = no change, >1 = faster)."""
        if self.projected_makespan <= 0.0:
            return float("inf") if self.measured_makespan > 0.0 else 1.0
        return self.measured_makespan / self.projected_makespan

    @property
    def saved(self) -> float:
        return self.measured_makespan - self.projected_makespan


def parse_scales(specs: list[str]) -> dict[str, float]:
    """Parse ``category=factor`` CLI arguments into a scales dict."""
    scales: dict[str, float] = {}
    for spec in specs:
        cat, sep, raw = spec.partition("=")
        if not sep:
            raise ValueError(f"bad --scale {spec!r}: expected category=factor")
        if cat not in BLAME_CATEGORIES:
            raise ValueError(
                f"unknown blame category {cat!r}; choose from {BLAME_CATEGORIES}"
            )
        factor = float(raw)
        if factor < 0.0:
            raise ValueError(f"--scale factor must be >= 0, got {factor}")
        scales[cat] = factor
    return scales


def _segment_cost(
    graph: CausalGraph,
    rank: int,
    seg: int,
    scales: dict[str, float],
    elastic: bool,
) -> float:
    blame = graph.segments[rank][seg]
    cost = 0.0
    for cat, d in blame.items():
        if elastic and cat in _WAIT_BLAME:
            continue  # slack behind the releasing edge, not imposed work
        cost += d * scales.get(cat, 1.0)
    return cost


def _edge_cost(edge, scales: dict[str, float]) -> float:
    if edge.kind == "spawn":
        return 0.0  # ordering-only: queue-sit time is slack (module docstring)
    return edge.latency * scales.get(edge_blame(edge), 1.0)


def project(
    graph: CausalGraph,
    scales: dict[str, float],
    wait_threshold: float = 0.5,
) -> Projection:
    """Re-schedule the graph with per-category scale factors applied."""
    # Node (rank, idx) for every cut point; program-order and cross-rank
    # dependencies share one adjacency list of (dst, cost) resolved to
    # node ids up front, so the Kahn loop is dict lookups only.
    indeg: dict[tuple[int, int], int] = {}
    out: dict[tuple[int, int], list[tuple[tuple[int, int], float]]] = {}
    measured: dict[tuple[int, int], float] = {}
    for r in range(graph.nprocs):
        for i, t in enumerate(graph.points[r]):
            node = (r, i)
            measured[node] = t
            indeg[node] = 0 if i == 0 else 1
            if i > 0:
                elastic = (
                    bool(graph.edges_in.get((r, t)))
                    and graph.wait_fraction(r, i - 1) > wait_threshold
                # Past the rank's last activity its timeline is pure
                # window padding — slack, not a constraint.
                ) or graph.points[r][i - 1] >= graph.rank_ends[r]
                cost = _segment_cost(graph, r, i - 1, scales, elastic)
                out.setdefault((r, i - 1), []).append((node, cost))
    for (r, t), edges in graph.edges_in.items():
        dst = (r, graph.point_index(r, t))
        for e in edges:
            src = (e.src_rank, graph.point_index(e.src_rank, e.src_time))
            if src == dst:
                continue  # degenerate zero-latency self-edge
            out.setdefault(src, []).append((dst, _edge_cost(e, scales)))
            indeg[dst] += 1

    times: dict[tuple[int, int], float] = {}
    # Ready heap keyed by measured time (then rank/idx): deterministic
    # order, and measured time is a valid topological key because every
    # dependency's measured time is <= its dependent's.
    ready: list[tuple[float, int, int]] = []
    for node, d in indeg.items():
        if d == 0:
            heappush(ready, (measured[node], node[0], node[1]))
            times[node] = graph.t0

    def settle(node: tuple[int, int]) -> None:
        t = times.setdefault(node, graph.t0)
        for dst, cost in out.get(node, ()):
            arrive = t + cost
            if arrive > times.get(dst, graph.t0):
                times[dst] = arrive
            indeg[dst] -= 1
            if indeg[dst] == 0:
                heappush(ready, (measured[dst], dst[0], dst[1]))

    done = 0
    while ready:
        _, r, i = heappop(ready)
        settle((r, i))
        done += 1
    if done < len(indeg):  # pragma: no cover - defensive (needs an HB cycle)
        # Zero-latency edge pairs could in principle tie into a cycle;
        # fall back to measured-time order, which is causally consistent.
        rest = sorted(
            (n for n, d in indeg.items() if d > 0),
            key=lambda n: (measured[n], n[0], n[1]),
        )
        for node in rest:
            settle(node)

    projected = max(times.values(), default=graph.t0) - graph.t0
    return Projection(
        scales=dict(scales),
        measured_makespan=graph.makespan,
        projected_makespan=projected,
        times=times,
    )


def render_projection(proj: Projection) -> str:
    """One-screen report of a projection."""
    scaled = ", ".join(
        f"{cat}×{f:g}" for cat, f in sorted(proj.scales.items())
    ) or "(no scaling)"
    lines = [
        f"what-if: {scaled}",
        f"  measured makespan : {proj.measured_makespan * 1e6:12.3f} us",
        f"  projected makespan: {proj.projected_makespan * 1e6:12.3f} us",
        f"  projected speedup : {proj.speedup:12.4f}x"
        f"  ({proj.saved * 1e6:+.3f} us saved)",
    ]
    return "\n".join(lines)
