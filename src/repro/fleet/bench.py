"""Fleet scaling trajectory: schedules/sec at jobs = 1, 2, 4.

``python -m repro.fleet bench`` runs the same exploration campaign —
the full ``repro.check`` scenario matrix under the random-walk
strategy — at several worker counts and records how schedule
throughput scales, in ``BENCH_fleet.json`` (schema
``repro-bench-fleet/1``) at the repo root, validated like the other
two committed trajectories (``BENCH_sim.json``, ``BENCH_wall.json``)
and understood by ``python -m repro.obs diff``.

Two properties are recorded per entry and checked by the validator:

* throughput is positive, and every entry carries the host core count
  — scaling claims are meaningless without it (a 1-core container
  cannot speed up CPU-bound work no matter how many workers it runs);
* the ``failing_digest`` — the content hash of the deduplicated
  failing-schedule set — is **identical across all entries**: changing
  ``--jobs`` may change the wall clock, never the result.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any

from repro.fleet.jobs import explore_jobs
from repro.fleet.results import failing_set_digest, merge_explore
from repro.fleet.scheduler import FleetScheduler
from repro.util.io import atomic_write_text

__all__ = [
    "FLEET_SCHEMA",
    "DEFAULT_JOBS_LEVELS",
    "run_fleet_bench",
    "write_fleet_json",
    "validate_fleet_json",
]

#: Schema tag stamped into every ``BENCH_fleet.json`` document.
FLEET_SCHEMA = "repro-bench-fleet/1"

#: Worker counts the committed trajectory measures.
DEFAULT_JOBS_LEVELS = (1, 2, 4)

#: Default campaign: every check scenario, this many schedules each.
DEFAULT_SCHEDULES = 40


def _host_info() -> dict[str, Any]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def run_fleet_bench(
    jobs_levels: tuple[int, ...] = DEFAULT_JOBS_LEVELS,
    targets: list[str] | None = None,
    schedules: int = DEFAULT_SCHEDULES,
    strategy: str = "random",
    seed: int = 0,
    verbose: bool = True,
) -> dict[str, Any]:
    """Measure the campaign at every jobs level; return the record doc."""
    if targets is None:
        from repro.check.scenarios import SCENARIOS

        targets = sorted(SCENARIOS)
    entries = []
    for nworkers in jobs_levels:
        jobs = explore_jobs(
            targets, schedules, strategy=strategy, seed=seed, nworkers=nworkers
        )
        sched = FleetScheduler(nworkers)
        # Sanctioned wall-clock site: host throughput is the measurement.
        t0 = time.perf_counter()  # repro: lint-disable=RPR002
        report = sched.run(jobs)
        wall = time.perf_counter() - t0  # repro: lint-disable=RPR002
        summary = merge_explore(report.completed)
        entry = {
            "jobs": nworkers,
            "scenarios": list(targets),
            "strategy": strategy,
            "seed": seed,
            "schedules": summary.schedules_run,
            "events": summary.events_total,
            "wall_s": wall,
            "schedules_per_sec": summary.schedules_run / wall if wall > 0 else 0.0,
            "steals": report.steals,
            "jobs_stolen": report.jobs_stolen,
            "waves": report.waves,
            "requeues": len(report.requeued_keys),
            "failures": len(summary.failures),
            "failing_digest": failing_set_digest(summary),
        }
        entries.append(entry)
        if verbose:
            print(
                f"  jobs={nworkers}  {entry['schedules']:>5} schedules  "
                f"{entry['wall_s']:7.2f}s  "
                f"{entry['schedules_per_sec']:8.1f} sched/s  "
                f"steals={entry['steals']}  waves={entry['waves']}"
            )
    base = entries[0]["schedules_per_sec"]
    for entry in entries:
        entry["speedup"] = entry["schedules_per_sec"] / base if base > 0 else 0.0
    return {"schema": FLEET_SCHEMA, "host": _host_info(), "entries": entries}


def write_fleet_json(doc: dict, path: str | Path) -> Path:
    """Validate and atomically write the fleet record."""
    validate_fleet_json(doc)
    return atomic_write_text(Path(path), json.dumps(doc, indent=2) + "\n")


def validate_fleet_json(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid fleet record.

    Checked: the schema tag, host core count, per-entry jobs /
    schedules / positive throughput, and — the determinism guarantee —
    that every entry's ``failing_digest`` is identical: the dedup'd
    failing-schedule set must not depend on the worker count.
    """
    if doc.get("schema") != FLEET_SCHEMA:
        raise ValueError(f"bad schema tag {doc.get('schema')!r}; want {FLEET_SCHEMA!r}")
    if not isinstance(doc.get("host", {}).get("cpus"), int):
        raise ValueError("host.cpus missing: scaling entries need the core count")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ValueError("entries must be a non-empty list")
    digests = set()
    for e in entries:
        where = f"jobs={e.get('jobs')!r}"
        if not isinstance(e.get("jobs"), int) or e["jobs"] < 1:
            raise ValueError(f"{where}: bad jobs count")
        if not isinstance(e.get("schedules"), int) or e["schedules"] <= 0:
            raise ValueError(f"{where}: bad schedules {e.get('schedules')!r}")
        sps = e.get("schedules_per_sec")
        if not isinstance(sps, (int, float)) or sps <= 0:
            raise ValueError(f"{where}: bad schedules_per_sec {sps!r}")
        if not isinstance(e.get("failing_digest"), str) or not e["failing_digest"]:
            raise ValueError(f"{where}: missing failing_digest")
        digests.add(e["failing_digest"])
    if len(digests) != 1:
        raise ValueError(
            f"failing_digest differs across jobs levels ({len(digests)} distinct): "
            "the explored failure set must be independent of --jobs"
        )
