"""Predictive concurrency analysis (``repro.analyze.predict``).

Three layers of coverage:

* fixture tests drive each pass (lockset, weakened happens-before,
  steal/mark obligation, lock-order graph) with hand-built traces;
* pinned regressions assert the headline property — the seeded §5.3
  and lock-order bugs are predicted AND confirmed from one benign
  default-schedule trace;
* false-positive guards assert zero predictions on every clean check
  scenario and on the application presets (UTS, SCF, TCE).
"""

from __future__ import annotations

import pytest

from repro.analyze.capture import TraceEvent
from repro.analyze.lockgraph import deadlock_pass
from repro.analyze.lockset import lockset_pass
from repro.analyze.predict import (
    analyze_trace,
    capture_trace,
    find_mark_window,
    obligation_pass,
    predict,
    weakened_hb_pass,
)
from repro.analyze.race import RaceDetector
from repro.check.scenarios import SCENARIOS


def _trace(*specs):
    """Build a trace from (kind, rank, held, data) tuples; seq = index."""
    return [
        TraceEvent(
            kind=kind, rank=rank, idx=i, seq=i, time=float(i),
            held=tuple(held), data=dict(data),
        )
        for i, (kind, rank, held, data) in enumerate(specs)
    ]


def _access(rank, region, op, site, held=()):
    return ("access", rank, held, {"region": region, "op": op, "site": site})


class TestLocksetPass:
    def test_flags_empty_intersection_with_writer(self):
        events = _trace(
            _access(0, "shared", "w", "a.py:1", held=("m1",)),
            _access(1, "shared", "w", "b.py:2", held=("m2",)),
        )
        findings = lockset_pass(events)
        assert len(findings) == 1
        f = findings[0]
        assert f.region == "shared"
        assert set(f.sites) == {"a.py:1", "b.py:2"}
        assert f.ranks == (0, 1)

    def test_quiet_with_common_lock(self):
        events = _trace(
            _access(0, "shared", "w", "a.py:1", held=("m", "x")),
            _access(1, "shared", "w", "b.py:2", held=("m",)),
        )
        assert lockset_pass(events) == []

    def test_undisciplined_region_left_to_hb_tiers(self):
        # Never touched under any lock: protocol-synchronized by
        # construction here; lockset stays silent.
        events = _trace(
            _access(0, "flagish", "w", "a.py:1"),
            _access(1, "flagish", "w", "b.py:2"),
        )
        assert lockset_pass(events) == []

    def test_read_only_sharing_is_fine(self):
        events = _trace(
            _access(0, "shared", "r", "a.py:1", held=("m1",)),
            _access(1, "shared", "r", "b.py:2", held=("m2",)),
        )
        assert lockset_pass(events) == []

    def test_serialized_atomics_excluded(self):
        events = _trace(
            _access(0, "cell", "a", "a.py:1", held=("rmw[1]",)),
            _access(1, "cell", "a", "b.py:2", held=("rmw[1]",)),
        )
        assert lockset_pass(events) == []


class TestWeakenedHbPass:
    def test_flags_unordered_cross_rank_writes(self):
        events = _trace(
            _access(0, "q", "w", "a.py:1"),
            _access(1, "q", "w", "b.py:2"),
        )
        findings = weakened_hb_pass(events, nprocs=2)
        assert len(findings) == 1
        assert findings[0].ranks == (0, 1)

    def test_collective_is_a_must_edge(self):
        events = _trace(
            _access(0, "q", "w", "a.py:1"),
            ("collective", 0, (), {"ranks": (0, 1)}),
            ("collective", 1, (), {"ranks": (0, 1)}),
            _access(1, "q", "w", "b.py:2"),
        )
        assert weakened_hb_pass(events, nprocs=2) == []

    def test_message_delivery_is_a_must_edge(self):
        events = _trace(
            _access(0, "q", "w", "a.py:1"),
            ("post", 0, (), {"target": 1, "tag": "work"}),
            ("poll", 1, (), {"tag": "work"}),
            _access(1, "q", "w", "b.py:2"),
        )
        assert weakened_hb_pass(events, nprocs=2) == []

    def test_common_lock_excludes_conflict(self):
        # Lock release→acquire is a *dropped* edge, but mutual
        # exclusion itself still protects lock-bracketed accesses.
        events = _trace(
            _access(0, "q", "w", "a.py:1", held=("m",)),
            _access(1, "q", "w", "b.py:2", held=("m",)),
        )
        assert weakened_hb_pass(events, nprocs=2) == []

    def test_rmw_chain_is_a_must_edge(self):
        events = _trace(
            _access(0, "q", "w", "a.py:1"),
            ("rmw-done", 0, (), {"target": 2}),
            ("rmw", 1, (), {"target": 2}),
            _access(1, "q", "w", "b.py:2"),
        )
        assert weakened_hb_pass(events, nprocs=2) == []

    def test_dedup_by_site_pair(self):
        events = _trace(
            _access(0, "q", "w", "a.py:1"),
            _access(1, "q", "w", "b.py:2"),
            _access(0, "q", "w", "a.py:1"),
            _access(1, "q", "w", "b.py:2"),
        )
        assert len(weakened_hb_pass(events, nprocs=2)) == 1


class TestObligationPass:
    WAVE = ("protocol", 0, (), {"what": "wave-start"})

    def test_no_termination_protocol_no_obligation(self):
        events = _trace(
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
        )
        assert obligation_pass(events) == []

    def test_flags_unattested_transfer(self):
        events = _trace(
            self.WAVE,
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
        )
        findings = obligation_pass(events)
        assert len(findings) == 1
        assert (findings[0].thief, findings[0].victim) == (2, 1)
        assert findings[0].mode == "unattested"

    def test_quiet_when_transfer_carries_mark_decision(self):
        events = _trace(
            self.WAVE,
            ("protocol", 2, (), {"what": "mark-decision", "victim": 1}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
        )
        assert obligation_pass(events) == []

    def test_decisions_consumed_once(self):
        # One decision cannot attest two transfers from the same casting.
        events = _trace(
            self.WAVE,
            ("protocol", 2, (), {"what": "mark-decision", "victim": 1}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
        )
        findings = obligation_pass(events)
        assert len(findings) == 1
        assert findings[0].count == 1


class TestDeadlockPass:
    def test_flags_cross_rank_inverted_order(self):
        events = _trace(
            ("acquire", 1, (), {"mutex": "A"}),
            ("acquire", 1, ("A",), {"mutex": "B"}),
            ("acquire", 2, (), {"mutex": "B"}),
            ("acquire", 2, ("B",), {"mutex": "A"}),
        )
        findings = deadlock_pass(events)
        assert len(findings) == 1
        assert set(findings[0].cycle) == {"A", "B"}

    def test_gate_lock_pruning(self):
        # Every hop taken under one common gate lock G: the cycle can
        # never be realized concurrently.
        events = _trace(
            ("acquire", 1, ("G",), {"mutex": "A"}),
            ("acquire", 1, ("G", "A"), {"mutex": "B"}),
            ("acquire", 2, ("G",), {"mutex": "B"}),
            ("acquire", 2, ("G", "B"), {"mutex": "A"}),
        )
        assert deadlock_pass(events) == []

    def test_single_rank_pruning(self):
        events = _trace(
            ("acquire", 1, (), {"mutex": "A"}),
            ("acquire", 1, ("A",), {"mutex": "B"}),
            ("acquire", 1, (), {"mutex": "B"}),
            ("acquire", 1, ("B",), {"mutex": "A"}),
        )
        assert deadlock_pass(events) == []


class TestMarkWindow:
    def test_window_found_when_white_vote_precedes_mark(self):
        events = _trace(
            ("protocol", 2, (), {"what": "vote", "color": 0}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
            ("protocol", 1, (), {"what": "vote", "color": 0}),
        )
        window = find_mark_window(events)
        assert window is not None
        assert (window["thief"], window["victim"]) == (2, 1)
        assert window["mark_seq"] is None

    def test_mark_landing_first_closes_window(self):
        events = _trace(
            ("protocol", 2, (), {"what": "vote", "color": 0}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
            ("flag-write", 2, (), {"region": "color", "target": 1}),
            ("protocol", 1, (), {"what": "vote", "color": 0}),
        )
        assert find_mark_window(events) is None

    def test_black_vote_self_heals(self):
        events = _trace(
            ("protocol", 2, (), {"what": "vote", "color": 0}),
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
            ("protocol", 1, (), {"what": "vote", "color": 1}),
        )
        assert find_mark_window(events) is None

    def test_descendant_victim_exempt(self):
        # Rank 3 is a spanning-tree descendant of rank 1: it votes
        # before the thief by construction (legitimate §5.3 elision).
        events = _trace(
            ("protocol", 1, (), {"what": "vote", "color": 0}),
            ("protocol", 1, (), {"what": "steal-transfer", "victim": 3}),
            ("protocol", 3, (), {"what": "vote", "color": 0}),
        )
        assert find_mark_window(events) is None

    def test_unvoted_thief_carries_no_obligation(self):
        events = _trace(
            ("protocol", 2, (), {"what": "steal-transfer", "victim": 1}),
            ("protocol", 1, (), {"what": "vote", "color": 0}),
        )
        assert find_mark_window(events) is None


class TestPinnedRegressions:
    """The headline acceptance paths, pinned.

    Each seeded bug must be predicted AND confirmed from a single
    benign default-schedule trace — schedules on which the
    observed-schedule detector reports nothing.
    """

    def test_late_dirty_mark_predicted_and_confirmed(self, tmp_path):
        report = predict(
            "steals", mutation="late_dirty_mark", out_dir=tmp_path
        )
        assert report.base_error is None  # the base run is benign
        kinds = {p.kind: p for p in report.predictions}
        assert "steal-after-vote" in kinds
        p = kinds["steal-after-vote"]
        assert p.status == "CONFIRMED"
        assert "mark-after-vote-window" in p.confirmed_how
        assert p.trace_path is not None
        assert (tmp_path / p.trace_path.rsplit("/", 1)[-1]).exists()
        assert p.replay_ok is True

    def test_lock_order_inversion_confirmed_as_deadlock(self, tmp_path):
        report = predict(
            "steals", mutation="lock_order_inversion", out_dir=tmp_path
        )
        assert report.base_error is not None
        assert report.base_error.startswith("PredictedDeadlockError")
        deadlocks = [p for p in report.predictions if p.kind == "deadlock"]
        assert deadlocks and deadlocks[0].status == "CONFIRMED"
        assert deadlocks[0].confirmed_how == "deadlock-cycle-closed"
        assert deadlocks[0].replay_ok is True

    def test_unlocked_split_confirmed_as_data_race(self, tmp_path):
        report = predict(
            "queue", mutation="unlocked_split", out_dir=tmp_path
        )
        races = [p for p in report.predictions if p.kind == "data-race"]
        assert races
        confirmed = [p for p in races if p.status == "CONFIRMED"]
        assert confirmed
        assert confirmed[0].confirmed_how == "observed-race-replay"
        # The lockset and weak-hb tiers corroborate the same defect.
        assert "lockset" in confirmed[0].tiers or "weak-hb" in confirmed[0].tiers


class TestFalsePositiveGuards:
    @pytest.mark.parametrize("target", sorted(SCENARIOS))
    def test_clean_scenarios_yield_no_predictions(self, target):
        run = capture_trace(target)
        assert run.error is None
        assert run.observed_races == 0
        assert analyze_trace(run.events, run.nprocs) == []

    @pytest.mark.parametrize("app", ["uts", "scf", "tce"])
    def test_application_presets_yield_no_predictions(self, app):
        holder = {}

        def hook(engine):
            holder["det"] = RaceDetector.attach(engine, capture=True)
            holder["nprocs"] = engine.nprocs

        if app == "uts":
            from repro.apps.uts.presets import preset
            from repro.apps.uts.scioto_uts import run_uts_scioto

            run_uts_scioto(3, preset("tiny"), seed=0, engine_hook=hook)
        elif app == "scf":
            from repro.apps.scf.parallel import run_scf_scioto
            from repro.apps.scf.problem import SCFProblem

            run_scf_scioto(
                3, SCFProblem(nblocks=8, blocksize=4, decay=0.9),
                iterations=2, seed=0, engine_hook=hook,
            )
        else:
            from repro.apps.tce.parallel import run_tce_scioto
            from repro.apps.tce.problem import TCEProblem

            run_tce_scioto(
                3, TCEProblem(nblocks=6, blocksize=8, density=0.4, seed=3),
                seed=0, engine_hook=hook,
            )
        det = holder["det"]
        assert det.races == []
        assert analyze_trace(det.capture.events, holder["nprocs"]) == []


class TestFleetIntegration:
    def test_predict_job_roundtrip(self):
        from repro.fleet.jobs import Job, execute_job, predict_jobs

        jobs = predict_jobs(["queue"], mutation="unlocked_split",
                            confirm=False)
        assert [j.key for j in jobs] == ["predict/queue/unlocked_split"]
        result = execute_job(jobs[0])
        assert result.ok, result.error
        assert result.payload["target"] == "queue"
        assert result.payload["predictions"] >= 1
        assert "data-race" in result.payload["kinds"]
        assert "PREDICTED" in result.payload["text"]
        # Payloads must stay picklable primitives for the fleet wire.
        import pickle

        pickle.dumps(result)

    def test_cli_exit_codes(self, capsys):
        from repro.analyze.__main__ import main

        assert main(["predict", "--target", "queue", "--no-confirm"]) == 0
        capsys.readouterr()
        assert main([
            "predict", "--target", "queue", "--mutate", "unlocked_split",
            "--no-confirm",
        ]) == 1
        assert "PREDICTED" in capsys.readouterr().out


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
