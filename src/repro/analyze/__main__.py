"""Static and dynamic analysis for the Scioto runtime reproduction.

Subcommands:

* ``race`` — run check scenarios with the vector-clock race detector
  attached and report every conflicting, happens-before-unordered
  access pair.  Deterministic: one run per scenario suffices (see
  ``docs/analyze.md``).  Reports are deduplicated by (site pair,
  region class) with instance counts; ``--all`` lists every instance.
  Exits 1 if any race was found.
* ``predict`` — predictive concurrency analysis: capture one
  default-schedule trace per scenario and report bugs feasible in
  *other* interleavings (lockset, weakened happens-before, §5.3
  steal/mark obligations, lock-order graph).  Each prediction is then
  confirmed by steering a witness replay toward the reordering
  (``--no-confirm`` skips that stage).  Exits 1 if anything was
  predicted.
* ``lint`` — run the RPR rule suite over source trees.  Exits 1 if
  any finding survives suppression comments.

Examples::

    python -m repro.analyze race
    python -m repro.analyze race --target queue --mutate unlocked_split --all
    python -m repro.analyze predict
    python -m repro.analyze predict --target steals --mutate late_dirty_mark
    python -m repro.analyze predict --jobs 4 --mutate lock_order_inversion
    python -m repro.analyze lint src/repro
    python -m repro.analyze lint --rule RPR002 src tests
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.lint import RULES, lint_paths
from repro.analyze.race import dedupe_races
from repro.analyze.runner import run_race_detection
from repro.check.mutations import MUTATIONS
from repro.check.scenarios import SCENARIOS


def _cmd_race(args: argparse.Namespace) -> int:
    targets = sorted(SCENARIOS) if args.target == "all" else [args.target]
    mutation = None if args.mutate == "none" else args.mutate
    total = 0
    for target in targets:
        res = run_race_detection(
            target, mutation=mutation, engine_seed=args.engine_seed
        )
        status = f"{len(res.races)} race(s)" if res.racy else "clean"
        print(
            f"{target}: {status} "
            f"({res.accesses} shared accesses, {res.events} events"
            + (f", run ended with {res.error}" if res.error else "")
            + ")"
        )
        if res.racy:
            if args.all:
                for line in res.report.splitlines()[1:]:
                    print(line)
            else:
                groups = dedupe_races(res.races)
                for i, g in enumerate(groups):
                    print(f"  #{i + 1} {g.describe()}")
        total += len(res.races)
    print(f"\ntotal: {total} race(s) across {len(targets)} scenario(s)"
          + (f" [mutation: {mutation}]" if mutation else ""))
    return 1 if total else 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.analyze.predict import predict

    targets = sorted(SCENARIOS) if args.target == "all" else [args.target]
    mutation = None if args.mutate == "none" else args.mutate
    confirm = not args.no_confirm
    total = confirmed = 0
    if args.jobs > 1:
        from repro.fleet.jobs import predict_jobs
        from repro.fleet.scheduler import FleetScheduler

        jobs = predict_jobs(
            targets, mutation=mutation, engine_seed=args.engine_seed,
            confirm=confirm, out_dir=args.out,
        )
        fleet_report = FleetScheduler(nworkers=args.jobs).run(jobs)
        for res in sorted(fleet_report.completed, key=lambda r: r.key):
            if not res.ok:
                print(f"{res.key}: job error: {res.error}")
                total += 1  # a failed analysis is not a clean bill
                continue
            print(res.payload["text"])
            print()
            total += res.payload["predictions"]
            confirmed += res.payload["confirmed"]
        if not fleet_report.ok:
            total += len(fleet_report.crashed)
            for crashed in fleet_report.crashed:
                print(f"{crashed.get('key', '?')}: worker crashed")
    else:
        for t in targets:
            report = predict(
                t, mutation=mutation, engine_seed=args.engine_seed,
                confirm=confirm, out_dir=args.out,
            )
            print(report.describe())
            print()
            total += len(report.predictions)
            confirmed += report.confirmed
    print(
        f"total: {total} prediction(s) ({confirmed} confirmed) across "
        f"{len(targets)} scenario(s)"
        + (f" [mutation: {mutation}]" if mutation else "")
    )
    return 1 if total else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    rules = args.rule if args.rule else None
    findings, nfiles = lint_paths(args.paths, rules=rules)
    for f in findings:
        print(f)
    checked = ", ".join(sorted(rules)) if rules else f"{len(RULES)} rules"
    print(f"{len(findings)} finding(s) in {nfiles} file(s) [{checked}]")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.analyze", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_race = sub.add_parser("race", help="vector-clock race detection")
    p_race.add_argument(
        "--target",
        choices=["all", *sorted(SCENARIOS)],
        default="all",
        help="scenario to run (default: all)",
    )
    p_race.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default="none",
        help="apply an intentional protocol bug first",
    )
    p_race.add_argument("--engine-seed", type=int, default=0)
    p_race.add_argument(
        "--all",
        action="store_true",
        help="list every race instance instead of deduplicated groups",
    )
    p_race.set_defaults(fn=_cmd_race)

    p_pred = sub.add_parser(
        "predict", help="predictive analysis with witness confirmation"
    )
    p_pred.add_argument(
        "--target",
        choices=["all", *sorted(SCENARIOS)],
        default="all",
        help="scenario to run (default: all)",
    )
    p_pred.add_argument(
        "--mutate",
        choices=sorted(MUTATIONS),
        default="none",
        help="apply an intentional protocol bug first",
    )
    p_pred.add_argument("--engine-seed", type=int, default=0)
    p_pred.add_argument(
        "--no-confirm",
        action="store_true",
        help="report predictions without witness-replay confirmation",
    )
    p_pred.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run scenarios in parallel worker processes (repro.fleet)",
    )
    p_pred.add_argument(
        "--out",
        default="scioto-check",
        help="directory for confirmed witness traces (default: scioto-check)",
    )
    p_pred.set_defaults(fn=_cmd_predict)

    p_lint = sub.add_parser("lint", help="static RPR rule suite")
    p_lint.add_argument("paths", nargs="+", help="files or directories to lint")
    p_lint.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable)",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
