"""The RPR lint rules.

Each rule is a function ``(tree, source) -> [(line, message)]``
registered with :func:`repro.analyze.lint.register_rule`.  The rules
are name/shape heuristics (no type inference); see ``docs/analyze.md``
for the discipline each one enforces and its known blind spots.
"""

from __future__ import annotations

import ast
import re

from repro.analyze.lint import register_rule

# --------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------- #


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``a.b.c`` -> "a.b.c")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _functions(tree: ast.Module):
    """Every function/lambda in the module, with its parent function."""
    out = []

    def walk(node: ast.AST, parent) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                out.append((child, node if isinstance(node, _FUNCS) else parent))
                walk(child, child)
            else:
                walk(child, parent)

    _FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
    walk(tree, None)
    return out


def _own_statements(fn: ast.AST):
    """Walk a function's body, not descending into nested functions."""
    stack = list(getattr(fn, "body", []) if not isinstance(fn, ast.Lambda) else [fn.body])
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _calls(nodes) -> list[ast.Call]:
    return [n for n in nodes if isinstance(n, ast.Call)]


def _loaded_names(fn: ast.AST) -> set[str]:
    """Names read anywhere in ``fn`` (including nested scopes)."""
    return {
        n.id
        for n in ast.walk(fn)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _bound_names(fn: ast.AST) -> set[str]:
    """Parameters and names assigned within ``fn`` itself."""
    bound: set[str] = set()
    args = fn.args
    for a in list(args.args) + list(args.posonlyargs) + list(args.kwonlyargs):
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return bound


# --------------------------------------------------------------------- #
# RPR001 — shared-queue mutation outside a lock scope
# --------------------------------------------------------------------- #

_SHARED_FIELD = "_shared"
_MUTATORS = {"append", "extend", "insert", "pop", "remove", "clear", "sort", "popleft"}


def _is_shared_attr(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == _SHARED_FIELD


def _shared_mutations(fn: ast.AST) -> list[int]:
    """Lines in ``fn`` (own scope only) that mutate a ``_shared`` field."""
    lines = []
    for node in _own_statements(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if _is_shared_attr(t):
                    lines.append(node.lineno)
                elif isinstance(t, ast.Subscript) and _is_shared_attr(t.value):
                    lines.append(node.lineno)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and _is_shared_attr(t.value):
                    lines.append(node.lineno)
        elif isinstance(node, ast.Call):
            f = node.func
            if (
                isinstance(f, ast.Attribute)
                and f.attr in _MUTATORS
                and _is_shared_attr(f.value)
            ):
                lines.append(node.lineno)
    return lines


@register_rule("RPR001", "shared-queue field mutated outside a lock scope")
def rpr001(tree: ast.Module, source: str):
    # Names passed as arguments to any call: a nested def handed to a
    # runner (armci apply closures, _owner_split_update move functions)
    # executes at that runner's serialization point.
    arg_names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for a in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(a, ast.Name):
                    arg_names.add(a.id)
    findings = []
    for fn, _parent in _functions(tree):
        name = getattr(fn, "name", "<lambda>")
        if name == "__init__":
            continue  # construction precedes sharing
        if name in arg_names or isinstance(fn, ast.Lambda):
            continue  # closure handed to a serializing runner
        muts = _shared_mutations(fn)
        if not muts:
            continue
        acquires = [
            c.lineno
            for c in _calls(_own_statements(fn))
            if isinstance(c.func, ast.Attribute)
            and c.func.attr in ("acquire", "co_acquire")
        ]
        for line in muts:
            if not any(a <= line for a in acquires):
                findings.append(
                    (
                        line,
                        f"`{name}` mutates a `_shared` queue field with no "
                        "preceding lock acquire in scope",
                    )
                )
    return findings


# --------------------------------------------------------------------- #
# RPR002 — wall-clock time / unseeded randomness
# --------------------------------------------------------------------- #

_WALL_CLOCK = {
    "time.time",
    "time.perf_counter",
    "time.monotonic",
    "time.process_time",
}
_DATETIME_NOW = {"datetime.now", "datetime.datetime.now", "datetime.utcnow",
                 "datetime.datetime.utcnow", "date.today", "datetime.date.today"}


@register_rule("RPR002", "wall-clock time or unseeded randomness")
def rpr002(tree: ast.Module, source: str):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted(node.func)
        if name in _WALL_CLOCK:
            findings.append(
                (node.lineno, f"`{name}()` reads the wall clock; simulated "
                 "code must use virtual time (`proc.now`)")
            )
        elif name in _DATETIME_NOW and not node.args and not node.keywords:
            findings.append(
                (node.lineno, f"`{name}()` reads the wall clock; simulated "
                 "code must use virtual time (`proc.now`)")
            )
        elif name.startswith("random.") and name != "random.Random":
            findings.append(
                (node.lineno, f"`{name}()` draws from the global unseeded RNG; "
                 "use the engine-seeded `proc.rng`")
            )
    return findings


# --------------------------------------------------------------------- #
# RPR003 — poll loop without an engine yield
# --------------------------------------------------------------------- #

_POLLY = re.compile(r"(done|dirty|ready|pending|empty|flag|mailbox|poll|busy)", re.I)

#: Calls known *not* to advance virtual time: cheap probes and builtins.
#: Any call outside this set is presumed to yield (helpers like a
#: scheduler's ``_service`` advance time internally), so the rule only
#: fires on loops that provably spin without the engine ever running.
_KNOWN_NONYIELDING = {
    "mailbox_empty", "empty_fast", "locked", "size", "shared_size",
    "private_size",
    "len", "min", "max", "abs", "sum", "range", "int", "float", "bool",
    "sorted", "list", "tuple", "set", "dict", "enumerate", "zip",
    "isinstance", "print",
}


def _last_attr(node: ast.AST) -> str:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@register_rule("RPR003", "poll loop without an engine yield")
def rpr003(tree: ast.Module, source: str):
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.While):
            continue
        # Poll loops watch *state* — an attribute (`self.done`) or a
        # probe call (`mailbox_empty()`); a bare local name is a
        # worklist, not a poll target.
        cond_state = {
            n.attr for n in ast.walk(node.test) if isinstance(n, ast.Attribute)
        } | {
            _last_attr(c.func) for c in ast.walk(node.test) if isinstance(c, ast.Call)
        }
        if not any(_POLLY.search(n) for n in cond_state if n):
            continue
        all_calls = {
            _last_attr(c.func)
            for sub in [node.test, *node.body]
            for c in ast.walk(sub)
            if isinstance(c, ast.Call)
        }
        if all_calls - _KNOWN_NONYIELDING:
            continue  # some call may yield; give it the benefit of the doubt
        findings.append(
            (
                node.lineno,
                "poll loop never yields to the engine (no sync/park/sleep/"
                "advance in body): virtual time cannot progress",
            )
        )
    return findings


# --------------------------------------------------------------------- #
# RPR004 — task body capturing process-local state
# --------------------------------------------------------------------- #

_PROCESS_LOCAL = {"proc", "engine"}


@register_rule("RPR004", "task body captures process-local state (use a CLO)")
def rpr004(tree: ast.Module, source: str):
    # Map nested function name -> node, per enclosing scope is overkill
    # for a heuristic: collect all defs by name.
    defs: dict[str, ast.AST] = {}
    for fn, _parent in _functions(tree):
        name = getattr(fn, "name", None)
        if name is not None:
            defs[name] = fn
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "register"):
            continue
        for arg in node.args:
            target: ast.AST | None = None
            if isinstance(arg, ast.Lambda):
                target = arg
            elif isinstance(arg, ast.Name) and arg.id in defs:
                target = defs[arg.id]
            if target is None:
                continue
            captured = (_loaded_names(target) - _bound_names(target)) & _PROCESS_LOCAL
            if captured:
                findings.append(
                    (
                        node.lineno,
                        f"task body captures {sorted(captured)} from the "
                        "registering rank; task bodies run on the stealing "
                        "rank — reach per-rank state through a CLO "
                        "(`tc.register_clo` / `tc.clo`) or `tc.proc`",
                    )
                )
    return findings


# --------------------------------------------------------------------- #
# RPR005 — flag-carrying put not preceded by a fence
# --------------------------------------------------------------------- #

_FLAG_HINT = re.compile(r"(dirty|done|mark|flag)", re.I)

# The repro.obs recording API is a pure observer (it only reads proc.now
# and appends metadata) — its names collide with the flag hint
# (edge_mark, instant) but never store protocol state.
_OBSERVER_CALLS = re.compile(r"^(edge_\w+|causal_edge|span|instant|observe)$")


def _carries_flag_store(arg: ast.AST, defs: dict[str, ast.AST]) -> bool:
    """Does a put's apply argument store to a termination/steal flag?"""
    target: ast.AST | None = None
    if isinstance(arg, ast.Lambda):
        target = arg
    elif isinstance(arg, ast.Name) and arg.id in defs:
        target = defs[arg.id]
    if target is None:
        return False
    for node in ast.walk(target):
        if isinstance(node, ast.Call):
            name = _last_attr(node.func) or ""
            if _OBSERVER_CALLS.match(name):
                continue
            if _FLAG_HINT.search(name):
                return True
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Attribute) and _FLAG_HINT.search(t.attr):
                    return True
    return False


@register_rule("RPR005", "flag store not preceded by a fence")
def rpr005(tree: ast.Module, source: str):
    defs: dict[str, ast.AST] = {}
    for fn, _parent in _functions(tree):
        name = getattr(fn, "name", None)
        if name is not None:
            defs[name] = fn
    findings = []
    for fn, _parent in _functions(tree):
        fences = [
            c.lineno
            for c in _calls(_own_statements(fn))
            if isinstance(c.func, ast.Attribute) and c.func.attr == "fence"
        ]
        for call in _calls(_own_statements(fn)):
            if not (isinstance(call.func, ast.Attribute) and call.func.attr == "put"):
                continue
            if not any(_carries_flag_store(a, defs) for a in call.args):
                continue
            if not any(f <= call.lineno for f in fences):
                findings.append(
                    (
                        call.lineno,
                        "one-sided put stores a termination/steal flag with no "
                        "preceding fence to the target: the flag can overtake "
                        "earlier transfers (§5.3 ordering)",
                    )
                )
    return findings


# --------------------------------------------------------------------- #
# RPR006 — inconsistent lock-acquisition order
# --------------------------------------------------------------------- #


def _lock_receiver(call: ast.Call) -> str:
    """Normalized name of the lock a ``.acquire()``/``.release()`` targets.

    ``self.`` is stripped so the same field seen from two methods unifies;
    distinct *variables* (``victim.lock`` vs ``own.lock``) stay distinct,
    which is exactly the distinction a static order check can honour.
    """
    name = _dotted(call.func.value)
    if name.startswith("self."):
        name = name[len("self."):]
    return name


@register_rule("RPR006", "inconsistent lock-acquisition order")
def rpr006(tree: ast.Module, source: str):
    # Per-function summaries: simulate a held-locks stack over the calls
    # of each scope in source order, recording `outer -> inner` whenever
    # a lock is acquired while another is held.  A pair of distinct
    # names seen nested in *both* orders anywhere in the module is a
    # lock-order inversion: two ranks running those paths concurrently
    # can each hold one lock and wait for the other.
    edges: dict[tuple[str, str], int] = {}
    for fn, _parent in _functions(tree):
        calls = [
            c
            for c in _calls(_own_statements(fn))
            if isinstance(c.func, ast.Attribute)
            and c.func.attr in ("acquire", "release", "co_acquire", "co_release")
        ]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        held: list[str] = []
        for c in calls:
            name = _lock_receiver(c)
            if not name:
                continue
            if c.func.attr in ("acquire", "co_acquire"):
                for outer in held:
                    if outer != name:
                        edges.setdefault((outer, name), c.lineno)
                held.append(name)
            else:
                for i in range(len(held) - 1, -1, -1):
                    if held[i] == name:
                        del held[i]
                        break
    findings = []
    for (a, b), line in sorted(edges.items(), key=lambda kv: kv[1]):
        if a < b and (b, a) in edges:
            other = edges[(b, a)]
            findings.append(
                (
                    max(line, other),
                    f"locks `{a}` and `{b}` are acquired in both nestings "
                    f"(`{a}` then `{b}` at line {min(line, other)}, reversed "
                    f"at line {max(line, other)}): inconsistent acquisition "
                    "order can deadlock",
                )
            )
    return findings
