"""Command-line entry point for the observability subsystem.

Subcommands:

* ``run`` — execute a target (check scenario or UTS/SCF/TCE preset)
  with recording on; write a Chrome trace JSON (``--trace``, open it
  in Perfetto), a metrics JSON (``--metrics``), and/or print the ASCII
  timeline and summary.  ``--stream DIR`` records through the
  constant-memory spill sink (sharded JSONL; ``--trace`` then packs
  the shards), ``--window SEC`` adds rolling metrics windows to the
  metrics JSON, and ``--flight PATH`` arms the crash flight recorder.
  ``--live PATH`` additionally publishes interval telemetry frames to
  an append-only JSONL feed (``repro-obs-live/1``).
* ``pack`` — convert a sealed spill directory (``repro-obs-stream/1``)
  into a Perfetto-loadable Chrome trace without materializing the run.
* ``top`` — render a live (or finished) telemetry feed as a terminal
  status table; ``--follow`` keeps tailing while a run is in flight.
* ``slo`` — evaluate a declarative SLO spec (``repro-obs-slo/1``) over
  a telemetry feed: per-objective compliance plus multi-window
  burn-rate alerts; ``--fail-on-burn`` makes it a CI gate.
* ``summarize`` — post-hoc report over an exported trace JSON.
* ``critical-idle`` — the longest per-rank idle gaps in an exported
  trace, with the spans that bounded them.
* ``critpath`` — run a target, build the cross-rank happens-before DAG
  from its spans and causal edges, extract the critical path, and
  print the blame decomposition (the blamed durations sum to the
  makespan).  ``--trace`` writes a Perfetto trace with the path
  highlighted as its own process and flow arrows on the causal edges.
* ``whatif`` — Coz-style causal projection: re-schedule the DAG with
  one or more blame categories scaled (``--scale steal=0.5``) and
  report the projected makespan.
* ``diff`` — compare two benchmark/metrics JSON documents
  (``repro-bench/1``, ``repro-bench-wall/1``, ``repro-obs-metrics/*``)
  and report relative changes beyond a threshold; the CI perf gate
  runs this warn-only against the committed baselines.
* ``verify`` — run targets with recording off and on, and require the
  virtual-time fingerprints (elapsed, event count, per-rank clocks and
  every ``Counters`` value) to match bit-for-bit; additionally run
  with causal edges off and require the span/instant stream to be
  unchanged (edges are metadata-only), and run through the streaming
  spill sink and require *its* span/instant stream to match the
  in-memory recorder's bit-for-bit.  A fourth pass enables the live
  telemetry bus and requires both the fingerprint to stay unchanged
  and the emitted feed to be byte-identical across backends.  Any
  dropped record fails the check.  Repeats per available
  context-switch backend.  Exits 1 on any divergence.

Examples::

    python -m repro.obs run uts-small --trace out.json --metrics m.json
    python -m repro.obs run uts-medium --stream spill/ --trace out.json
    python -m repro.obs run uts-small --live feed.jsonl --window 0.0001
    python -m repro.obs top feed.jsonl --follow
    python -m repro.obs slo feed.jsonl --spec slo.json --fail-on-burn
    python -m repro.obs pack spill/ --trace out.json
    python -m repro.obs run steals --timeline
    python -m repro.obs summarize out.json --top 10
    python -m repro.obs critical-idle out.json
    python -m repro.obs critpath uts-small --trace crit.json
    python -m repro.obs whatif uts-small --scale steal=0.5 --scale lock=0
    python -m repro.obs diff BENCH_sim.json fresh.json --threshold 0.15
    python -m repro.obs verify queue termination steals
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.check.scenarios import SCENARIOS as CHECK_SCENARIOS
from repro.sim.backends import BACKENDS, ENV_BACKEND, available_backends
from repro.obs.analyze import (
    critical_idle,
    load_chrome_trace,
    load_metrics_json,
    percentile_table,
    summarize,
)
from repro.obs.critpath import CausalGraph, critical_path, render_critical_path
from repro.obs.diff import diff_files, render_diff
from repro.obs.export import (
    ascii_timeline,
    summary_table,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.scenarios import TARGETS, fingerprint, run_target
from repro.obs.whatif import parse_scales, project, render_projection


def _cmd_run(args: argparse.Namespace) -> int:
    flight = None
    if args.flight:
        from repro.obs.flight import FlightRecorder

        flight = FlightRecorder(args.flight, flush_every=args.flight_flush)
    # Streamed runs skip the tracer: its in-memory event list is
    # unbounded, which would defeat the constant-memory spill path.
    run = run_target(
        args.target,
        nprocs=args.nprocs,
        seed=args.seed,
        events=not args.stream,
        stream_dir=args.stream,
        window=args.window,
        flight=flight,
        live_path=args.live,
        live_interval=args.live_interval,
    )
    rec = run.recorder
    assert rec is not None
    print(
        f"{run.target}: {run.elapsed * 1e3:.3f} ms virtual, "
        f"{run.events} engine events, {rec.span_count} spans "
        f"({rec.dropped} dropped), {rec.instant_count} instants"
    )
    if rec.dropped:
        print(
            f"WARNING: {rec.dropped} records dropped at capacity "
            f"({rec.dropped_spans} spans, {rec.dropped_instants} instants, "
            f"{rec.dropped_edges} edges) — the recording is incomplete",
            file=sys.stderr,
        )
    for k, v in run.extra.items():
        print(f"  {k}: {v}")
    if args.stream:
        print(f"span spill (repro-obs-stream/1) -> {args.stream}")
    if args.live:
        assert rec.live is not None
        print(
            f"live telemetry (repro-obs-live/1) -> {args.live} "
            f"({rec.live.frames_emitted} frames at "
            f"{rec.live.interval * 1e6:.6g} us virtual intervals)"
        )
    if args.trace:
        if args.stream:
            from repro.obs.stream import pack

            path = pack(args.stream, args.trace)
            print(f"chrome trace (streamed pack) -> {path} "
                  f"(open in https://ui.perfetto.dev)")
        else:
            path = write_chrome_trace(rec, args.trace, tracer=run.tracer)
            print(f"chrome trace -> {path} (open in https://ui.perfetto.dev)")
    if args.metrics:
        pstats = (
            [s.to_dict() for s in run.process_stats]
            if run.process_stats is not None
            else None
        )
        path = write_metrics_json(rec, args.metrics, process_stats=pstats)
        print(f"metrics json -> {path}")
    if args.timeline:
        print()
        print(ascii_timeline(rec.spans, run.engine.nprocs, width=args.width))
        print()
        print(summary_table(rec.spans, run.engine.nprocs))
        print()
        print(percentile_table(
            {k: h.to_dict() for k, h in rec.metrics.histograms.items()}
        ))
        if run.process_stats is not None:
            from repro.bench.report import per_rank_table

            print()
            print(per_rank_table(run.process_stats, title=f"{run.target} per-rank"))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.trace)
    other = json.loads(Path(args.trace).read_text()).get("otherData", {})
    dropped = other.get("spans_dropped", 0)
    if dropped:
        print(
            f"WARNING: this trace is incomplete — {dropped} records were "
            f"dropped at recorder capacity (re-record with --stream for "
            f"bounded-memory, lossless capture)",
            file=sys.stderr,
        )
    print(summarize(spans, width=args.width, top=args.top))
    if dropped:
        print(f"\ndropped records: {dropped} (recording truncated at capacity)")
    if args.metrics:
        doc = load_metrics_json(args.metrics)
        print()
        print(f"histogram percentiles ({doc.get('schema')}):")
        print(percentile_table(doc.get("histograms", {})))
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.obs.stream import SpillReader, pack

    try:
        reader = SpillReader(args.spill)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = pack(args.spill, args.trace)
    idx = reader.index
    print(
        f"packed {idx.get('spans', 0)} spans, {idx.get('instants', 0)} "
        f"instants, {idx.get('edges', 0)} edges -> {path} "
        f"(open in https://ui.perfetto.dev)"
    )
    if idx.get("dropped"):
        print(
            f"WARNING: the spilled recording dropped {idx['dropped']} records",
            file=sys.stderr,
        )
    return 0


def _cmd_critical_idle(args: argparse.Namespace) -> int:
    spans = load_chrome_trace(args.trace)
    gaps = critical_idle(spans, top=args.top)
    if not gaps:
        print("no idle gaps between spans")
        return 0
    print(f"longest {len(gaps)} idle gaps:")
    for g in gaps:
        print(f"  {g.describe()}")
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    run = run_target(args.target, nprocs=args.nprocs, seed=args.seed)
    rec = run.recorder
    assert rec is not None
    graph = CausalGraph.from_recorder(rec)
    path = critical_path(graph)
    print(
        f"{run.target}: {run.elapsed * 1e3:.3f} ms virtual, "
        f"{len(rec.spans)} spans, {len(rec.edges)} causal edges"
    )
    print(render_critical_path(path, graph, top=args.top))
    if args.trace:
        out = write_chrome_trace(rec, args.trace, tracer=run.tracer, critpath=path)
        print(f"chrome trace (critical path highlighted) -> {out}")
    if args.check:
        blamed = sum(path.blame().values())
        frac = sum(path.blame_fractions().values())
        ok = bool(path.steps)
        ok = ok and abs(blamed - path.makespan) <= 1e-9 * max(path.makespan, 1.0)
        ok = ok and abs(frac - 1.0) <= 1e-9
        if not ok:
            print(
                f"CHECK FAILED: steps={len(path.steps)} "
                f"blamed={blamed!r} makespan={path.makespan!r} fractions={frac!r}"
            )
            return 1
        print(
            f"check ok: {len(path.steps)} steps, blame sums to makespan "
            f"(fractions total {frac:.12f})"
        )
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    try:
        scales = parse_scales(args.scale or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run = run_target(args.target, nprocs=args.nprocs, seed=args.seed)
    rec = run.recorder
    assert rec is not None
    graph = CausalGraph.from_recorder(rec)
    proj = project(graph, scales)
    print(render_projection(proj))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs.live import read_feed, render_top

    def render_once() -> tuple[str, int]:
        doc = read_feed(args.feed)
        return render_top(doc, counters_top=args.counters), len(doc["frames"])

    if not args.follow:
        try:
            text, _ = render_once()
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(text)
        return 0
    seen = -1
    try:
        while True:
            try:
                text, nframes = render_once()
            except FileNotFoundError:
                text, nframes = f"waiting for {args.feed} ...", -1
            except ValueError as exc:
                text, nframes = f"error: {exc}", -1
            if nframes != seen:
                seen = nframes
                if sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
                print(text, flush=True)
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.obs.live import read_feed
    from repro.obs.slo import evaluate, load_spec, render_report

    try:
        specs = load_spec(args.spec)
        doc = read_feed(args.feed)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results = evaluate(doc["frames"], specs, label=args.label)
    print(render_report(results))
    burning = [r.spec.name for r in results if r.burning]
    violated = [r.spec.name for r in results if not r.met]
    if args.fail_on_burn and (burning or violated):
        bad = sorted(set(burning) | set(violated))
        print(f"\nSLO FAILURE: {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        report = diff_files(args.old, args.new, threshold=args.threshold)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_diff(report, verbose=args.verbose))
    if report.regressions and args.fail_on_regress:
        return 1
    return 0


def _verify_backends(args: argparse.Namespace) -> list[str]:
    """Backends the verify loop should cover.

    An explicit ``--backend`` pins the loop to that one; otherwise every
    *available* production backend is exercised (greenlet is skipped
    gracefully where the package is not installed — all backends are
    bit-for-bit identical by construction, and CI runs the full set).
    """
    if args.backend is not None and args.backend != "auto":
        return [args.backend]
    avail = available_backends()
    return [b for b in ("coro", "thread", "greenlet") if b in avail]


def _cmd_verify(args: argparse.Namespace) -> int:
    targets = args.targets or sorted(CHECK_SCENARIOS)
    backends = _verify_backends(args)
    bad = 0
    checks = 0
    # target -> (first backend, its live feed bytes): every other
    # backend must reproduce the feed byte-for-byte.
    feeds: dict[str, tuple[str, bytes]] = {}
    saved = os.environ.get(ENV_BACKEND)
    try:
        for backend in backends:
            os.environ[ENV_BACKEND] = backend
            for name in targets:
                checks += 1
                base = fingerprint(
                    run_target(name, nprocs=args.nprocs, seed=args.seed,
                               record=False)
                )
                on = run_target(name, nprocs=args.nprocs, seed=args.seed,
                                record=True)
                rec = fingerprint(on)
                if base != rec:
                    bad += 1
                    print(f"{name}[{backend}]: DIVERGED with recording on")
                    for key in sorted(set(base) | set(rec)):
                        if base.get(key) != rec.get(key):
                            print(f"  {key}: off={base.get(key)!r}")
                            print(f"  {key}:  on={rec.get(key)!r}")
                    continue
                # Causal edges must be metadata-only: recording with them
                # disabled must reproduce the identical span stream.
                off = run_target(name, nprocs=args.nprocs, seed=args.seed,
                                 record=True, edges=False)
                assert on.recorder is not None and off.recorder is not None
                if (
                    on.recorder.stream_fingerprint()
                    != off.recorder.stream_fingerprint()
                ):
                    bad += 1
                    print(f"{name}[{backend}]: span stream DIVERGED "
                          f"between edges on and off")
                    continue
                # The streaming spill sink must be an exact stand-in for
                # the in-memory recorder: same run fingerprint, same
                # span/instant stream bit-for-bit.
                with tempfile.TemporaryDirectory() as td:
                    streamed = run_target(
                        name, nprocs=args.nprocs, seed=args.seed,
                        record=True, events=False,
                        stream_dir=Path(td) / "spill",
                    )
                    assert streamed.recorder is not None
                    if fingerprint(streamed) != base:
                        bad += 1
                        print(f"{name}[{backend}]: DIVERGED with streaming "
                              f"recording on")
                        continue
                    if (
                        streamed.recorder.stream_fingerprint()
                        != on.recorder.stream_fingerprint()
                    ):
                        bad += 1
                        print(f"{name}[{backend}]: streamed span stream "
                              f"DIVERGED from in-memory recorder")
                        continue
                    # The live telemetry bus is an observer too: its
                    # engine tick must leave the fingerprint unchanged,
                    # and the feed it emits must be byte-identical on
                    # every backend (frames derive from virtual time).
                    feed_path = Path(td) / "live.jsonl"
                    lived = run_target(
                        name, nprocs=args.nprocs, seed=args.seed,
                        record=True, live_path=feed_path,
                    )
                    assert lived.recorder is not None
                    if fingerprint(lived) != base:
                        bad += 1
                        print(f"{name}[{backend}]: DIVERGED with live "
                              f"telemetry on")
                        continue
                    feed = feed_path.read_bytes()
                    if name not in feeds:
                        feeds[name] = (backend, feed)
                    elif feeds[name][1] != feed:
                        bad += 1
                        print(f"{name}[{backend}]: live feed DIVERGED from "
                              f"backend {feeds[name][0]!r} (not bit-"
                              f"deterministic)")
                        continue
                    drops = (
                        on.recorder.dropped + off.recorder.dropped
                        + streamed.recorder.dropped + lived.recorder.dropped
                    )
                if drops:
                    bad += 1
                    print(f"{name}[{backend}]: {drops} records DROPPED at "
                          f"capacity — recording is incomplete")
                    continue
                print(f"{name}[{backend}]: ok (fingerprint and span stream "
                      f"unchanged by recording, causal edges, streaming, and "
                      f"live telemetry; feed bit-deterministic; 0 dropped)")
    finally:
        if saved is None:
            os.environ.pop(ENV_BACKEND, None)
        else:
            os.environ[ENV_BACKEND] = saved
    print(
        f"\n{checks - bad}/{checks} target/backend combinations deterministic "
        f"under recording (backends: {', '.join(backends)})"
    )
    return 1 if bad else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.obs", description=__doc__)
    parser.add_argument(
        "--backend",
        choices=[*sorted(BACKENDS), "auto"],
        default=None,
        help="context-switch backend for the runs (sets $REPRO_SIM_BACKEND; "
        "all backends produce identical results)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a target with recording on")
    p_run.add_argument("target", choices=sorted(TARGETS))
    p_run.add_argument("--nprocs", type=int, default=4,
                       help="rank count for application presets")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--trace", metavar="PATH",
                       help="write Chrome trace_event JSON here")
    p_run.add_argument("--metrics", metavar="PATH",
                       help="write flat metrics JSON here")
    p_run.add_argument("--timeline", action="store_true",
                       help="print the ASCII per-rank timeline + summary")
    p_run.add_argument("--width", type=int, default=80)
    p_run.add_argument("--stream", metavar="DIR",
                       help="record through the constant-memory spill sink "
                       "into this directory (sharded JSONL, "
                       "repro-obs-stream/1); --trace then packs the shards")
    p_run.add_argument("--window", type=float, metavar="SEC",
                       help="rolling metrics windows at this virtual-time "
                       "interval (exported under 'windows' in --metrics)")
    p_run.add_argument("--live", metavar="PATH",
                       help="publish live telemetry frames to this append-"
                       "only JSONL feed (repro-obs-live/1); tail it with "
                       "'repro.obs top PATH --follow'")
    p_run.add_argument("--live-interval", type=float, metavar="SEC",
                       help="virtual-time interval between telemetry frames "
                       "(default: --window, else 100us)")
    p_run.add_argument("--flight", metavar="PATH",
                       help="arm the crash flight recorder; the most recent "
                       "spans/instants per rank are dumped here on failure")
    p_run.add_argument("--flight-flush", type=int, default=0, metavar="N",
                       help="also rewrite the flight dump every N records "
                       "(survives SIGKILL; 0 = only on failure)")
    p_run.set_defaults(fn=_cmd_run)

    p_pack = sub.add_parser(
        "pack", help="convert a spill directory to a Chrome trace"
    )
    p_pack.add_argument("spill", help="spill directory written by run --stream")
    p_pack.add_argument("--trace", required=True, metavar="PATH",
                        help="write the packed Chrome trace_event JSON here")
    p_pack.set_defaults(fn=_cmd_pack)

    p_sum = sub.add_parser("summarize", help="report over an exported trace")
    p_sum.add_argument("trace", help="Chrome trace JSON written by 'run'")
    p_sum.add_argument("--top", type=int, default=5)
    p_sum.add_argument("--width", type=int, default=80)
    p_sum.add_argument("--metrics", metavar="PATH",
                       help="also print histogram percentiles from this "
                       "metrics JSON (schema /1 or /2)")
    p_sum.set_defaults(fn=_cmd_summarize)

    p_idle = sub.add_parser("critical-idle", help="longest per-rank idle gaps")
    p_idle.add_argument("trace", help="Chrome trace JSON written by 'run'")
    p_idle.add_argument("--top", type=int, default=5)
    p_idle.set_defaults(fn=_cmd_critical_idle)

    p_crit = sub.add_parser(
        "critpath", help="critical path + blame decomposition of a run"
    )
    p_crit.add_argument("target", choices=sorted(TARGETS))
    p_crit.add_argument("--nprocs", type=int, default=4)
    p_crit.add_argument("--seed", type=int, default=0)
    p_crit.add_argument("--top", type=int, default=12,
                        help="longest path steps to print")
    p_crit.add_argument("--trace", metavar="PATH",
                        help="write a Chrome trace with the path highlighted")
    p_crit.add_argument("--check", action="store_true",
                        help="exit 1 unless the path is non-empty and its "
                        "blame fractions sum to 1 (CI smoke)")
    p_crit.set_defaults(fn=_cmd_critpath)

    p_what = sub.add_parser(
        "whatif", help="causal what-if projection over the happens-before DAG"
    )
    p_what.add_argument("target", choices=sorted(TARGETS))
    p_what.add_argument("--nprocs", type=int, default=4)
    p_what.add_argument("--seed", type=int, default=0)
    p_what.add_argument("--scale", action="append", metavar="CAT=FACTOR",
                        help="scale a blame category, e.g. steal=0.5 "
                        "(repeatable)")
    p_what.set_defaults(fn=_cmd_whatif)

    p_top = sub.add_parser(
        "top", help="status table over a live telemetry feed"
    )
    p_top.add_argument("feed", help="repro-obs-live/1 JSONL feed (live or "
                       "finished; merged fleet feeds supported)")
    p_top.add_argument("--follow", action="store_true",
                       help="keep tailing the feed, re-rendering as frames "
                       "arrive (ctrl-C to stop)")
    p_top.add_argument("--poll", type=float, default=0.5, metavar="SEC",
                       help="host-time poll interval with --follow "
                       "(default 0.5)")
    p_top.add_argument("--counters", type=int, default=6,
                       help="top-N counters to show per stream (default 6)")
    p_top.set_defaults(fn=_cmd_top)

    p_slo = sub.add_parser(
        "slo", help="evaluate SLO burn rates over a telemetry feed"
    )
    p_slo.add_argument("feed", help="repro-obs-live/1 JSONL feed")
    p_slo.add_argument("--spec", required=True, metavar="PATH",
                       help="SLO spec JSON (repro-obs-slo/1)")
    p_slo.add_argument("--label", metavar="NAME",
                       help="restrict scoring to frames with this label")
    p_slo.add_argument("--fail-on-burn", action="store_true",
                       help="exit 1 when any alert fires or any objective "
                       "misses its compliance target")
    p_slo.set_defaults(fn=_cmd_slo)

    p_diff = sub.add_parser(
        "diff", help="compare two benchmark/metrics JSON documents"
    )
    p_diff.add_argument("old", help="baseline JSON document")
    p_diff.add_argument("new", help="candidate JSON document")
    p_diff.add_argument("--threshold", type=float, default=0.10,
                        help="relative change below this is noise "
                        "(default 0.10)")
    p_diff.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any regression exceeds the "
                        "threshold (default: warn only)")
    p_diff.add_argument("--verbose", action="store_true",
                        help="print every comparison, not just changes")
    p_diff.set_defaults(fn=_cmd_diff)

    p_ver = sub.add_parser(
        "verify", help="recording-on == recording-off determinism check"
    )
    p_ver.add_argument("targets", nargs="*",
                       help="targets to verify (default: all check scenarios)")
    p_ver.add_argument("--nprocs", type=int, default=4)
    p_ver.add_argument("--seed", type=int, default=0)
    p_ver.set_defaults(fn=_cmd_verify)

    args = parser.parse_args(argv)
    if args.backend is not None:
        os.environ[ENV_BACKEND] = args.backend
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
