"""The ARMCI runtime: one-sided operations, atomics, mutexes, messages.

One instance is attached per :class:`~repro.sim.engine.Engine`
(:meth:`Armci.attach`).  Data owned by each rank lives in ordinary
Python objects; the runtime's job is to (a) charge the machine-model
cost of each access, (b) serialize all shared accesses in virtual-time
order (via :meth:`Proc.sync`), and (c) model target-side effects such
as NIC atomic serialization and mutex contention.

The mutation/read of remote state is expressed as a closure passed to
:meth:`put` / :meth:`get` / :meth:`acc`, which runs exactly at the
virtual time the operation takes effect.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Callable
from typing import Any

from repro.analyze.race import RaceDetector
from repro.obs.record import edge_recv, edge_send, span
from repro.sim.engine import Engine, Proc, blocking_method
from repro.sim.resources import SimBarrier, SimMutex
from repro.sim.counters import Counters
from repro.armci.collectives import armci_barrier_cost
from repro.util.errors import CommError

__all__ = ["Armci", "NbHandle"]

#: Cost of checking the local mailbox for pending one-sided messages.
#: This is a local memory probe (a flag read), far cheaper than the
#: explicit network poll the MPI baseline needs.
MAILBOX_CHECK_COST = 0.05e-6

#: Wire size of a small control message (termination tokens, dirty marks).
CONTROL_MSG_BYTES = 64


class NbHandle:
    """Handle of an in-flight non-blocking one-sided operation.

    Created by :meth:`Armci.nbput` / :meth:`Armci.nbget`; pass it to
    :meth:`Armci.wait` to block (in virtual time) until the transfer
    completes.  ``value`` carries an nbget's result after completion.
    """

    __slots__ = ("complete_at", "value", "done")

    def __init__(self, complete_at: float, value: Any = None) -> None:
        self.complete_at = complete_at
        self.value = value
        self.done = False


class Armci:
    """Engine-wide ARMCI runtime state plus per-operation cost charging."""

    _KEY = "armci"

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.counters = Counters()
        # per-rank mailboxes: rank -> tag -> deque of (src, payload)
        self._mailboxes: list[dict[str, deque[tuple[int, Any]]]] = [
            defaultdict(deque) for _ in range(engine.nprocs)
        ]
        # (rank, tag) -> proc parked in wait_mailbox on that tag
        self._mail_waiters: dict[tuple[int, str], Proc] = {}
        # target-side serialization point for remote atomics (per rank)
        self._rmw_free_at = [0.0] * engine.nprocs
        self._barrier = SimBarrier(
            engine, engine.nprocs, lambda n: armci_barrier_cost(engine.machine, n)
        )
        self._collective_slot: list[Any] = []
        self._collective_parked: list[Proc] = []

    def _race(self) -> RaceDetector | None:
        """The engine's race detector, if one is attached."""
        return self.engine.state.get(RaceDetector._KEY)

    @classmethod
    def attach(cls, engine: Engine) -> "Armci":
        """Return the engine's ARMCI runtime, creating it on first use."""
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine)
            engine.state[cls._KEY] = inst
        return inst

    # ------------------------------------------------------------------ #
    # One-sided data movement
    # ------------------------------------------------------------------ #
    put = blocking_method("co_put")

    def co_put(
        self,
        proc: Proc,
        target: int,
        nbytes: int,
        apply_fn: Callable[[], None] | None = None,
    ):
        """One-sided put of ``nbytes`` to ``target``; ``apply_fn`` mutates
        the target's state at the moment the data lands."""
        m = self.engine.machine
        if target == proc.rank:
            proc.advance(m.local_copy_time(nbytes))
            yield from proc.co_sync()
            if apply_fn is not None:
                apply_fn()
        else:
            with span(proc, "put", "comm", detail=f"->{target} {nbytes}B"):
                proc.advance(m.put_time(nbytes))
                self.counters.add(proc.rank, "put_remote")
                self.counters.add(proc.rank, "bytes_put", nbytes)
                yield from proc.co_sync()
                if apply_fn is not None:
                    apply_fn()
        det = self._race()
        if det is not None:
            det.on_put(proc, target)

    get = blocking_method("co_get")

    def co_get(
        self,
        proc: Proc,
        target: int,
        nbytes: int,
        read_fn: Callable[[], Any] | None = None,
    ):
        """One-sided get of ``nbytes`` from ``target``; ``read_fn`` reads the
        target's state at request-arrival time and its result is returned
        once the response lands."""
        m = self.engine.machine
        if target == proc.rank:
            proc.advance(m.local_copy_time(nbytes))
            yield from proc.co_sync()
            return read_fn() if read_fn is not None else None
        with span(proc, "get", "comm", detail=f"<-{target} {nbytes}B"):
            proc.advance(m.latency)  # request travels to the target
            yield from proc.co_sync()
            value = read_fn() if read_fn is not None else None
            proc.advance(m.latency + nbytes / m.net_bandwidth)  # response + payload
            self.counters.add(proc.rank, "get_remote")
            self.counters.add(proc.rank, "bytes_get", nbytes)
        return value

    acc = blocking_method("co_acc")

    def co_acc(
        self,
        proc: Proc,
        target: int,
        nbytes: int,
        apply_fn: Callable[[], None],
    ):
        """Atomic accumulate (e.g. ``+=``) into ``target``'s memory.

        Charged like a put plus target-side combining time; consecutive
        accumulates to the same target serialize at the target, which is
        how accumulate hot spots behave on real NICs.
        """
        m = self.engine.machine
        if target == proc.rank:
            proc.advance(2.0 * m.local_copy_time(nbytes))  # read-modify-write locally
            yield from proc.co_sync()
            apply_fn()
            return
        with span(proc, "acc", "comm", detail=f"->{target} {nbytes}B"):
            proc.advance(m.put_time(nbytes))
            yield from proc.co_sync()
            service = max(proc.now, self._rmw_free_at[target])
            combine = nbytes / m.local_mem_bandwidth + m.rmw_overhead
            self._rmw_free_at[target] = service + combine
            apply_fn()
            proc.advance((service + combine) - proc.now)
            self.counters.add(proc.rank, "acc_remote")
            self.counters.add(proc.rank, "bytes_acc", nbytes)
        det = self._race()
        if det is not None:
            det.on_put(proc, target)

    # ------------------------------------------------------------------ #
    # Non-blocking one-sided operations (ARMCI_NbPut / NbGet / Wait)
    # ------------------------------------------------------------------ #
    nbput = blocking_method("co_nbput")

    def co_nbput(
        self,
        proc: Proc,
        target: int,
        nbytes: int,
        apply_fn: Callable[[], None] | None = None,
        nchunks: int = 1,
    ):
        """Issue a non-blocking put; the initiator pays only the issue cost.

        The mutation is applied at issue-sync time (our serialization
        point); the transfer is complete — and the source buffer reusable
        — once :meth:`wait` returns.  Issuing several operations before
        waiting overlaps their network time, which is how GA moves
        multi-owner patches concurrently.
        """
        m = self.engine.machine
        if target == proc.rank:
            proc.advance(m.local_copy_time(nbytes))
            yield from proc.co_sync()
            if apply_fn is not None:
                apply_fn()
            return NbHandle(proc.now)
        proc.advance(m.nb_issue_overhead)
        yield from proc.co_sync()
        if apply_fn is not None:
            apply_fn()
        self.counters.add(proc.rank, "put_remote")
        self.counters.add(proc.rank, "bytes_put", nbytes)
        det = self._race()
        if det is not None:
            det.on_put(proc, target)
        return NbHandle(proc.now + m.put_time(nbytes, nchunks))

    nbget = blocking_method("co_nbget")

    def co_nbget(
        self,
        proc: Proc,
        target: int,
        nbytes: int,
        read_fn: Callable[[], Any] | None = None,
        nchunks: int = 1,
    ):
        """Issue a non-blocking get; the value is valid after :meth:`wait`."""
        m = self.engine.machine
        if target == proc.rank:
            proc.advance(m.local_copy_time(nbytes))
            yield from proc.co_sync()
            value = read_fn() if read_fn is not None else None
            return NbHandle(proc.now, value)
        proc.advance(m.nb_issue_overhead + m.latency)  # issue + request travel
        yield from proc.co_sync()
        value = read_fn() if read_fn is not None else None
        self.counters.add(proc.rank, "get_remote")
        self.counters.add(proc.rank, "bytes_get", nbytes)
        complete = proc.now + m.latency + nbytes / m.net_bandwidth
        complete += (nchunks - 1) * m.stride_chunk_overhead
        return NbHandle(complete, value)

    def wait(self, proc: Proc, handle: NbHandle) -> Any:
        """Block (in virtual time) until ``handle``'s transfer completes."""
        handle.done = True
        if handle.complete_at > proc.now:
            proc.advance(handle.complete_at - proc.now)
        return handle.value

    def wait_all(self, proc: Proc, handles: list[NbHandle]) -> list[Any]:
        """Wait for a batch of non-blocking operations; returns their values."""
        return [self.wait(proc, h) for h in handles]

    # ------------------------------------------------------------------ #
    # Remote atomics
    # ------------------------------------------------------------------ #
    rmw = blocking_method("co_rmw")

    def co_rmw(
        self,
        proc: Proc,
        target: int,
        fn: Callable[[], Any],
    ):
        """Remote atomic read-modify-write (fetch-and-add, swap, cas).

        ``fn`` performs the atomic update on the target's state and
        returns the fetched value.  Requests serialize at the target: a
        hot shared counter (the original SCF/TCE load balancer) becomes a
        contention point exactly as on the real machine.
        """
        m = self.engine.machine
        self.counters.add(proc.rank, "rmw")
        det = self._race()
        if target == proc.rank:
            # local CAS: cheap, but still serializes with remote atomics
            # being serviced at this rank
            proc.advance(m.local_lock_overhead)
            yield from proc.co_sync()
            start = max(proc.now, self._rmw_free_at[target])
            end = start + m.local_lock_overhead
            self._rmw_free_at[target] = end
            if det is not None:
                det.on_rmw(proc, target)
            value = fn()
            if det is not None:
                det.on_rmw_done(proc, target)
            proc.advance(end - proc.now)
            return value
        with span(proc, "rmw", "comm", detail=f"@{target}"):
            proc.advance(m.latency)  # request travels
            yield from proc.co_sync()
            service_start = max(proc.now, self._rmw_free_at[target])
            service_end = service_start + m.rmw_overhead
            self._rmw_free_at[target] = service_end
            if det is not None:
                det.on_rmw(proc, target)
            value = fn()
            if det is not None:
                det.on_rmw_done(proc, target)
            # response departs when serviced; initiator resumes a latency later
            proc.advance((service_end + m.latency) - proc.now)
        return value

    # ------------------------------------------------------------------ #
    # Mutexes
    # ------------------------------------------------------------------ #
    def create_mutex(self, host_rank: int, name: str = "mutex") -> SimMutex:
        """Create a mutex hosted on ``host_rank`` (collective in spirit;
        deterministic creation order makes explicit exchange unnecessary)."""
        return SimMutex(self.engine, host_rank, name)

    # ------------------------------------------------------------------ #
    # One-sided messages (mailboxes)
    # ------------------------------------------------------------------ #
    post = blocking_method("co_post")

    def co_post(
        self,
        proc: Proc,
        target: int,
        tag: str,
        payload: Any,
        nbytes: int = CONTROL_MSG_BYTES,
    ):
        """Deposit a small control message into ``target``'s mailbox.

        Implemented as a one-sided put into a remotely accessible buffer
        (how Scioto's termination tokens travel under ARMCI); the target
        discovers it on its next :meth:`poll_mailbox`.
        """
        m = self.engine.machine
        cost = m.local_copy_time(nbytes) if target == proc.rank else m.put_time(nbytes)
        proc.advance(cost)
        yield from proc.co_sync()
        self._mailboxes[target][tag].append((proc.rank, payload))
        # Causal edge source: the mailbox is FIFO per (target, tag), so the
        # matching edge_recv in poll_mailbox pairs sends and receives in
        # exactly the deposit order (metadata-only; no cost, no RNG).
        edge_send(proc, ("mail", target, tag), detail=tag)
        det = self._race()
        if det is not None:
            det.on_post(proc, target, tag)
        self.counters.add(proc.rank, "msg_posted")
        waiter = self._mail_waiters.pop((target, tag), None)
        if waiter is not None:
            self.engine.wake(waiter, proc.now)

    poll_mailbox = blocking_method("co_poll_mailbox")

    def co_poll_mailbox(self, proc: Proc, tag: str):
        """Check own mailbox for a message with ``tag``; local-cost probe."""
        proc.advance(MAILBOX_CHECK_COST)
        yield from proc.co_sync()
        q = self._mailboxes[proc.rank][tag]
        if q:
            det = self._race()
            if det is not None:
                det.on_poll(proc, tag)
            edge_recv(proc, ("mail", proc.rank, tag), "msg", detail=tag)
            return q.popleft()
        return None

    def mailbox_empty(self, proc: Proc, tag: str) -> bool:
        """Whether any message with ``tag`` is pending (no cost charge)."""
        return not self._mailboxes[proc.rank][tag]

    wait_mailbox = blocking_method("co_wait_mailbox")

    def co_wait_mailbox(self, proc: Proc, tag: str, timeout: float):
        """Wait up to ``timeout`` for a message with ``tag`` to arrive.

        Models a tight polling loop without charging one event per poll:
        the process parks and is woken the instant a matching
        :meth:`post` lands (or at the timeout).  Returns True if a
        message is now pending.
        """
        proc.advance(MAILBOX_CHECK_COST)
        if self._mailboxes[proc.rank][tag]:
            yield from proc.co_sync()
            return True
        key = (proc.rank, tag)
        self._mail_waiters[key] = proc
        yield from proc.co_park_until(proc.now + timeout, f"wait_mailbox({tag})")
        self._mail_waiters.pop(key, None)
        return bool(self._mailboxes[proc.rank][tag])

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    barrier = blocking_method("co_barrier")

    def co_barrier(self, proc: Proc):
        """ARMCI_Barrier: fence all one-sided traffic, then synchronize."""
        self.counters.add(proc.rank, "barrier")
        yield from self._barrier.co_wait(proc)

    fence = blocking_method("co_fence")

    def co_fence(self, proc: Proc, target: int | None = None):
        """Wait for completion of this rank's outstanding one-sided ops.

        Ops are initiator-blocking in this model, so the charge is a
        flush only — but the *ordering* the fence provides (earlier
        one-sided ops complete at the target before anything after it)
        is what the race detector's §5.3 fence discipline tracks.
        """
        with span(proc, "fence", "comm", detail=target):
            proc.advance(self.engine.machine.latency)
            yield from proc.co_sync()
        det = self._race()
        if det is not None:
            det.on_fence(proc, target)

    allreduce = blocking_method("co_allreduce")

    def co_allreduce(self, proc: Proc, value: Any, op: Callable[[Any, Any], Any]):
        """Combine ``value`` across all ranks with ``op``; all ranks get the result.

        Modelled as arrive-at-barrier + reduction critical path; used by
        GA's ``dgop`` and by applications for convergence checks.
        """
        yield from proc.co_sync()
        n = self.engine.nprocs
        if n == 1:
            return value
        self._collective_slot.append(value)
        if len(self._collective_slot) < n:
            self._collective_parked.append(proc)
            return (yield from proc.co_park("allreduce"))
        result = self._collective_slot[0]
        for v in self._collective_slot[1:]:
            result = op(result, v)
        self._collective_slot = []
        release_at = proc.now + armci_barrier_cost(self.engine.machine, n)
        parked, self._collective_parked = self._collective_parked, []
        det = self._race()
        if det is not None:
            det.on_collective(parked + [proc])
        for w in parked:
            self.engine.wake(w, release_at, result)
        proc.advance(release_at - proc.now)
        yield from proc.co_sync()
        return result

    broadcast = blocking_method("co_broadcast")

    def co_broadcast(self, proc: Proc, value: Any, root: int = 0):
        """Broadcast ``value`` from ``root`` to all ranks (tree cost model)."""
        chosen = yield from self.co_allreduce(
            proc,
            (proc.rank == root, value),
            lambda a, b: a if a[0] else b,
        )
        if not chosen[0]:
            raise CommError("broadcast: no rank claimed to be root")
        return chosen[1]
