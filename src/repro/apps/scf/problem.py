"""Synthetic SCF problem definition: blocks, screening, and block kernels.

Models a chain "molecule": ``nblocks`` atom blocks of ``blocksize``
basis functions each.  Pair magnitudes decay exponentially with chain
distance, so distant block pairs fall below the Schwarz-style screening
threshold and contribute nothing — the sparsity + irregularity source
the paper's SCF exhibits.

The two-electron contribution is modelled by a *linear-in-D* block
kernel (Fock matrices are linear in the density): for the block pair
``(i, j)``::

    F_ij = H_ij + M_ij * D_ij + N_ij * D_ji^T        (elementwise)

with deterministic coupling matrices ``M``/``N`` scaled by the pair
magnitude.  This preserves everything the runtime sees — which D blocks
a task reads, which F block it writes, how much it computes — while
keeping the arithmetic verifiable against a sequential reference.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SCFProblem", "stable_hash"]


def stable_hash(*key: object) -> int:
    """A process-independent 63-bit hash (builtin ``hash`` is salted)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1

#: Flops charged per matrix element of a significant Fock block task.
#: This stands in for contracted Gaussian integral evaluation, which in a
#: real SCF costs thousands of flops per Fock element (quartic in the
#: primitive count) and dominates the runtime; the pair weight makes it
#: irregular across blocks.
FLOPS_PER_ELEMENT = 15_000.0

#: Flops charged for screening out an insignificant pair.
SCREEN_FLOPS = 2_000.0


@dataclass
class SCFProblem:
    """A deterministic synthetic closed-shell SCF instance.

    Attributes:
        nblocks: Number of atom blocks along each matrix dimension.
        blocksize: Basis functions per block (``nbf = nblocks * blocksize``).
        screen_threshold: Pairs with magnitude below this are skipped.
        decay: Exponential decay rate of pair magnitude with distance.
        nocc: Occupied orbitals; defaults to ``nbf // 4``.
        seed: Seed for all deterministic synthetic data.
    """

    nblocks: int = 16
    blocksize: int = 6
    screen_threshold: float = 0.02
    decay: float = 0.45
    nocc: int | None = None
    seed: int = 7
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def nbf(self) -> int:
        return self.nblocks * self.blocksize

    def occupied(self) -> int:
        return self.nocc if self.nocc is not None else max(1, self.nbf // 4)

    # ------------------------------------------------------------------ #
    # Deterministic data
    # ------------------------------------------------------------------ #
    def _rng(self, *key) -> np.random.Generator:
        return np.random.default_rng(stable_hash(self.seed, *key))

    def core_hamiltonian(self) -> np.ndarray:
        """Symmetric, diagonally dominant core Hamiltonian (replicated)."""
        if "H" not in self._cache:
            rng = self._rng("H")
            a = rng.standard_normal((self.nbf, self.nbf))
            h = -0.5 * (a + a.T) / np.sqrt(self.nbf)
            h -= np.diag(1.0 + rng.random(self.nbf))
            self._cache["H"] = h
        return self._cache["H"]

    def pair_magnitude(self, i: int, j: int) -> float:
        """Schwarz-style magnitude of block pair ``(i, j)``."""
        base = float(np.exp(-self.decay * abs(i - j)))
        jitter = 0.5 + (stable_hash(self.seed, "mag", min(i, j), max(i, j)) % 1000) / 1000.0
        return base * jitter

    def significant(self, i: int, j: int) -> bool:
        """Whether the pair survives screening."""
        return self.pair_magnitude(i, j) >= self.screen_threshold

    def significant_pairs(self) -> list[tuple[int, int]]:
        """All ordered significant block pairs, in deterministic order."""
        return [
            (i, j)
            for i in range(self.nblocks)
            for j in range(self.nblocks)
            if self.significant(i, j)
        ]

    def all_pairs(self) -> list[tuple[int, int]]:
        """Every ordered block pair — the original code's replicated task list."""
        return [(i, j) for i in range(self.nblocks) for j in range(self.nblocks)]

    def coupling(self, i: int, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic coupling matrices ``(M_ij, N_ij)`` for a block pair."""
        key = ("C", i, j)
        if key not in self._cache:
            rng = self._rng("coupling", i, j)
            mag = self.pair_magnitude(i, j)
            b = self.blocksize
            m = mag * 0.2 * rng.standard_normal((b, b)) / np.sqrt(self.nbf)
            n = mag * 0.2 * rng.standard_normal((b, b)) / np.sqrt(self.nbf)
            self._cache[key] = (m, n)
        return self._cache[key]

    # ------------------------------------------------------------------ #
    # Block kernels (single source of truth for parallel + sequential)
    # ------------------------------------------------------------------ #
    def block_slice(self, i: int) -> slice:
        return slice(i * self.blocksize, (i + 1) * self.blocksize)

    def fock_block(self, i: int, j: int, d_ij: np.ndarray, d_ji: np.ndarray) -> np.ndarray:
        """Compute the Fock block ``F_ij`` from the density blocks it reads."""
        h = self.core_hamiltonian()[self.block_slice(i), self.block_slice(j)]
        m, n = self.coupling(i, j)
        return h + m * d_ij + n * d_ji.T

    def task_flops(self, i: int, j: int) -> float:
        """Cost model of one Fock-block task (irregular across pairs)."""
        if not self.significant(i, j):
            return SCREEN_FLOPS
        weight = 0.25 + 2.0 * self.pair_magnitude(i, j)
        return FLOPS_PER_ELEMENT * weight * self.blocksize * self.blocksize

    # ------------------------------------------------------------------ #
    # Iteration-level math (shared by all drivers)
    # ------------------------------------------------------------------ #
    def initial_density(self) -> np.ndarray:
        """Superposition-of-atoms style diagonal guess."""
        occ = self.occupied()
        return np.eye(self.nbf) * (2.0 * occ / self.nbf)

    def next_density(self, fock: np.ndarray, d_old: np.ndarray, damping: float = 0.5) -> np.ndarray:
        """Diagonalize the (symmetrized) Fock matrix, rebuild and damp D."""
        f = 0.5 * (fock + fock.T)
        _, vecs = np.linalg.eigh(f)
        c_occ = vecs[:, : self.occupied()]
        d_new = 2.0 * c_occ @ c_occ.T
        return damping * d_old + (1.0 - damping) * d_new

    def energy(self, fock: np.ndarray, density: np.ndarray) -> float:
        """Electronic energy ``0.5 * sum(D * (H + F))``."""
        return 0.5 * float(np.sum(density * (self.core_hamiltonian() + fock)))

    #: Flops charged for the (replicated) diagonalization step.
    def diag_flops(self) -> float:
        return 10.0 * self.nbf**3
