"""Distributed dense arrays with one-sided patch access (GA core).

A :class:`GlobalArray` is created collectively; each rank owns one
rectangular patch stored as a NumPy array.  ``get``/``put``/``acc`` move
arbitrary rectangular patches, touching every owning rank and charging
the machine-model cost of each transfer.  ``acc`` is atomic with respect
to other accumulates, matching GA semantics for Fock-matrix style
accumulation.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.analyze import hooks
from repro.armci.runtime import Armci
from repro.ga.distribution import BlockDistribution
from repro.sim.engine import Engine, Proc, blocking_method
from repro.util.errors import CommError

__all__ = ["GaRuntime", "GlobalArray"]


class GaRuntime:
    """Engine-wide registry of global arrays (collective creation order)."""

    _KEY = "ga"

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.armci = Armci.attach(engine)
        self.arrays: list["GlobalArray"] = []
        # Per-rank count of create() calls: the n-th collective create on
        # every rank refers to the same array (SPMD programs create arrays
        # in the same order on all ranks).
        self._create_counts = [0] * engine.nprocs

    @classmethod
    def attach(cls, engine: Engine) -> "GaRuntime":
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine)
            engine.state[cls._KEY] = inst
        return inst


class GlobalArray:
    """A block-distributed dense array (the GA programming model).

    Use :meth:`create` collectively from every rank; all GA operations
    take the calling rank's :class:`Proc` so costs land on the right
    clock.
    """

    def __init__(
        self,
        runtime: GaRuntime,
        gid: int,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype,
    ) -> None:
        self._runtime = runtime
        self.gid = gid
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.dist = BlockDistribution(shape, runtime.engine.nprocs)
        self._patches: list[np.ndarray] = []
        for rank in range(runtime.engine.nprocs):
            lo, hi = self.dist.patch(rank)
            self._patches.append(
                np.zeros([h - l for l, h in zip(lo, hi)], dtype=dtype)
            )

    # ------------------------------------------------------------------ #
    # Creation
    # ------------------------------------------------------------------ #
    create = classmethod(blocking_method("co_create"))

    @classmethod
    def co_create(
        cls,
        proc: Proc,
        name: str,
        shape: Sequence[int],
        dtype: Any = np.float64,
    ):
        """Collectively create a global array (call from every rank)."""
        rt = GaRuntime.attach(proc.engine)
        idx = rt._create_counts[proc.rank]
        rt._create_counts[proc.rank] += 1
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        yield from proc.co_sync()
        if idx == len(rt.arrays):
            rt.arrays.append(cls(rt, idx, name, shape, dtype))
        ga = rt.arrays[idx]
        if ga.shape != shape or ga.dtype != dtype:
            raise CommError(
                f"collective create mismatch on rank {proc.rank}: "
                f"{name}{shape} vs existing {ga.name}{ga.shape}"
            )
        yield from rt.armci.co_barrier(proc)
        return ga

    # ------------------------------------------------------------------ #
    # Ownership queries (no communication)
    # ------------------------------------------------------------------ #
    def locate(self, index: Sequence[int]) -> int:
        """Rank owning ``index`` (NGA_Locate)."""
        return self.dist.locate(index)

    def distribution(self, rank: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The ``(lo, hi)`` patch owned by ``rank`` (NGA_Distribution)."""
        return self.dist.patch(rank)

    def access(self, proc: Proc) -> np.ndarray:
        """Direct view of the calling rank's own patch (NGA_Access)."""
        # The view is writable, so model it as a write by the owner.
        hooks.shared_write(proc, ("ga", self.gid, proc.rank))
        return self._patches[proc.rank]

    # ------------------------------------------------------------------ #
    # One-sided patch operations
    # ------------------------------------------------------------------ #
    def _check_box(self, lo: Sequence[int], hi: Sequence[int]) -> tuple[tuple, tuple]:
        lo = tuple(int(x) for x in lo)
        hi = tuple(int(x) for x in hi)
        if len(lo) != len(self.shape) or len(hi) != len(self.shape):
            raise IndexError(f"box rank mismatch for array of shape {self.shape}")
        return lo, hi

    @staticmethod
    def _box_chunks(plo: tuple, phi: tuple) -> tuple[int, int]:
        """(elements, contiguous chunks) of a sub-box: rows are strided."""
        dims = [h - l for l, h in zip(plo, phi)]
        elements = int(np.prod(dims))
        nchunks = int(np.prod(dims[:-1])) if len(dims) > 1 else 1
        return elements, max(1, nchunks)

    get = blocking_method("co_get")

    def co_get(self, proc: Proc, lo: Sequence[int], hi: Sequence[int]):
        """Fetch the patch ``[lo, hi)`` into a private buffer (NGA_Get).

        Transfers from distinct owners are issued as non-blocking strided
        gets and overlapped, as the real GA/ARMCI implementation does.
        """
        lo, hi = self._check_box(lo, hi)
        out = np.empty([h - l for l, h in zip(lo, hi)], dtype=self.dtype)
        armci = self._runtime.armci
        pending = []
        for rank, (plo, phi) in self.dist.patches_intersecting(lo, hi):
            elements, nchunks = self._box_chunks(plo, phi)
            handle = yield from armci.co_nbget(
                proc,
                rank,
                elements * self.dtype.itemsize,
                lambda r=rank, a=plo, b=phi: self._read(r, a, b),
                nchunks=nchunks,
            )
            pending.append((handle, plo, phi))
        for handle, plo, phi in pending:
            out[self._rel(lo, plo, phi)] = armci.wait(proc, handle)
        return out

    put = blocking_method("co_put")

    def co_put(self, proc: Proc, lo: Sequence[int], hi: Sequence[int], data: np.ndarray):
        """Store ``data`` into the patch ``[lo, hi)`` (NGA_Put); multi-owner
        transfers overlap like :meth:`get`."""
        lo, hi = self._check_box(lo, hi)
        data = np.ascontiguousarray(data, dtype=self.dtype).reshape(
            [h - l for l, h in zip(lo, hi)]
        )
        armci = self._runtime.armci
        pending = []
        for rank, (plo, phi) in self.dist.patches_intersecting(lo, hi):
            elements, nchunks = self._box_chunks(plo, phi)
            chunk = data[self._rel(lo, plo, phi)].copy()
            handle = yield from armci.co_nbput(
                proc,
                rank,
                elements * self.dtype.itemsize,
                lambda r=rank, a=plo, b=phi, c=chunk: self._write(r, a, b, c),
                nchunks=nchunks,
            )
            pending.append(handle)
        armci.wait_all(proc, pending)

    acc = blocking_method("co_acc")

    def co_acc(
        self,
        proc: Proc,
        lo: Sequence[int],
        hi: Sequence[int],
        data: np.ndarray,
        alpha: float = 1.0,
    ):
        """Atomically add ``alpha * data`` into the patch ``[lo, hi)`` (NGA_Acc)."""
        lo, hi = self._check_box(lo, hi)
        data = np.ascontiguousarray(data, dtype=self.dtype).reshape(
            [h - l for l, h in zip(lo, hi)]
        )
        for rank, (plo, phi) in self.dist.patches_intersecting(lo, hi):
            nbytes = int(np.prod([h - l for l, h in zip(plo, phi)])) * self.dtype.itemsize
            chunk = data[self._rel(lo, plo, phi)].copy()
            yield from self._runtime.armci.co_acc(
                proc,
                rank,
                nbytes,
                lambda r=rank, a=plo, b=phi, c=chunk: self._accumulate(r, a, b, c, alpha),
            )

    fill = blocking_method("co_fill")

    def co_fill(self, proc: Proc, value: float):
        """Collectively fill the array with ``value`` (GA_Fill)."""
        hooks.shared_write(proc, ("ga", self.gid, proc.rank))
        self._patches[proc.rank][...] = value
        yield from self._runtime.armci.co_barrier(proc)

    read_full = blocking_method("co_read_full")

    def co_read_full(self, proc: Proc):
        """Fetch the whole array into a private buffer (charged get)."""
        return (yield from self.co_get(proc, [0] * len(self.shape), list(self.shape)))

    sync = blocking_method("co_sync")

    def co_sync(self, proc: Proc):
        """GA_Sync: fence + barrier."""
        yield from self._runtime.armci.co_barrier(proc)

    # ------------------------------------------------------------------ #
    # Test/debug access (no cost; safe only outside timed regions)
    # ------------------------------------------------------------------ #
    def unsafe_snapshot(self) -> np.ndarray:
        """Assemble the full array without charging costs (for assertions)."""
        out = np.empty(self.shape, dtype=self.dtype)
        for rank in range(self._runtime.engine.nprocs):
            lo, hi = self.dist.patch(rank)
            if all(h > l for l, h in zip(lo, hi)):
                out[tuple(slice(l, h) for l, h in zip(lo, hi))] = self._patches[rank]
        return out

    # ------------------------------------------------------------------ #
    # Patch index helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _rel(base: tuple, plo: tuple, phi: tuple) -> tuple[slice, ...]:
        """Slices of the user buffer corresponding to global box [plo, phi)."""
        return tuple(slice(l - b, h - b) for b, l, h in zip(base, plo, phi))

    def _local_slices(self, rank: int, plo: tuple, phi: tuple) -> tuple[slice, ...]:
        lo, _ = self.dist.patch(rank)
        return tuple(slice(l - o, h - o) for o, l, h in zip(lo, plo, phi))

    # Race-detector granularity: block ops are keyed by the target
    # patch's box origin, so independent blocks landing on one owner's
    # patch do not alias.  Whole-patch ops (access/fill) keep the
    # coarser (gid, rank) region; they are barrier-bracketed by API
    # contract, so block-vs-patch overlap needs no conflict edge.
    def _read(self, rank: int, plo: tuple, phi: tuple) -> np.ndarray:
        hooks.shared_read(self._runtime.engine.current, ("ga", self.gid, rank, plo))
        return self._patches[rank][self._local_slices(rank, plo, phi)].copy()

    def _write(self, rank: int, plo: tuple, phi: tuple, chunk: np.ndarray) -> None:
        hooks.shared_write(self._runtime.engine.current, ("ga", self.gid, rank, plo))
        self._patches[rank][self._local_slices(rank, plo, phi)] = chunk

    def _accumulate(
        self, rank: int, plo: tuple, phi: tuple, chunk: np.ndarray, alpha: float
    ) -> None:
        hooks.shared_atomic(self._runtime.engine.current, ("ga", self.gid, rank, plo))
        self._patches[rank][self._local_slices(rank, plo, phi)] += alpha * chunk
