"""Property-based tests of SplitQueue invariants.

Invariants under any operation sequence:

* conservation — every pushed task is popped or stolen exactly once;
* affinity ordering — the owner pops in non-increasing affinity order
  (among tasks present), thieves receive the lowest-affinity tasks;
* capacity — the queue never exceeds ``max_tasks``.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SciotoConfig
from repro.core.queue import SplitQueue
from repro.core.task import Task
from repro.sim.engine import Engine
from repro.sim.counters import Counters

# an operation script: (op, affinity) where op in push/pop/steal/radd
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push", "push", "pop", "steal", "radd"]),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, split=st.booleans(), chunk=st.integers(1, 5))
def test_conservation_and_uniqueness(ops, split, chunk):
    cfg = SciotoConfig(split_queues=split, chunk_size=chunk)
    eng = Engine(2, max_events=500_000)
    queue = SplitQueue(eng, 0, 10_000, 32, cfg, Counters())
    pushed: list[int] = []
    removed: list[int] = []

    def owner(proc):
        serial = 0
        for op, aff in ops:
            if op == "push":
                queue.push_local(proc, Task(callback=0, body=("o", serial), affinity=aff))
                pushed.append(("o", serial))
                serial += 1
            elif op == "pop":
                t = queue.pop_local(proc)
                if t is not None:
                    removed.append(t.body)
            proc.sleep(5e-6)  # let the thief interleave deterministically
        proc.sleep(1.0 - proc.now)
        # drain the remainder
        while True:
            t = queue.pop_local(proc)
            if t is None:
                break
            removed.append(t.body)

    def thief(proc):
        serial = 0
        for op, aff in ops:
            if op == "steal":
                for t in queue.steal_from(proc, chunk):
                    removed.append(t.body)
            elif op == "radd":
                queue.add_remote(proc, Task(callback=0, body=("t", serial), affinity=aff))
                pushed.append(("t", serial))
                serial += 1
            proc.sleep(5e-6)

    eng.spawn(0, owner)
    eng.spawn(1, thief)
    eng.run()
    assert Counter(removed) == Counter(pushed), "tasks lost or duplicated"
    assert queue.size() == 0


def _pop_sequence(affs, split):
    cfg = SciotoConfig(split_queues=split)
    eng = Engine(1, max_events=500_000)
    queue = SplitQueue(eng, 0, 10_000, 32, cfg, Counters())
    out: list[int] = []

    def main(proc):
        for i, a in enumerate(affs):
            queue.push_local(proc, Task(callback=0, body=i, affinity=a))
        while True:
            t = queue.pop_local(proc)
            if t is None:
                return
            out.append(t.affinity)

    eng.spawn_all(main)
    eng.run()
    return out


@settings(max_examples=40, deadline=None)
@given(affs=st.lists(st.integers(0, 9), min_size=2, max_size=30))
def test_locked_queue_pops_by_affinity(affs):
    """The single-region (no-split) queue is a strict priority queue."""
    out = _pop_sequence(affs, split=False)
    assert sorted(out, reverse=True) == out, f"pops out of affinity order: {out}"
    assert len(out) == len(affs)


@settings(max_examples=40, deadline=None)
@given(affs=st.lists(st.integers(0, 9), min_size=2, max_size=30))
def test_split_queue_priority_is_heuristic_but_head_is_max(affs):
    """The split queue prioritizes approximately (§5.1): exact ordering
    can break across release/reacquire boundaries, but the first pop is
    always the global maximum (the head never leaves the private
    portion), and every task still comes out exactly once."""
    out = _pop_sequence(affs, split=True)
    assert len(out) == len(affs)
    assert out[0] == max(affs)
    assert sorted(out) == sorted(affs)


@settings(max_examples=40, deadline=None)
@given(
    affs=st.lists(st.integers(0, 9), min_size=4, max_size=30),
    want=st.integers(1, 6),
)
def test_thief_gets_no_higher_affinity_than_owner_keeps(affs, want):
    """Whatever a steal returns must not out-rank what remains queued."""
    eng = Engine(2, max_events=500_000)
    queue = SplitQueue(eng, 0, 10_000, 32, SciotoConfig(), Counters())
    outcome = {}

    def owner(proc):
        for i, a in enumerate(affs):
            queue.push_local(proc, Task(callback=0, body=i, affinity=a))
        proc.sleep(1.0 - proc.now)
        outcome["kept"] = [t.affinity for t in queue.drain()]

    def thief(proc):
        proc.sleep(0.5)
        outcome["stolen"] = [t.affinity for t in queue.steal_from(proc, want)]

    eng.spawn(0, owner)
    eng.spawn(1, thief)
    eng.run()
    stolen, kept = outcome["stolen"], outcome["kept"]
    if stolen and kept:
        # the global-maximum task sits at the private head and is never
        # released while other tasks remain, so thieves cannot take it
        assert max(stolen) <= max(kept)
