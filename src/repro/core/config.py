"""Runtime configuration of a Scioto task collection."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SciotoConfig"]


@dataclass(frozen=True)
class SciotoConfig:
    """Knobs controlling queueing, stealing, and termination detection.

    Attributes:
        split_queues: Use the paper's split (private/shared) queues.  When
            False, every queue operation — including the owner's — locks
            the queue (the paper's original implementation, the "No Split"
            line of Figure 7).
        load_balancing: Enable work stealing.  §3 allows disabling dynamic
            load balancing to rely on the initial task placement.
        chunk_size: Maximum tasks transferred by a single steal (§5.1).
        steal_policy: Victim selection — ``"random"`` (the paper's
            uniform choice), ``"ring"``, or ``"last_victim"``; see
            :mod:`repro.core.stealing`.
        termination_opt: Apply the token-coloring *votes-before*
            optimization of §5.3, which elides dirty-mark messages from
            thief to victim when provably unnecessary.
        wait_free_steals: Use the wait-free steal protocol the paper's
            §8 plans ("wait-free implementations of the distributed task
            collection"): thieves reserve a chunk with a single remote
            atomic on the queue metadata instead of holding the mutex
            across the transfer, so neither the owner nor other thieves
            ever block behind an in-progress steal.
        release_fraction: Fraction of the private queue released to the
            shared portion when the shared portion runs empty.
        reacquire_fraction: Fraction of the shared portion reclaimed when
            the private portion runs empty.
        idle_backoff: Initial virtual-time delay between failed steal
            attempts; doubles per consecutive failure (woken early by
            incoming termination tokens).
        max_idle_backoff: Cap on the exponential idle backoff.
    """

    split_queues: bool = True
    load_balancing: bool = True
    chunk_size: int = 10
    wait_free_steals: bool = False
    steal_policy: str = "random"
    termination_opt: bool = True
    release_fraction: float = 0.5
    reacquire_fraction: float = 0.5
    idle_backoff: float = 0.5e-6
    max_idle_backoff: float = 20e-6

    def __post_init__(self) -> None:
        from repro.core.stealing import STEAL_POLICIES

        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.steal_policy not in STEAL_POLICIES:
            raise ValueError(
                f"steal_policy must be one of {STEAL_POLICIES}, got {self.steal_policy!r}"
            )
        if not (0.0 < self.release_fraction <= 1.0):
            raise ValueError("release_fraction must be in (0, 1]")
        if not (0.0 < self.reacquire_fraction <= 1.0):
            raise ValueError("reacquire_fraction must be in (0, 1]")
        if self.idle_backoff < 0:
            raise ValueError("idle_backoff must be >= 0")
        if self.max_idle_backoff < self.idle_backoff:
            raise ValueError("max_idle_backoff must be >= idle_backoff")
