"""Closed-shell Self-Consistent Field (SCF) over Global Arrays (§6.2).

The paper extends a GA implementation of the closed-shell SCF method
with Scioto task collections and compares it against the original
global-counter load balancer.  This package reproduces that structure
on a *synthetic model Hamiltonian* (see DESIGN.md's substitution
ledger): the Fock build is decomposed into per-block tasks with
Schwarz-style screening, irregular per-block cost, distributed Fock and
density matrices in GA, and a Roothaan-style iteration loop with
damping.  Identical arithmetic runs in the sequential reference, the
Scioto version, and the counter version, so energies must agree to
machine precision regardless of schedule.
"""

from repro.apps.scf.problem import SCFProblem
from repro.apps.scf.reference import run_scf_sequential
from repro.apps.scf.parallel import run_scf_scioto, run_scf_original, SCFRunResult

__all__ = [
    "SCFProblem",
    "run_scf_sequential",
    "run_scf_scioto",
    "run_scf_original",
    "SCFRunResult",
]
