#!/usr/bin/env python3
"""Heterogeneity: dynamic load balancing adapts to mixed CPU speeds.

The paper's cluster is half 2.8 GHz Opterons, half 3.6 GHz Xeons whose
UTS per-node costs differ by ~50% (§6.3).  With static placement the
slow half gates completion; with Scioto's work stealing, the fast ranks
automatically absorb more of the tree.  This example shows both the
per-rank task counts and the throughput difference.

Run:
    python examples/heterogeneous_cluster.py [nprocs]
"""

import sys

from repro.apps.uts import UTSParams, run_uts_scioto
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster


def main(nprocs: int = 8) -> None:
    params = UTSParams(b0=4.0, gen_mx=10, root_seed=17)
    machine = heterogeneous_cluster(nprocs)
    print(f"{nprocs} ranks: even ranks Opteron (0.3158 us/node), "
          f"odd ranks Xeon (0.4753 us/node)\n")

    r = run_uts_scioto(nprocs, params, machine=machine, seed=1)
    print("rank  cpu      tasks  steals-in  share-of-work")
    total = sum(s.tasks_executed for s in r.per_rank)
    for s in r.per_rank:
        cpu = "Opteron" if s.rank % 2 == 0 else "Xeon   "
        print(f"{s.rank:3d}   {cpu}  {s.tasks_executed:6d}  "
              f"{s.steals_successful:6d}     {100 * s.tasks_executed / total:5.1f}%")

    fast = sum(s.tasks_executed for s in r.per_rank if s.rank % 2 == 0)
    slow = total - fast
    print(f"\nOpteron half processed {fast} nodes, Xeon half {slow} "
          f"({fast / slow:.2f}x) — work followed speed")
    print(f"throughput with stealing: {r.throughput / 1e6:.2f} Mnodes/s")

    static = run_uts_scioto(
        nprocs, params, machine=machine, seed=1,
        config=SciotoConfig(load_balancing=False),
    )
    # with stealing off everything runs on rank 0 (where the root lives)
    print(f"without load balancing (all work stays at the root's rank): "
          f"{static.throughput / 1e6:.2f} Mnodes/s")
    assert r.throughput > static.throughput


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
