"""Command-line driver for the SCF application.

Examples::

    python -m repro.apps.scf --nprocs 16 --nblocks 20 --blocksize 5
    python -m repro.apps.scf --scheduler original --machine het
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.apps.scf import (
    SCFProblem,
    run_scf_original,
    run_scf_scioto,
    run_scf_sequential,
)
from repro.sim.machines import cray_xt4, heterogeneous_cluster, uniform_cluster

_MACHINES = {
    "cluster": uniform_cluster,
    "het": heterogeneous_cluster,
    "xt4": cray_xt4,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.apps.scf", description=__doc__)
    p.add_argument("--nprocs", type=int, default=8)
    p.add_argument("--scheduler", choices=["scioto", "original"], default="scioto")
    p.add_argument("--machine", choices=sorted(_MACHINES), default="het")
    p.add_argument("--nblocks", type=int, default=20)
    p.add_argument("--blocksize", type=int, default=5)
    p.add_argument("--iters", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="check energies against the sequential reference")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    problem = SCFProblem(nblocks=args.nblocks, blocksize=args.blocksize)
    machine = _MACHINES[args.machine](args.nprocs)
    runner = run_scf_scioto if args.scheduler == "scioto" else run_scf_original
    r = runner(args.nprocs, problem, iterations=args.iters, machine=machine,
               seed=args.seed)
    print(f"SCF ({args.scheduler}) nbf={problem.nbf}, "
          f"{len(problem.significant_pairs())} significant pairs, "
          f"{args.iters} iterations on {args.nprocs} ranks")
    for it, e in enumerate(r.energies):
        print(f"  iter {it}: E = {e:+.10f}")
    print(f"virtual time {r.elapsed * 1e3:.2f} ms "
          f"(fock builds {r.fock_time * 1e3:.2f} ms)")
    if args.verify:
        seq = run_scf_sequential(problem, iterations=args.iters)
        ok = np.allclose(seq, r.energies, atol=1e-10)
        print(f"matches sequential reference: {ok}")
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
