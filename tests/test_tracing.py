"""Tests for the optional event tracer."""

from __future__ import annotations

import pytest

from repro.core import Task, TaskCollection
from repro.sim.engine import Engine
from repro.obs.tracing import Tracer, trace


def _scioto_workload(eng):
    def main(proc):
        tc = TaskCollection.create(proc)

        def node(tc_, t):
            tc_.proc.compute(5e-6)
            if t.body < 30:
                tc_.add(Task(callback=h, body=2 * t.body + 1))
                tc_.add(Task(callback=h, body=2 * t.body + 2))

        h = tc.register(node)
        if proc.rank == 0:
            tc.add(Task(callback=h, body=0))
        tc.process()

    eng.spawn_all(main)
    eng.run()


def test_tracer_records_steals_and_tokens():
    eng = Engine(4, seed=3, max_events=2_000_000)
    tracer = Tracer.attach(eng)
    _scioto_workload(eng)
    counts = tracer.counts()
    assert counts.get("steal", 0) >= 1
    assert counts.get("td-msg", 0) >= 3  # down + up + done at minimum
    # events carry valid coordinates
    for e in tracer.events:
        assert e.time >= 0
        assert 0 <= e.rank < 4


def test_tracing_off_by_default_costs_nothing():
    eng = Engine(3, seed=3, max_events=2_000_000)
    _scioto_workload(eng)
    assert Tracer.of(eng) is None


def test_tracing_does_not_perturb_virtual_time():
    def run(with_tracer):
        eng = Engine(3, seed=5, max_events=2_000_000)
        if with_tracer:
            Tracer.attach(eng)
        _scioto_workload(eng)
        return max(p.now for p in eng.procs)

    assert run(False) == run(True)


def test_render_and_filters():
    eng = Engine(2, seed=1, max_events=2_000_000)
    tracer = Tracer.attach(eng)

    def main(proc):
        proc.compute(1e-6)
        trace(proc, "custom", {"x": proc.rank})
        proc.sync()

    eng.spawn_all(main)
    eng.run()
    text = tracer.render(kinds={"custom"})
    assert "custom" in text
    assert len(tracer.by_kind("custom")) == 2
    assert len(tracer.by_rank(1)) == 1


def test_capacity_limit_drops_and_reports():
    eng = Engine(1, max_events=100_000)
    tracer = Tracer.attach(eng, capacity=5)

    def main(proc):
        for i in range(10):
            trace(proc, "tick", i)

    eng.spawn_all(main)
    eng.run()
    assert len(tracer.events) == 5
    assert tracer.dropped == 5
    assert "dropped" in tracer.render()


def test_dropped_events_counted_in_counts_render_reports_total():
    """Drop accounting: every event past capacity increments ``dropped``
    exactly once, recorded events keep their order, and ``render``
    reports the overflow even when kind filters hide all kept events."""
    eng = Engine(2, max_events=100_000)
    tracer = Tracer.attach(eng, capacity=3)

    def main(proc):
        for i in range(4):
            trace(proc, f"kind{proc.rank}", i)
            proc.advance(1e-6)
            proc.sync()

    eng.spawn_all(main)
    eng.run()
    assert len(tracer.events) == 3
    assert tracer.dropped == 2 * 4 - 3
    times = [e.time for e in tracer.events]
    assert times == sorted(times)
    filtered = tracer.render(kinds={"no-such-kind"})
    assert "5 events dropped" in filtered


def test_old_import_paths_are_gone():
    """The rename shims (``repro.sim.tracing``, ``repro.sim.trace``)
    lived for one release and have been removed; the old paths must now
    fail loudly rather than silently resolve to stale modules."""
    import importlib
    import sys

    for old in ("repro.sim.tracing", "repro.sim.trace"):
        sys.modules.pop(old, None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module(old)
