"""End-to-end tests for the explore / persist / replay / minimize loop."""

from __future__ import annotations

import pytest

from repro.check.invariants import CheckContext
from repro.check.runner import explore, replay, run_once
from repro.check.scenarios import SCENARIOS, Scenario, make_scenario
from repro.check.strategies import RandomWalk, ReplayStrategy
from repro.check.traces import DecisionTrace, minimize_decisions
from repro.sim.resources import SimMutex


class TestCleanExploration:
    def test_queue_survives_exploration(self, tmp_path):
        res = explore("queue", schedules=30, seed=0, out_dir=tmp_path)
        assert res.ok
        assert res.schedules_run == 30
        assert list(tmp_path.iterdir()) == []  # no failures -> no trace files

    def test_graph_survives_exploration(self, tmp_path):
        res = explore("graph", schedules=15, seed=0, out_dir=tmp_path)
        assert res.ok

    def test_unknown_target(self):
        with pytest.raises(ValueError, match="unknown target"):
            explore("nonsense", schedules=1)


class TestMutationCaught:
    def test_unlocked_split_caught_and_minimized(self, tmp_path):
        """The acceptance bar from the issue: a queue with the split-move
        lock removed must be caught within 500 schedules, and the failure
        must come back as a minimized, replayable trace."""
        res = explore(
            "queue",
            schedules=500,
            seed=0,
            mutation="unlocked_split",
            out_dir=tmp_path,
        )
        assert not res.ok
        failure = res.failures[0]
        assert failure.outcome.signature[0] == "invariants"
        assert "queue-consistency" in failure.outcome.signature[1]
        assert failure.replay_confirmed
        assert failure.trace_path is not None and failure.trace_path.exists()
        assert failure.minimized_path is not None and failure.minimized_path.exists()
        assert failure.decisions_minimized <= failure.decisions_total

        # the minimized trace still reproduces the same failure class
        min_trace = DecisionTrace.load(failure.minimized_path)
        outcome = replay(min_trace)
        assert outcome.signature_json == min_trace.signature

    def test_without_mutation_same_seeds_are_clean(self, tmp_path):
        res = explore("queue", schedules=50, seed=0, out_dir=tmp_path)
        assert res.ok

    def test_no_dirty_mark_caught_on_steal_workload(self, tmp_path):
        """Dropping §5.3's steal marking lets the root terminate early;
        the steal-only scenario exposes it at low depth."""
        res = explore(
            "steals",
            schedules=100,
            seed=0,
            mutation="no_dirty_mark",
            out_dir=tmp_path,
        )
        assert not res.ok
        failure = res.failures[0]
        kind = failure.outcome.signature[0]
        assert kind in ("invariants", "error")
        if kind == "invariants":
            assert set(failure.outcome.signature[1]) & {
                "no-early-termination",
                "exactly-once",
            }
        assert failure.replay_confirmed


class DeadlockScenario(Scenario):
    """Two mutexes acquired in opposite orders, staggered so the default
    schedule completes but adversarial interleavings deadlock."""

    name = "deadlock-demo"
    nprocs = 2
    max_events = 50_000

    def build(self, engine):
        a = SimMutex(engine, 0, "A")
        b = SimMutex(engine, 1, "B")

        def main(proc):
            if proc.rank == 1:
                # default order: rank 0 completes both (remote) acquires
                # before rank 1 wakes; only reordered schedules deadlock
                proc.sleep(40e-6)
            first, second = (a, b) if proc.rank == 0 else (b, a)
            first.acquire(proc)
            proc.sleep(1e-6)
            second.acquire(proc)
            second.release(proc)
            first.release(proc)

        engine.spawn_all(main)
        return CheckContext(expect_complete=False)

    def checkers(self):
        return []


@pytest.fixture
def deadlock_target():
    SCENARIOS["deadlock-demo"] = DeadlockScenario
    try:
        yield "deadlock-demo"
    finally:
        del SCENARIOS["deadlock-demo"]


class TestDeadlockExploration:
    def test_default_schedule_is_clean(self, deadlock_target):
        out = run_once(make_scenario(deadlock_target), None)
        assert out.error is None

    def test_exploration_finds_and_replays_the_deadlock(self, deadlock_target, tmp_path):
        res = explore(deadlock_target, schedules=200, seed=0, out_dir=tmp_path)
        assert not res.ok
        failure = res.failures[0]
        assert failure.outcome.signature == ("deadlock", (0, 1))
        assert sorted(r for r, _ in failure.outcome.parked) == [0, 1]
        assert failure.replay_confirmed

        trace = DecisionTrace.load(failure.trace_path)
        replayed = replay(trace)
        assert replayed.signature == ("deadlock", (0, 1))


class TestTraces:
    def test_roundtrip(self, tmp_path):
        trace = DecisionTrace(
            target="queue",
            strategy="random",
            strategy_seed=4,
            engine_seed=0,
            nprocs=3,
            schedule_index=9,
            failure="[queue-consistency] boom",
            mutation="unlocked_split",
            signature=["invariants", ["queue-consistency"]],
            decisions=[{"k": "pick", "rank": 1}, {"k": "delay", "i": 3, "s": 1e-6, "site": "sync"}],
        )
        path = trace.save(tmp_path / "t.json")
        loaded = DecisionTrace.load(path)
        assert loaded == trace

    def test_unsupported_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError, match="unsupported trace format"):
            DecisionTrace.load(path)

    def test_minimize_to_single_culprit(self):
        decisions = [{"k": "pick", "rank": r} for r in range(40)]
        culprit = {"k": "pick", "rank": 7}

        def reproduces(ds):
            return culprit in ds

        minimized, replays = minimize_decisions(decisions, reproduces)
        assert minimized == [culprit]
        assert replays > 0

    def test_minimize_respects_replay_budget(self):
        decisions = [{"k": "pick", "rank": r} for r in range(64)]
        calls = []

        def reproduces(ds):
            calls.append(1)
            return len(ds) >= 2  # any two decisions reproduce

        minimize_decisions(decisions, reproduces, max_replays=10)
        assert len(calls) <= 10


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path):
        from repro.check.__main__ import main

        assert main(["--target", "queue", "--schedules", "10", "--out", str(tmp_path)]) == 0

    def test_mutated_run_exits_nonzero_and_replays(self, tmp_path):
        from repro.check.__main__ import main

        code = main(
            [
                "--target",
                "queue",
                "--schedules",
                "300",
                "--mutate",
                "unlocked_split",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 1
        min_traces = sorted(tmp_path.glob("*.min.json"))
        assert min_traces
        # the trace records its mutation, so replay re-applies it itself
        assert main(["--replay", str(min_traces[0])]) == 0
