"""Worker pools: the process boundary under the fleet scheduler.

:class:`ProcessPool` runs workers as ``multiprocessing`` children
(forkserver by default — children fork from a warm server that has
already imported the runtime, so per-worker startup is cheap and no
engine threads leak across the fork).  :class:`InlinePool` implements
the same interface but executes jobs synchronously in the parent; the
scheduler's policy tests use it to exercise deques, stealing, and
quiescence deterministically without process machinery.

The pool surface is three calls — ``send``, ``poll``, ``respawn`` —
plus ``close``.  ``poll`` multiplexes over every live worker's result
pipe *and* process sentinel, so a worker that dies without replying
(SIGKILL, OOM, segfault) surfaces as a ``crash`` event instead of a
hang: crash detection is the pool's one non-trivial job.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from multiprocessing.connection import wait as _conn_wait

from repro.fleet.jobs import Job, JobResult, execute_job
from repro.fleet.worker import worker_main

__all__ = ["WorkerEvent", "ProcessPool", "InlinePool", "default_start_method"]

#: Modules the forkserver imports before the first worker forks, so the
#: heavy runtime import cost is paid once per campaign, not per worker.
#: ``repro.obs.scenarios`` covers the ``obs`` jobs of ``fleet trace``
#: (recording + live telemetry), which would otherwise re-import the
#: app presets in every worker.
_PRELOAD = ["repro.fleet.worker", "repro.check.runner", "repro.obs.scenarios"]


def default_start_method() -> str:
    """``forkserver`` where available (Linux/macOS), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


@dataclass(frozen=True)
class WorkerEvent:
    """One thing that happened on the pool: a result or a dead worker."""

    worker: int
    kind: str  #: "result" | "crash"
    result: JobResult | None = None


class _Slot:
    """Book-keeping for one worker seat (survives respawns)."""

    __slots__ = ("conn", "proc", "alive")

    def __init__(self, conn, proc) -> None:
        self.conn = conn
        self.proc = proc
        self.alive = True


class ProcessPool:
    """``nworkers`` seats, each backed by a child process and a pipe."""

    def __init__(
        self,
        nworkers: int,
        start_method: str | None = None,
        flight_dir: str | None = None,
    ) -> None:
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.nworkers = nworkers
        #: When set, workers arm the crash flight recorder and drop
        #: per-job breadcrumbs here (see repro.fleet.worker).
        self.flight_dir = None if flight_dir is None else str(flight_dir)
        self._ctx = multiprocessing.get_context(start_method or default_start_method())
        if self._ctx.get_start_method() == "forkserver":
            try:
                self._ctx.set_forkserver_preload(_PRELOAD)
            except Exception:  # pragma: no cover - preload is an optimization
                pass
        self._slots: list[_Slot] = [self._spawn(w) for w in range(nworkers)]

    def _spawn(self, worker_id: int) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, self.flight_dir),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Slot(parent_conn, proc)

    # ------------------------------------------------------------------ #
    # Scheduler interface
    # ------------------------------------------------------------------ #
    def pid(self, worker: int) -> int | None:
        return self._slots[worker].proc.pid

    def send(self, worker: int, job: Job) -> None:
        slot = self._slots[worker]
        if not slot.alive:
            raise RuntimeError(f"worker {worker} is dead; respawn before sending")
        slot.conn.send(job)

    def respawn(self, worker: int) -> None:
        """Replace a dead worker's seat with a fresh process."""
        old = self._slots[worker]
        if old.alive:
            raise RuntimeError(f"worker {worker} is still alive")
        try:
            old.conn.close()
        except OSError:
            pass
        old.proc.join(timeout=1.0)
        self._slots[worker] = self._spawn(worker)

    def poll(self, timeout: float) -> list[WorkerEvent]:
        """Wait up to ``timeout`` seconds for results or worker deaths."""
        watch = {}
        for w, slot in enumerate(self._slots):
            if slot.alive:
                watch[slot.conn] = w
                watch[slot.proc.sentinel] = w
        if not watch:
            return []
        events: list[WorkerEvent] = []
        crashed: set[int] = set()
        for obj in _conn_wait(list(watch), timeout):
            w = watch[obj]
            slot = self._slots[w]
            if not slot.alive or w in crashed:
                continue
            if obj is slot.conn:
                try:
                    result = slot.conn.recv()
                except (EOFError, OSError):
                    slot.alive = False
                    crashed.add(w)
                    events.append(WorkerEvent(worker=w, kind="crash"))
                else:
                    events.append(WorkerEvent(worker=w, kind="result", result=result))
            else:  # process sentinel: worker died without replying
                slot.alive = False
                crashed.add(w)
                events.append(WorkerEvent(worker=w, kind="crash"))
        return events

    def close(self) -> None:
        """Shut every worker down; escalate to terminate/kill stragglers."""
        for slot in self._slots:
            if slot.alive:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            slot.proc.join(timeout=2.0)
            if slot.proc.is_alive():  # pragma: no cover - defensive
                warnings.warn(f"terminating unresponsive {slot.proc.name}")
                slot.proc.terminate()
                slot.proc.join(timeout=1.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join(timeout=1.0)
            try:
                slot.conn.close()
            except OSError:
                pass
            slot.alive = False

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InlinePool:
    """Same interface, no processes: jobs execute synchronously on send.

    For scheduler policy tests and debugging.  ``crash``/``exit``
    probes cannot be simulated inline (they would kill the parent), so
    the pool refuses them; use :class:`ProcessPool` for failure-path
    tests.
    """

    def __init__(self, nworkers: int, flight_dir: str | None = None) -> None:
        if nworkers < 1:
            raise ValueError("nworkers must be >= 1")
        self.nworkers = nworkers
        # Accepted for interface parity; inline jobs run in the parent,
        # which arms its own flight recorder via $REPRO_FLIGHT_DIR.
        self.flight_dir = None if flight_dir is None else str(flight_dir)
        self._pending: list[WorkerEvent] = []

    def pid(self, worker: int) -> int | None:
        return None

    def send(self, worker: int, job: Job) -> None:
        if job.kind == "probe" and job.params.get("action") in ("crash", "exit"):
            raise ValueError("crash/exit probes require a ProcessPool")
        self._pending.append(
            WorkerEvent(worker=worker, kind="result", result=execute_job(job, worker))
        )

    def respawn(self, worker: int) -> None:  # pragma: no cover - nothing dies inline
        pass

    def poll(self, timeout: float) -> list[WorkerEvent]:
        out, self._pending = self._pending, []
        return out

    def close(self) -> None:
        self._pending.clear()

    def __enter__(self) -> "InlinePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
