"""CLI for the fleet meta-scheduler.

Examples::

    # shard a check campaign over 4 workers
    python -m repro.fleet explore --target queue steals --schedules 400 --jobs 4

    # the whole mutation matrix, one cell per job
    python -m repro.fleet matrix --jobs 4

    # measure the scaling trajectory and write BENCH_fleet.json
    python -m repro.fleet bench

    # fleet self-test: probe jobs, including a worker crash + requeue
    python -m repro.fleet probe --jobs 2 --crash

    # record several targets across workers; merge into one trace with
    # per-worker process tracks (open fleet_trace.json in Perfetto)
    python -m repro.fleet trace --target queue steals uts-small --jobs 2

    # same, plus per-worker telemetry feeds merged into one timeline
    # (inspect with: python -m repro.obs top fleet_live.jsonl)
    python -m repro.fleet trace --target queue steals --jobs 2 \
        --live fleet_live.jsonl

``repro.check explore --jobs N`` and ``repro.bench --jobs N`` forward
here, so the fleet is reachable from the tools it parallelizes.
Passing ``--flight-dir DIR`` to any campaign arms the crash flight
recorder in every worker (see docs/observability.md): engine failures
dump their last spans there, and a worker death leaves a
``fleet-crash-*.json`` report beside the worker's breadcrumb.
"""

from __future__ import annotations

import argparse
import sys

from repro.fleet.bench import (
    DEFAULT_JOBS_LEVELS,
    DEFAULT_SCHEDULES,
    run_fleet_bench,
    write_fleet_json,
)
from repro.fleet.jobs import Job, explore_jobs, mutation_jobs, obs_jobs
from repro.fleet.results import failing_set_digest, merge_explore, persist_failures
from repro.fleet.scheduler import FleetReport, FleetScheduler

#: Mutation-matrix cells: each seeded bug paired with the scenario whose
#: invariants expose it under schedule exploration (the pairs CI's
#: checker self-test exercises).  ``fence_elision`` and
#: ``late_dirty_mark`` are deliberately absent: those bugs are caught by
#: the race detector (``repro.analyze race --mutate``) and the pinned
#: task-graph regression workload, not by random exploration.
MATRIX_CELLS = (
    ("queue", "unlocked_split"),
    ("steals", "no_dirty_mark"),
)


def _progress_printer(stats: dict) -> None:
    print(
        f"  [{stats['wall_s']:6.1f}s] {stats['done']}/{stats['total']} jobs  "
        f"{stats['jobs_per_sec']:5.1f} jobs/s  "
        f"occupancy {stats['occupancy']:.0%}  steals {stats['steals']}"
        + (f"  requeues {stats['requeues']}" if stats["requeues"] else ""),
        flush=True,
    )


def _print_fleet_summary(report: FleetReport) -> None:
    print(
        f"fleet: {len(report.completed)}/{report.jobs_total} jobs on "
        f"{report.nworkers} workers in {report.wall_s:.1f}s "
        f"({report.jobs_per_sec:.1f} jobs/s, {report.steals} steals, "
        f"{report.waves} waves)"
    )
    if report.worker_deaths:
        print(
            f"  worker deaths: {report.worker_deaths} "
            f"(requeued: {len(report.requeued_keys)})"
        )
    for c in report.crashed:
        print(f"  CRASHED {c['key']}: {c['error']}")
    for r in report.failed_results:
        print(f"  JOB ERROR {r.key}: {r.error}")


def explore_main(args: argparse.Namespace) -> int:
    """Shared implementation behind ``repro.fleet explore`` and
    ``repro.check explore``."""
    mutation = None if args.mutate == "none" else args.mutate
    jobs = explore_jobs(
        args.target,
        args.schedules,
        strategy=args.strategy,
        seed=args.seed,
        engine_seed=args.engine_seed,
        mutation=mutation,
        batch=args.batch,
        nworkers=args.jobs,
    )
    sched = FleetScheduler(
        args.jobs,
        progress=None if args.quiet else _progress_printer,
        flight_dir=args.flight_dir,
    )
    report = sched.run(jobs)
    _print_fleet_summary(report)
    summary = merge_explore(report.completed)
    digest = failing_set_digest(summary)
    print(
        f"explored {summary.schedules_run} schedules "
        f"({summary.events_total} events) across {sorted(summary.per_target)}"
    )
    print(f"failing set: {len(summary.failures)} distinct (digest {digest[:16]})")
    for f in summary.failures:
        print(
            f"  [{f.target}] schedule #{f.index} (seed {f.strategy_seed}): "
            f"{f.failure}"
        )
    if summary.failures and not args.no_persist:
        paths = persist_failures(
            summary, args.out, engine_seed=args.engine_seed, mutation=mutation
        )
        for p in paths:
            print(f"  trace: {p}")
    if not report.ok:
        return 2
    return 1 if summary.failures else 0


def bench_main(args: argparse.Namespace) -> int:
    print(f"# fleet scaling — jobs levels {args.jobs_levels}\n")
    doc = run_fleet_bench(
        jobs_levels=tuple(args.jobs_levels),
        schedules=args.schedules,
        seed=args.seed,
    )
    for e in doc["entries"]:
        print(
            f"jobs={e['jobs']}: {e['schedules_per_sec']:.1f} schedules/s "
            f"(speedup {e['speedup']:.2f}x)"
        )
    if not args.no_json:
        out = write_fleet_json(doc, args.json)
        print(f"\nfleet record -> {out}")
    return 0


def matrix_main(args: argparse.Namespace) -> int:
    jobs = mutation_jobs(list(MATRIX_CELLS), schedules=args.schedules, seed=args.seed)
    sched = FleetScheduler(args.jobs, progress=None if args.quiet else _progress_printer)
    report = sched.run(jobs)
    _print_fleet_summary(report)
    exit_code = 0
    for res in sorted(report.completed, key=lambda r: r.key):
        if not res.ok:
            exit_code = 2
            continue
        p = res.payload
        status = "caught" if p["caught"] else "MISSED"
        print(f"  {p['target']:<12} {p['mutation']:<18} {status}")
        if not p["caught"]:
            exit_code = 1
    if not report.ok:
        exit_code = 2
    return exit_code


def trace_main(args: argparse.Namespace) -> int:
    from repro.obs.stream import merge_spills

    jobs = obs_jobs(
        args.target,
        args.out,
        nprocs=args.nprocs,
        seed=args.seed,
        window=args.window,
        live=bool(args.live),
        live_interval=args.live_interval,
    )
    sched = FleetScheduler(
        args.jobs,
        progress=None if args.quiet else _progress_printer,
        flight_dir=args.flight_dir,
    )
    report = sched.run(jobs)
    _print_fleet_summary(report)
    # One process track per recorded run, labelled with the worker that
    # produced it; pids are assigned in key order so the merged trace is
    # independent of completion order.
    items = []
    for res in sorted(report.completed, key=lambda r: r.key):
        if not res.ok:
            continue
        p = res.payload
        items.append(
            (len(items) + 1, f"w{res.worker}:{p['target']}", p["spill_dir"])
        )
        print(
            f"  {p['target']:<12} w{res.worker}  {p['spans']:>8} spans  "
            f"{p['edges']:>6} edges  {p['events']:>8} events"
            + (f"  DROPPED {p['dropped']}" if p["dropped"] else "")
        )
    if not items:
        print("no successful recordings; nothing to merge")
        return 2
    out = merge_spills(items, args.trace)
    print(f"merged trace -> {out} ({len(items)} process tracks)")
    if args.live:
        from repro.obs.live import merge_feeds

        feeds = [
            (res.worker, res.payload["live_path"])
            for res in sorted(report.completed, key=lambda r: r.key)
            if res.ok and res.payload.get("live_path")
        ]
        merged = merge_feeds(feeds, args.live)
        print(
            f"merged live feed -> {args.live} "
            f"({len(merged['frames'])} frames from {len(feeds)} workers)"
        )
    return 0 if report.ok else 2


def probe_main(args: argparse.Namespace) -> int:
    jobs = [
        Job(kind="probe", key=f"probe/{i}", params={"action": "sleep", "seconds": 0.02})
        for i in range(args.count)
    ]
    if args.crash:
        jobs.append(Job(kind="probe", key="probe/crash", params={"action": "crash"}))
    report = FleetScheduler(args.jobs, flight_dir=args.flight_dir).run(jobs)
    _print_fleet_summary(report)
    # A --crash probe is *expected* to end up flagged after one requeue;
    # anything else unaccounted for is a self-test failure.
    expected_crashed = 1 if args.crash else 0
    ok = (
        len(report.completed) == args.count
        and len(report.crashed) == expected_crashed
        and report.accounted() == report.jobs_total
    )
    print(f"self-test: {'ok' if ok else 'FAILED'}")
    return 0 if ok else 1


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Work-stealing multi-core meta-scheduler for the "
        "repro toolchain (see docs/fleet.md).",
    )
    sub = p.add_subparsers(dest="cmd", required=True)

    ex = sub.add_parser("explore", help="shard a check campaign over workers")
    add_explore_arguments(ex)

    be = sub.add_parser("bench", help="measure scaling; write BENCH_fleet.json")
    be.add_argument("--jobs-levels", type=int, nargs="*",
                    default=list(DEFAULT_JOBS_LEVELS),
                    help="worker counts to measure (default: 1 2 4)")
    be.add_argument("--schedules", type=int, default=DEFAULT_SCHEDULES,
                    help="schedules per scenario (default: %(default)s)")
    be.add_argument("--seed", type=int, default=0)
    be.add_argument("--json", default="BENCH_fleet.json", metavar="PATH")
    be.add_argument("--no-json", action="store_true")

    ma = sub.add_parser("matrix", help="run the mutation matrix, one cell per job")
    ma.add_argument("--jobs", type=int, default=2, help="worker count")
    ma.add_argument("--schedules", type=int, default=200,
                    help="schedules per cell (default: %(default)s)")
    ma.add_argument("--seed", type=int, default=0)
    ma.add_argument("--quiet", action="store_true")

    tr = sub.add_parser(
        "trace", help="record targets across workers; merge one fleet trace"
    )
    add_trace_arguments(tr)

    pr = sub.add_parser("probe", help="fleet self-test (incl. crash handling)")
    pr.add_argument("--jobs", type=int, default=2, help="worker count")
    pr.add_argument("--count", type=int, default=8, help="probe jobs to run")
    pr.add_argument("--crash", action="store_true",
                    help="include a probe that SIGKILLs its worker")
    add_flight_argument(pr)
    return p


def add_flight_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="arm the crash flight recorder in every worker; dumps, "
        "breadcrumbs and crash reports land here",
    )


def add_trace_arguments(p: argparse.ArgumentParser) -> None:
    from repro.obs.scenarios import TARGETS

    p.add_argument("--target", nargs="+", default=["queue", "steals"],
                   choices=sorted(TARGETS),
                   help="obs targets to record (default: queue steals)")
    p.add_argument("--jobs", type=int, default=2, help="worker count")
    p.add_argument("--nprocs", type=int, default=4,
                   help="simulated ranks for app targets (default: 4)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window", type=float, default=None, metavar="SEC",
                   help="rolling metrics window interval (virtual seconds)")
    p.add_argument("--live", default=None, metavar="PATH",
                   help="publish per-worker telemetry feeds and merge "
                   "them into one cluster-wide feed at PATH")
    p.add_argument("--live-interval", type=float, default=None, metavar="SEC",
                   help="telemetry snapshot interval (virtual seconds; "
                   "default: --window, else 100us)")
    p.add_argument("--out", default="scioto-fleet-trace",
                   help="working directory for per-run spills "
                   "(default: scioto-fleet-trace/)")
    p.add_argument("--trace", default="fleet_trace.json", metavar="PATH",
                   help="merged Chrome trace output (default: %(default)s)")
    p.add_argument("--quiet", action="store_true")
    add_flight_argument(p)


def add_explore_arguments(p: argparse.ArgumentParser) -> None:
    """Explore-campaign flags, shared with ``repro.check explore``."""
    from repro.check.mutations import MUTATIONS
    from repro.check.scenarios import SCENARIOS
    from repro.check.strategies import STRATEGIES

    p.add_argument("--target", nargs="+", default=["queue"],
                   choices=sorted(SCENARIOS) + ["all"],
                   help="scenario(s) to check (default: queue)")
    p.add_argument("--schedules", type=int, default=500,
                   help="schedules per target (default: %(default)s)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fleet worker count (default: 1)")
    p.add_argument("--strategy", default="random", choices=sorted(STRATEGIES))
    p.add_argument("--seed", type=int, default=0, help="base campaign seed")
    p.add_argument("--engine-seed", type=int, default=0)
    p.add_argument("--mutate", default="none", choices=sorted(MUTATIONS))
    p.add_argument("--batch", type=int, default=None,
                   help="schedules per job (default: auto, ~4 jobs/worker)")
    p.add_argument("--out", default="scioto-check",
                   help="directory for failure traces (default: scioto-check/)")
    p.add_argument("--no-persist", action="store_true",
                   help="skip writing failure trace files")
    p.add_argument("--quiet", action="store_true",
                   help="suppress live progress lines")
    add_flight_argument(p)


def normalize_explore_targets(args: argparse.Namespace) -> None:
    """Expand ``--target all`` into the full scenario matrix."""
    from repro.check.scenarios import SCENARIOS

    if "all" in args.target:
        args.target = sorted(SCENARIOS)


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.cmd == "explore":
        normalize_explore_targets(args)
        return explore_main(args)
    if args.cmd == "bench":
        return bench_main(args)
    if args.cmd == "matrix":
        return matrix_main(args)
    if args.cmd == "trace":
        return trace_main(args)
    if args.cmd == "probe":
        return probe_main(args)
    raise AssertionError(f"unhandled command {args.cmd!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
