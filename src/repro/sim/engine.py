"""Deterministic discrete-event engine with direct-handoff processes.

The engine runs ``nprocs`` simulated processes.  Each process executes
either a plain (blocking-style) Python function in its own execution
context — an OS thread or a greenlet, depending on the switch backend —
or a *generator* function driven as a coroutine on the engine's single
stack (the ``coro`` backend's trampoline).  Either way the engine only
ever lets **one** context run at a time: the process whose virtual
clock is smallest.  This gives us the best of both worlds:

* Runtime and application code reads exactly like the paper's C API —
  ordinary function calls — or, on the coroutine path, the same calls
  threaded through ``yield from``.
* Execution is fully deterministic: events are ordered by
  ``(virtual time, insertion sequence)``, so a given seed always produces
  the same interleaving, the same steal pattern, and the same timings —
  on every backend (see :mod:`repro.sim.backends`).

Time model
----------

Each process carries a local virtual clock (``proc.now``, in seconds).
Pure computation is charged *lazily* with :meth:`Proc.advance` — no
context switch.  Any access to state shared between processes must first
call :meth:`Proc.sync`, which re-enqueues the process at its current
clock and hands control to whichever process is earliest.  This
serializes all shared-state accesses in global virtual-time order, which
is exactly the guarantee a sequentially-consistent PGAS machine provides.

Blocking primitives (mutex acquire, message receive) use
:meth:`Proc.park`: the process suspends without scheduling a wake-up and
another process later calls :meth:`Engine.wake` on it.  If every
remaining process is parked, the engine raises
:class:`~repro.util.errors.SimDeadlockError` naming the blocked
processes — protocol bugs fail loudly instead of hanging.

Coroutine protocol
------------------

Every blocking primitive has a ``co_``-prefixed twin (:meth:`Proc.co_sync`,
:meth:`Proc.co_park`, :meth:`Proc.co_park_until`) that **yields** the
process instead of switching execution contexts.  The runtime layers
thread these through ``yield from``, so a generator main function
suspends all the way down to its driver — the ``coro`` backend's
trampoline, where resuming a process is a single ``send()`` call — with
one frame hop per level and no OS involvement.  The classic blocking
forms are thin wrappers that :func:`drive` the coroutine forms with
inline dispatches, so both calling conventions execute the *same*
scheduling code and stay bit-for-bit equivalent on every backend.

Switching costs
---------------

The scheduling decision runs in the *yielding* context and control
passes directly to the chosen successor — the engine context only runs
at startup, shutdown, and failure.  Two further fast paths avoid the
switch entirely:

* **Sync elision**: when a syncing process would be resumed immediately
  anyway (no other live event at or before its clock), :meth:`Proc.sync`
  just counts the event and returns.  Disabled under exploring
  strategies, whose decision points must see every event.
* **Self-resume**: when the dispatched event belongs to the yielding
  process itself (e.g. a lone :meth:`Proc.park_until` timeout), the
  dispatch returns inline.

See ``docs/performance.md`` for backend selection and measured costs.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator, Iterable
from dataclasses import dataclass
from types import GeneratorType
from typing import Any

import numpy as np

from repro.sim.backends import SwitchBackend, make_backend
from repro.sim.machines import MachineSpec, uniform_cluster
from repro.util.errors import SimDeadlockError, SimLimitError, SimShutdown

__all__ = [
    "Engine",
    "Proc",
    "SchedulingStrategy",
    "SimResult",
    "blocking",
    "blocking_method",
    "drive",
    "run_spmd",
]


def drive(gen: Generator) -> Any:
    """Run a runtime coroutine to completion with blocking dispatches.

    The adapter between the two calling conventions: a ``co_``-style
    generator yields each process that must suspend, and on backends
    where the caller owns a real execution context (thread, greenlet,
    thread-sem) the suspension is simply a blocking dispatch performed
    inline.  Returns the generator's return value.  Because the
    coroutine itself runs the exact same scheduling code either way,
    blocking and coroutine callers are bit-for-bit equivalent.
    """
    try:
        send = gen.send
        while True:
            proc = send(None)
            proc.engine._dispatch(proc)
    except StopIteration as stop:
        return stop.value
    except BaseException:
        # Unwind the suspended frames deterministically (finally blocks,
        # span context managers) before propagating — e.g. SimShutdown
        # raised out of a dispatch during teardown.
        gen.close()
        raise


def blocking(co_fn: Callable[..., Generator]) -> Callable[..., Any]:
    """Blocking wrapper for a module-level coroutine function."""
    name = co_fn.__name__
    public = name[3:] if name.startswith("co_") else name

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        return drive(co_fn(*args, **kwargs))

    wrapper.__name__ = public
    wrapper.__qualname__ = co_fn.__qualname__.replace(name, public)
    wrapper.__doc__ = f"Blocking form of :func:`{name}` (see that function)."
    return wrapper


def blocking_method(co_name: str) -> Callable[..., Any]:
    """Blocking wrapper that resolves method ``co_name`` at call time.

    Late binding keeps monkey-patched coroutine methods (the model
    checker's mutations) visible through the blocking API as well.
    Works for classmethods too: ``create =
    classmethod(blocking_method("co_create"))``.
    """
    public = co_name[3:] if co_name.startswith("co_") else co_name

    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        return drive(getattr(self, co_name)(*args, **kwargs))

    wrapper.__name__ = public
    wrapper.__doc__ = f"Blocking form of :meth:`{co_name}` (see that method)."
    return wrapper


class SchedulingStrategy:
    """Pluggable policy for the engine's scheduling decision points.

    The engine consults its strategy at four points: every :meth:`Proc.sync`
    and :meth:`Engine.wake` (latency injection via :meth:`delay`), every
    :meth:`Proc.park` (:meth:`on_park`, bookkeeping only), and — when
    :attr:`explores` is True — every resume decision (:meth:`choose`).

    The base class is the **deterministic** strategy: it injects no delay
    and leaves resume selection to the engine's ``(virtual time, insertion
    sequence)`` heap order, reproducing the engine's historical behaviour
    bit-for-bit.  Schedule-exploration strategies (``repro.check``) set
    ``explores = True`` and override :meth:`choose` to steer the simulation
    through adversarial interleavings.
    """

    #: When True the engine materializes the full runnable set each event
    #: and asks :meth:`choose`; when False it uses the fast heap-pop path
    #: (and elides switches for immediately-resumable syncs).
    explores: bool = False

    def begin(self, engine: "Engine") -> None:
        """Called once at the start of :meth:`Engine.run`."""
        self.engine = engine

    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        """Pick the next event among ``candidates`` (one per runnable rank).

        ``candidates`` holds ``(time, seq, rank, gen)`` heap entries sorted
        in the engine's default order; return the index to resume next.
        Only called when ``explores`` is True and at least two processes
        are runnable.
        """
        return 0

    def delay(self, proc: "Proc", site: str) -> float:
        """Extra virtual latency (seconds) to inject at ``site``.

        ``site`` is ``"sync"`` (a process yielding at a shared-state
        access) or ``"wake"`` (a wake-up being delivered).  The default
        injects nothing.  The engine validates the resulting schedule
        time: a delay that produces a negative or NaN time raises
        ``ValueError`` naming the site.
        """
        return 0.0

    def on_park(self, proc: "Proc", where: str) -> None:
        """Called when a process parks (blocking primitive)."""


@dataclass
class SimResult:
    """Outcome of a completed simulation run.

    Attributes:
        elapsed: Virtual time at which the last process finished (seconds).
        finish_times: Per-rank virtual finish times.
        events: Number of engine scheduling events processed.
        returns: Per-rank return values of the main functions.
    """

    elapsed: float
    finish_times: list[float]
    events: int
    returns: list[Any]


class Proc:
    """One simulated process (rank) inside an :class:`Engine`.

    Application and runtime code receives a ``Proc`` as its handle to the
    simulated machine: it exposes the rank, the virtual clock, the
    per-rank RNG stream, and the blocking primitives the communication
    layers are built from.  User code normally only touches ``rank``,
    ``nprocs``, ``now``, ``rng`` and :meth:`compute`.
    """

    __slots__ = (
        "engine",
        "rank",
        "rng",
        "finished",
        "blocked_at",
        "state",
        "_gen",
        "_pending",
        "_clock",
        "_cpu_factor",
        "_wake_payload",
        "_exc",
        "_result",
        "_lock",
        "_thread",
        "_glet",
        "_coro",
        "_switch",
    )

    def __init__(self, engine: Engine, rank: int, rng: np.random.Generator) -> None:
        self.engine = engine
        self.rank = rank
        self.rng = rng
        self.finished = False
        self.blocked_at: str | None = None  # description of park site, for deadlock msgs
        self._gen = 0  # resume generation; stale heap entries are skipped
        self._pending = 0  # heap entries carrying the current generation
        self._clock = 0.0
        # The machine model is fixed at engine construction, so this
        # rank's relative CPU speed is a constant: cache it out of the
        # per-task :meth:`compute` path.
        self._cpu_factor = engine.machine.cpu_factor(rank)
        self._wake_payload: Any = None
        self._exc: BaseException | None = None
        self._result: Any = None
        # Backend execution context (whichever the backend uses).
        self._lock = None
        self._thread = None
        self._glet = None
        self._coro = None
        # Reusable one-element tuple for co_sync's suspend path: lets the
        # non-elided fast path return without allocating.
        self._switch = (self,)
        # Free-form per-process scratch used by the comm layers to attach
        # per-rank state (mailboxes, registered regions, ...).
        self.state: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def nprocs(self) -> int:
        """Total number of simulated processes."""
        return self.engine.nprocs

    @property
    def now(self) -> float:
        """Current virtual time of this process, in seconds."""
        return self._clock

    @property
    def machine(self) -> MachineSpec:
        """The machine model this simulation runs on."""
        return self.engine.machine

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Proc rank={self.rank} now={self._clock:.9f} finished={self.finished}>"

    # ------------------------------------------------------------------ #
    # Time primitives
    # ------------------------------------------------------------------ #
    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of local activity to this process's clock.

        Lazy: does not yield to the engine.  Must be followed by
        :meth:`sync` before the next shared-state access.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time {seconds!r}")
        self._clock += seconds

    def compute(self, reference_seconds: float) -> None:
        """Charge CPU work expressed in *reference-machine* seconds.

        The machine model scales the cost by this rank's relative speed,
        which is how heterogeneous (Opteron/Xeon) clusters are modelled.
        """
        self.advance(reference_seconds * self._cpu_factor)

    def sync(self) -> None:
        """Yield to the engine; resume when this process is globally earliest.

        Every operation that reads or writes state shared with another
        process must call this first so that all such operations happen
        in virtual-time order.  (Under an exploring strategy, "earliest"
        becomes "whichever runnable process the strategy picks".)

        When no other live event is scheduled at or before this
        process's clock, the process would be resumed immediately — the
        engine counts the scheduling event but skips the context switch
        entirely (sync elision).
        """
        for _ in self.co_sync():
            self.engine._dispatch(self)

    def co_sync(self) -> Iterable["Proc"]:
        """Coroutine twin of :meth:`sync`: use as ``yield from proc.co_sync()``.

        Returns an iterable that is *empty* when the sync elides —
        nothing is yielded, nothing is allocated — and yields this
        process exactly once when another process must run first.  The
        driver (the ``coro`` backend's trampoline, or :func:`drive` on
        thread-style backends) performs one dispatch per yielded
        process, so both calling conventions run identical scheduling
        code.
        """
        engine = self.engine
        delay_fn = engine._delay_fn
        if delay_fn is not None:
            d = delay_fn(self, "sync")
            if d:
                clock = self._clock + d
                if not clock >= 0.0:  # negative or NaN
                    raise ValueError(
                        f"strategy delay {d!r} at site 'sync' produced invalid "
                        f"time {clock!r} for rank {self.rank}"
                    )
                self._clock = clock
        if engine._elide:
            heap = engine._heap
            procs = engine.procs
            clock = self._clock
            while heap:
                entry = heap[0]
                proc = procs[entry[2]]
                if proc.finished or entry[3] != proc._gen:
                    heapq.heappop(heap)
                    engine._nstale -= 1
                    continue
                if entry[0] > clock:
                    break  # earliest live event is later: we'd run next
                # Another process must run first: full handoff.
                engine._schedule(self, clock, None)
                return self._switch
            # Heap empty or earliest live event strictly later — an
            # elided event: counted, limit-checked, but never switched.
            if engine._tick is not None:
                engine._tick(clock)
            engine.events += 1
            if engine._limits:
                engine._check_limits(clock)
            return ()
        engine._schedule(self, self._clock, None)
        return self._switch

    def sleep(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` and yield to the engine."""
        self.advance(seconds)
        self.sync()

    def co_sleep(self, seconds: float) -> Iterable["Proc"]:
        """Coroutine twin of :meth:`sleep` (``yield from proc.co_sleep(s)``)."""
        self.advance(seconds)
        return self.co_sync()

    def park(self, where: str = "park") -> Any:
        """Suspend until another process calls :meth:`Engine.wake` on us.

        Args:
            where: Human-readable description of the blocking site,
                reported if the simulation deadlocks.

        Returns:
            The payload passed to :meth:`Engine.wake`.
        """
        return drive(self.co_park(where))

    def co_park(self, where: str = "park") -> Generator["Proc", None, Any]:
        """Coroutine twin of :meth:`park`; returns the wake payload."""
        engine = self.engine
        self.blocked_at = where
        engine._parked += 1
        if engine._on_park is not None:
            engine._on_park(self, where)
        yield self
        return self._wake_payload

    def park_until(self, wake_time: float, where: str = "park_until") -> Any:
        """Suspend until ``wake_time`` or an earlier :meth:`Engine.wake`.

        Models a polling loop without per-poll event cost: the process
        resumes the moment something wakes it (e.g. a mailbox post) or at
        the timeout, whichever comes first.  Returns the wake payload, or
        None on timeout.
        """
        return drive(self.co_park_until(wake_time, where))

    def co_park_until(
        self, wake_time: float, where: str = "park_until"
    ) -> Generator["Proc", None, Any]:
        """Coroutine twin of :meth:`park_until`."""
        engine = self.engine
        self.blocked_at = where
        engine._parked += 1
        if engine._on_park is not None:
            engine._on_park(self, where)
        engine._schedule(self, wake_time, None)
        yield self
        return self._wake_payload


class Engine:
    """Deterministic virtual-time scheduler for simulated processes.

    Typical use goes through :func:`run_spmd`; construct an ``Engine``
    directly only when ranks need distinct main functions or when the
    caller wants to inspect the engine after the run.
    """

    def __init__(
        self,
        nprocs: int,
        machine: MachineSpec | None = None,
        seed: int = 0,
        max_events: int | None = None,
        max_time: float | None = None,
        strategy: SchedulingStrategy | None = None,
        backend: str = "auto",
    ) -> None:
        """Create an engine.

        Args:
            nprocs: Number of simulated processes (ranks ``0..nprocs-1``).
            machine: Machine model; defaults to a homogeneous cluster.
            seed: Root seed; each rank gets an independent child stream.
            max_events: Abort with :class:`SimLimitError` after this many
                scheduling events (livelock guard for tests).
            max_time: Abort once virtual time exceeds this many seconds.
            strategy: Scheduling strategy consulted at the engine's
                decision points; None (default) and any strategy with
                ``explores = False`` reproduce the historical
                deterministic ``(time, seq)`` order bit-for-bit.
            backend: Context-switch backend: ``"coro"``, ``"thread"``,
                ``"greenlet"``, ``"thread-sem"``, or ``"auto"`` (the
                default — honours ``$REPRO_SIM_BACKEND``, then picks
                ``coro``, the generator trampoline).  All backends
                produce identical results.
        """
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.strategy = strategy
        self.machine = machine if machine is not None else uniform_cluster(nprocs)
        self.machine.validate(nprocs)
        self.seed = seed
        self.max_events = max_events
        self.max_time = max_time
        self.events = 0
        streams = np.random.SeedSequence(seed).spawn(nprocs)
        self.procs = [Proc(self, r, np.random.default_rng(streams[r])) for r in range(nprocs)]
        self.backend: SwitchBackend = make_backend(backend, self)
        self._heap: list[tuple[float, int, int, int]] = []  # (time, seq, rank, gen)
        self._seq = itertools.count()
        self._nstale = 0  # stale entries still physically in the heap
        self._shutdown = False
        self._started = False
        self._parked = 0
        self._active = 0
        self._failure: BaseException | None = None
        self._finish_times: list[float] = [0.0] * nprocs
        self._current: Proc | None = None
        # Hot-path caches, finalized at the top of run().
        self._delay_fn: Callable[[Proc, str], float] | None = None
        self._on_park: Callable[[Proc, str], None] | None = None
        self._explores = False
        self._elide = True
        self._limits = max_events is not None or max_time is not None
        # True once any observer (tracer, recorder, race detector) has
        # attached — see :meth:`note_observer`.  Hot paths gate their
        # observability hook calls on this flag so an unobserved run
        # pays one attribute read per site instead of a function call
        # plus a dict probe.
        self.observed = False
        # Global shared-state namespace used by comm layers (keyed by layer).
        self.state: dict[str, Any] = {}
        # Called with the failure just before run() re-raises it —
        # observers (e.g. the obs flight recorder) dump state here.
        self.failure_hooks: list[Callable[[BaseException], None]] = []
        # Per-event telemetry tick: called with the event's virtual time
        # from both accounting sites (_pick and the co_sync elision
        # path).  None when no live telemetry bus is attached, so an
        # unobserved run pays one attribute read per event.
        self._tick: Callable[[float], None] | None = None
        self._mains: list[tuple[Callable[..., Any], tuple[Any, ...]] | None] = [None] * nprocs

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def spawn(self, rank: int, fn: Callable[..., Any], *args: Any) -> None:
        """Assign the main function for ``rank``; called before :meth:`run`."""
        if self._started:
            raise RuntimeError("cannot spawn after run() started")
        self._mains[rank] = (fn, args)

    def spawn_all(self, fn: Callable[..., Any], *args: Any) -> None:
        """Assign the same main function to every rank (SPMD style)."""
        for r in range(self.nprocs):
            self.spawn(r, fn, *args)

    def note_observer(self) -> None:
        """Record that an observer attached (tracer, recorder, detector).

        Flips :attr:`observed`, the flag hot paths consult before calling
        the observability hooks.  The hooks still probe their own
        ``state`` key, so setting this spuriously costs time, never
        correctness — and it is never cleared: a detached observer just
        returns the hot paths to calling no-op hooks.
        """
        self.observed = True

    # ------------------------------------------------------------------ #
    # Scheduling internals
    # ------------------------------------------------------------------ #
    def _schedule(self, proc: Proc, time: float, payload: Any) -> None:
        proc._wake_payload = payload
        proc._pending += 1
        heapq.heappush(self._heap, (time, next(self._seq), proc.rank, proc._gen))

    def wake(self, proc: Proc, time: float, payload: Any = None) -> None:
        """Wake a parked process at virtual ``time`` with ``payload``.

        The waker's clock is typically ``time`` or earlier; the wakee's
        clock is advanced to at least ``time`` when it resumes.  If the
        process was parked with a timeout (:meth:`Proc.park_until`), the
        pending timeout entry becomes stale and is skipped.

        Raises:
            ValueError: If the strategy's injected delay produces a
                negative or NaN wake time.
        """
        if proc.blocked_at is None:
            raise RuntimeError(f"wake() on non-parked {proc!r}")
        if self.strategy is not None:
            time += self.strategy.delay(proc, "wake")
            if not time >= 0.0:  # negative or NaN
                raise ValueError(
                    f"strategy delay at site 'wake' produced invalid wake "
                    f"time {time!r} for rank {proc.rank}"
                )
        self._schedule(proc, time, payload)

    @property
    def current(self) -> Proc:
        """The process currently executing (valid only during :meth:`run`)."""
        return self._current

    def _check_limits(self, time: float) -> None:
        """Raise :class:`SimLimitError` if an event limit is exceeded."""
        if self.max_events is not None and self.events > self.max_events:
            raise SimLimitError(f"exceeded max_events={self.max_events}")
        if self.max_time is not None and time > self.max_time:
            raise SimLimitError(
                f"virtual time {time:.6f}s exceeded max_time={self.max_time}s"
            )

    def _next_event(self) -> tuple[float, int, int, int] | None:
        """Select the next (time, seq, rank, gen) entry to resume, or None.

        With no strategy (or a non-exploring one) this is the fast path:
        pop the heap minimum, skipping stale entries.  An exploring
        strategy instead sees the full runnable set — the earliest live
        entry of every runnable process — and picks one; this is the
        decision point schedule exploration drives.  The chosen entry is
        left in place (it goes stale when its process's generation
        bumps) and the heap is compacted whenever stale entries
        outnumber live ones, keeping each scan O(live) amortized
        instead of the seed's per-event O(heap) rebuild.
        """
        heap = self._heap
        procs = self.procs
        if not self._explores:
            pop = heapq.heappop
            while heap:
                entry = pop(heap)
                proc = procs[entry[2]]
                if proc.finished or entry[3] != proc._gen:
                    self._nstale -= 1
                    continue  # stale entry: already resumed since scheduling
                return entry
            return None
        if self._nstale > 32 and self._nstale * 2 > len(heap):
            heap[:] = [
                e for e in heap
                if not procs[e[2]].finished and e[3] == procs[e[2]]._gen
            ]
            heapq.heapify(heap)
            self._nstale = 0
        best: dict[int, tuple[float, int, int, int]] = {}
        for entry in heap:
            proc = procs[entry[2]]
            if proc.finished or entry[3] != proc._gen:
                continue
            cur = best.get(entry[2])
            if cur is None or entry < cur:
                best[entry[2]] = entry
        if not best:
            heap.clear()
            self._nstale = 0
            return None
        candidates = sorted(best.values())
        strat = self.strategy
        idx = strat.choose(candidates) if len(candidates) > 1 else 0
        if not 0 <= idx < len(candidates):
            raise RuntimeError(
                f"strategy chose index {idx} among {len(candidates)} candidates"
            )
        return candidates[idx]

    def _pick(self) -> Proc | None:
        """Choose, account, and return the next process to resume.

        This *is* the scheduling decision: select the next live event,
        bump the chosen process's generation, count the event, check
        limits, and advance its clock.  Returns ``None`` when the engine
        context should resume instead (completion, deadlock, limit
        violation, or a strategy error — failures are recorded in
        ``self._failure`` for :meth:`run` to re-raise).  Called from
        whichever context is yielding: a blocking dispatch or the coro
        backend's trampoline.
        """
        dst: Proc | None = None
        failure: BaseException | None = None
        if self._active:
            try:
                entry = self._next_event()
                if entry is None:
                    parked = [
                        (p.rank, p.blocked_at) for p in self.procs if not p.finished
                    ]
                    blocked = ", ".join(
                        f"rank {p.rank} at {p.blocked_at!r} (t={p.now * 1e6:.3f}us)"
                        for p in self.procs
                        if not p.finished
                    )
                    failure = SimDeadlockError(
                        f"no runnable process; {self._active} still active: {blocked}",
                        parked=parked,
                    )
                else:
                    time = entry[0]
                    proc = self.procs[entry[2]]
                    # The consumed entry (and, when exploring, the one left
                    # in the heap) plus any same-generation siblings go
                    # stale now that the generation bumps.
                    self._nstale += proc._pending - (not self._explores)
                    proc._pending = 0
                    proc._gen += 1
                    if proc.blocked_at is not None:
                        proc.blocked_at = None
                        self._parked -= 1
                    if self._tick is not None:
                        self._tick(time)
                    self.events += 1
                    if self._limits:
                        self._check_limits(time)
                    if time > proc._clock:
                        proc._clock = time
                    self._current = proc
                    dst = proc
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                failure = exc
        if failure is not None:
            if self._failure is None:
                self._failure = failure
            dst = None
        return dst

    def _dispatch(self, src: Proc | None, dying: bool = False) -> None:
        """Resume the next event's process, switching out of ``src``.

        Runs in ``src``'s context (``None`` = the engine context).  On
        deadlock, limit violation, or a strategy error the failure is
        recorded and control returns to the engine context, which
        re-raises from :meth:`run`.  Returns without switching when the
        chosen process is ``src`` itself.
        """
        dst = self._pick()
        if dst is src:
            return  # self-resume (or the engine context staying put)
        if dying:
            self.backend.exit_to(dst)
            return
        self.backend.switch(src, dst)
        if self._shutdown and src is not None:
            raise SimShutdown()

    def _finish(self, proc: Proc) -> None:
        """Per-process epilogue shared by thread-style and coroutine mains."""
        proc.finished = True
        self._active -= 1
        self._finish_times[proc.rank] = proc._clock
        self._nstale += proc._pending
        proc._pending = 0
        if proc._exc is not None and self._failure is None:
            self._failure = proc._exc

    def _proc_main(self, proc: Proc, fn: Callable[..., Any], args: tuple[Any, ...]) -> None:
        """Body of one process context: run ``fn``, then hand off.

        Generator main functions work on every backend: here (thread,
        greenlet, thread-sem) the returned generator is simply driven
        with blocking dispatches.
        """
        if not self._shutdown:
            try:
                res = fn(proc, *args)
                if isinstance(res, GeneratorType):
                    res = drive(res)
                proc._result = res
            except SimShutdown:
                pass
            except BaseException as exc:  # noqa: BLE001 - surfaced by Engine.run
                proc._exc = exc
        self._finish(proc)
        if self._shutdown or self._failure is not None:
            self.backend.exit_to(None)
        else:
            self._dispatch(proc, dying=True)

    def _proc_coro(self, proc: Proc) -> Generator[Proc, None, None]:
        """Coroutine body of one process: the coro backend's unit of work.

        A generator the trampoline resumes with ``send()``; it yields
        every time ``proc`` suspends and returns when the main function
        finishes.  The epilogue runs *inside* the generator so a
        teardown ``throw(SimShutdown)`` still accounts the process.
        """
        fn, args = self._mains[proc.rank]
        if not self._shutdown:
            try:
                res = fn(proc, *args)
                if isinstance(res, GeneratorType):
                    res = yield from res
                proc._result = res
            except SimShutdown:
                pass
            except BaseException as exc:  # noqa: BLE001 - surfaced by Engine.run
                proc._exc = exc
        self._finish(proc)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimResult:
        """Run the simulation to completion and return a :class:`SimResult`.

        Raises:
            SimDeadlockError: If all unfinished processes are parked.
            SimLimitError: If ``max_events``/``max_time`` is exceeded.
            Exception: Any exception raised inside a simulated process is
                re-raised here (after shutting the other contexts down).
        """
        if self._started:
            raise RuntimeError("Engine.run() may only be called once")
        self._started = True
        strat = self.strategy
        if strat is not None:
            strat.begin(self)
        self._delay_fn = strat.delay if strat is not None else None
        self._on_park = strat.on_park if strat is not None else None
        self._explores = strat is not None and strat.explores
        self._elide = not self._explores
        for rank, main in enumerate(self._mains):
            if main is None:
                raise RuntimeError(f"rank {rank} has no main function; call spawn()")
        self._active = self.nprocs
        self.backend.prepare()
        try:
            for proc, (fn, args) in zip(self.procs, self._mains):
                def main(p=proc, f=fn, a=args) -> None:
                    self._proc_main(p, f, a)

                self.backend.spawn(proc, main)
                self._schedule(proc, 0.0, None)
            # Hand control to the earliest process; it returns to the
            # engine context only on completion or failure.
            self._dispatch(None)
            if self._failure is not None:
                for hook in self.failure_hooks:
                    try:
                        hook(self._failure)
                    except Exception:  # noqa: BLE001 - a dump must never mask the failure
                        pass
                raise self._failure
        finally:
            self._teardown()
        elapsed = max(self._finish_times) if self._finish_times else 0.0
        return SimResult(
            elapsed=elapsed,
            finish_times=list(self._finish_times),
            events=self.events,
            returns=[p._result for p in self.procs],
        )

    def _teardown(self) -> None:
        """Unwind any still-running process contexts via :class:`SimShutdown`."""
        self._shutdown = True
        for proc in self.procs:
            self.backend.kill(proc)
        self.backend.finalize()


def run_spmd(
    nprocs: int,
    main: Callable[..., Any],
    *args: Any,
    machine: MachineSpec | None = None,
    seed: int = 0,
    max_events: int | None = None,
    max_time: float | None = None,
    strategy: SchedulingStrategy | None = None,
    backend: str = "auto",
) -> SimResult:
    """Run ``main(proc, *args)`` on every rank and return the result.

    This is the standard entry point: it mirrors launching an SPMD job
    with ``mpirun -np nprocs``.

    Example:
        >>> def hello(proc):
        ...     proc.compute(1e-6)
        ...     return proc.rank
        >>> result = run_spmd(4, hello)
        >>> result.returns
        [0, 1, 2, 3]
    """
    eng = Engine(
        nprocs,
        machine=machine,
        seed=seed,
        max_events=max_events,
        max_time=max_time,
        strategy=strategy,
        backend=backend,
    )
    eng.spawn_all(main, *args)
    return eng.run()
