"""Happens-before data-race detection for the simulated PGAS machine.

A :class:`RaceDetector` attaches to an :class:`~repro.sim.engine.Engine`
(like the tracer: ``RaceDetector.attach(engine)``) and observes two
kinds of events through hooks in the runtime layers:

* **Synchronization** — mutex acquire/release, barrier and collective
  completion, one-sided message delivery (post → poll), remote atomics,
  and fences.  Each maintains the vector-clock partial order: a release
  publishes the releaser's clock on the sync object, the matching
  acquire joins it.
* **Shared-region accesses** — reads/writes of ARMCI shared state
  (split-queue descriptors and metadata, termination flags, GA
  patches), recorded by hook calls placed at the state-touch points in
  ``repro.core`` / ``repro.ga``.

Two accesses to the same region race when they conflict (different
ranks, at least one write) and neither happens-before the other.  This
is the PGAS analogue of a ThreadSanitizer report: it fires on *every*
schedule that executes the unsynchronized code path, not only on the
schedule where the interleaving actually corrupts state — which is what
makes it deterministic where :mod:`repro.check` is a search.

The model knows three access classes (see ``docs/analyze.md``):

* *plain* — ordinary data; participates fully in race detection.
* *atomic* — target-side serialized operations (GA accumulates); never
  races with other atomics, still races with plain accesses.
* *flags* — termination/steal flags are **synchronization objects**
  (release/acquire cells), not data: stores and loads never race among
  themselves, and a load joins the stored clocks.  A *release* store
  (a thief's dirty mark) must be fence-ordered after the initiator's
  earlier one-sided ops to the same target; a store with unfenced
  pending ops is reported as a race between the flag store and the
  pending op — the pair is unordered at the target, which is exactly
  the §5.3 window the fence closes.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

from repro.analyze.capture import TraceCapture
from repro.analyze.vectorclock import VectorClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine, Proc

__all__ = ["Access", "Race", "RaceDetector", "RaceGroup", "dedupe_races", "region_class"]

#: Hook-call frames skipped when attributing an access to a call site.
_SITE_SKIP = (
    "analyze/race.py",
    "analyze/hooks.py",
    "armci/runtime.py",
    "sim/resources.py",
)


def _call_site() -> str:
    """The first stack frame outside the detector/runtime plumbing."""
    frame = sys._getframe(1)
    for _ in range(30):
        if frame is None:
            break
        filename = frame.f_code.co_filename.replace(os.sep, "/")
        if not filename.endswith(_SITE_SKIP):
            short = filename.rsplit("src/", 1)[-1] if "src/" in filename else (
                os.path.basename(filename)
            )
            return f"{short}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass(frozen=True)
class Access:
    """One recorded shared-region access."""

    rank: int
    op: str  # "r", "w", "rw", "a" (atomic), "fw" (flag store)
    region: Hashable
    time: float
    site: str
    vc: tuple[int, ...]

    @property
    def writes(self) -> bool:
        return self.op != "r"

    def describe(self) -> str:
        kind = {"r": "read", "w": "write", "rw": "update", "a": "atomic",
                "fw": "flag store"}.get(self.op, self.op)
        return (
            f"rank {self.rank} {kind} at t={self.time * 1e6:.3f}us "
            f"vc={list(self.vc)} [{self.site}]"
        )


@dataclass(frozen=True)
class Race:
    """A conflicting, happens-before-unordered access pair."""

    kind: str  # "data-race" or "unfenced-flag-store"
    region: Hashable
    first: Access
    second: Access

    def describe(self) -> str:
        head = f"{self.kind} on {self.region!r}:"
        if self.kind == "unfenced-flag-store":
            head = (
                f"{self.kind} on {self.region!r} (flag store not fence-ordered "
                "after an earlier one-sided op to the same target):"
            )
        return f"{head}\n    {self.first.describe()}\n    {self.second.describe()}"


class _Region:
    """Per-region last-access table (one slot per rank and access class)."""

    __slots__ = ("reads", "writes", "atomics")

    def __init__(self) -> None:
        self.reads: dict[int, Access] = {}
        self.writes: dict[int, Access] = {}
        self.atomics: dict[int, Access] = {}


class RaceDetector:
    """Engine-wide vector-clock race detector.

    Attach before :meth:`Engine.run`; read :attr:`races` (or
    :meth:`report`) after the run.  Costs nothing when not attached —
    every hook is a single dict probe, the same pattern as the tracer.
    """

    _KEY = "race-detector"

    def __init__(self, engine: "Engine", capture: bool = False) -> None:
        self.engine = engine
        #: Full-trace event capture for the predictive passes
        #: (:mod:`repro.analyze.predict`); None keeps the detector lean.
        self.capture: TraceCapture | None = (
            TraceCapture(engine) if capture else None
        )
        n = engine.nprocs
        self.vc = [VectorClock(n) for _ in range(n)]
        for rank in range(n):
            self.vc[rank].tick(rank)
        # sync-object clocks
        self._mutex_clocks: dict[int, VectorClock] = {}  # id(mutex) -> clock
        self._rmw_cells: dict[int, VectorClock] = {}  # target rank -> clock
        self._flag_cells: dict[Hashable, VectorClock] = {}  # flag region -> clock
        self._messages: dict[tuple[int, str], deque[VectorClock]] = {}
        # (initiator, target) -> unfenced one-sided write ops, oldest first
        self._pending: dict[tuple[int, int], list[Access]] = {}
        self._regions: dict[Hashable, _Region] = {}
        self.races: list[Race] = []
        self._seen: set[tuple] = set()
        self.accesses = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @classmethod
    def attach(cls, engine: "Engine", capture: bool = False) -> "RaceDetector":
        """Enable race detection on ``engine`` (idempotent).

        ``capture=True`` additionally records the full event trace
        (see :class:`~repro.analyze.capture.TraceCapture`); asking for
        capture on an already-attached detector upgrades it in place.
        """
        inst = engine.state.get(cls._KEY)
        if inst is None:
            inst = cls(engine, capture=capture)
            engine.state[cls._KEY] = inst
            engine.note_observer()
        elif capture and inst.capture is None:
            inst.capture = TraceCapture(engine)
        return inst

    @classmethod
    def of(cls, engine: "Engine") -> "RaceDetector | None":
        """The engine's detector, or None if detection is off."""
        return engine.state.get(cls._KEY)

    # ------------------------------------------------------------------ #
    # Synchronization edges
    # ------------------------------------------------------------------ #
    def on_mutex_request(self, proc: "Proc", mutex: Any) -> None:
        """A mutex was requested (pre-grant).

        No happens-before effect; feeds the capture's wait-for graph so
        a monitored run can fail fast on a closing lock cycle.
        """
        if self.capture is not None:
            self.capture.on_request(proc, mutex)

    def on_mutex_acquire(self, proc: "Proc", mutex: Any) -> None:
        """Join the mutex's release clock into the new holder (acquire)."""
        clock = self._mutex_clocks.get(id(mutex))
        if clock is not None:
            self.vc[proc.rank].join(clock)
        self.vc[proc.rank].tick(proc.rank)
        if self.capture is not None:
            self.capture.on_acquire(proc, mutex)

    def on_mutex_release(self, proc: "Proc", mutex: Any) -> None:
        """Publish the releaser's clock on the mutex (release)."""
        vc = self.vc[proc.rank]
        self._mutex_clocks[id(mutex)] = vc.copy()
        vc.tick(proc.rank)
        if self.capture is not None:
            self.capture.on_release(proc, mutex)

    def on_collective(self, procs: list["Proc"]) -> None:
        """Barrier/allreduce completion: all participants join everyone.

        A barrier also fences: all pending one-sided ops of the
        participants are ordered by it.
        """
        joined = VectorClock(self.engine.nprocs)
        for p in procs:
            joined.join(self.vc[p.rank])
        for p in procs:
            self.vc[p.rank].join(joined)
            self.vc[p.rank].tick(p.rank)
            self.on_fence(p, None)
        if self.capture is not None:
            self.capture.on_collective(procs)

    def on_post(self, proc: "Proc", target: int, tag: str) -> None:
        """A one-sided message deposit carries the sender's clock."""
        key = (target, tag)
        box = self._messages.get(key)
        if box is None:
            box = self._messages[key] = deque()
        box.append(self.vc[proc.rank].copy())
        self.vc[proc.rank].tick(proc.rank)
        if self.capture is not None:
            self.capture.on_post(proc, target, tag)

    def on_poll(self, proc: "Proc", tag: str) -> None:
        """Receiving a message joins the sender's clock (acquire)."""
        box = self._messages.get((proc.rank, tag))
        if box:
            self.vc[proc.rank].join(box.popleft())
            self.vc[proc.rank].tick(proc.rank)
        if self.capture is not None:
            self.capture.on_poll(proc, tag)

    def on_rmw(self, proc: "Proc", target: int) -> None:
        """Acquire side of a remote atomic: rmw requests serialize at the
        target, so the initiator joins the per-target cell before its
        update function runs."""
        cell = self._rmw_cells.get(target)
        if cell is not None:
            self.vc[proc.rank].join(cell)
        self.vc[proc.rank].tick(proc.rank)
        if self.capture is not None:
            self.capture.on_rmw(proc, target)

    def on_rmw_done(self, proc: "Proc", target: int) -> None:
        """Release side of a remote atomic: publish the initiator's clock
        (including any accesses made inside the update function) on the
        per-target cell so the next rmw there is ordered after them."""
        vc = self.vc[proc.rank]
        self._rmw_cells[target] = vc.copy()
        vc.tick(proc.rank)
        if self.capture is not None:
            self.capture.on_rmw_done(proc, target)

    def on_put(self, proc: "Proc", target: int) -> None:
        """Track an unfenced one-sided write for the §5.3 fence discipline."""
        if target == proc.rank:
            return
        if self.capture is not None:
            self.capture.on_put(proc, target)
        key = (proc.rank, target)
        ops = self._pending.get(key)
        if ops is None:
            ops = self._pending[key] = []
        ops.append(
            Access(
                rank=proc.rank,
                op="w",
                region=("one-sided", proc.rank, target),
                time=proc.now,
                site=_call_site(),
                vc=tuple(self.vc[proc.rank].c),
            )
        )

    def on_fence(self, proc: "Proc", target: int | None) -> None:
        """A fence completes this rank's one-sided ops (to ``target`` or all)."""
        if self.capture is not None:
            self.capture.on_fence(proc, target)
        if target is not None:
            self._pending.pop((proc.rank, target), None)
            return
        for key in [k for k in self._pending if k[0] == proc.rank]:
            del self._pending[key]

    # ------------------------------------------------------------------ #
    # Shared-region accesses
    # ------------------------------------------------------------------ #
    def record(
        self,
        proc: "Proc",
        region: Hashable,
        op: str,
        site: str | None = None,
    ) -> None:
        """Record a shared-region access and check it for races.

        ``op`` is ``"r"``, ``"w"``, ``"rw"`` or ``"a"`` (atomic: races
        with plain accesses but not with other atomics).
        """
        vc = self.vc[proc.rank]
        vc.tick(proc.rank)
        access = Access(
            rank=proc.rank,
            op=op,
            region=region,
            time=proc.now,
            site=site if site is not None else _call_site(),
            vc=tuple(vc.c),
        )
        self.accesses += 1
        if self.capture is not None:
            self.capture.on_access(proc, region, op, access.site)
        entry = self._regions.get(region)
        if entry is None:
            entry = self._regions[region] = _Region()
        # A write conflicts with reads, writes and atomics; a read with
        # writes and atomics; an atomic only with plain reads/writes.
        if op == "a":
            against = (entry.reads, entry.writes)
        elif access.writes:
            against = (entry.reads, entry.writes, entry.atomics)
        else:
            against = (entry.writes, entry.atomics)
        for table in against:
            for rank, prior in table.items():
                if rank == proc.rank:
                    continue
                if not self._ordered(prior, vc):
                    self._report("data-race", region, prior, access)
        if op == "a":
            entry.atomics[proc.rank] = access
        else:
            if access.writes:
                entry.writes[proc.rank] = access
            if op in ("r", "rw"):
                entry.reads[proc.rank] = access

    # ------------------------------------------------------------------ #
    # Flag cells (synchronization objects)
    # ------------------------------------------------------------------ #
    def flag_write(
        self,
        proc: "Proc",
        region: Hashable,
        target: int | None = None,
        release: bool = False,
    ) -> None:
        """A store to a termination/steal flag.

        Flags are sync objects: the store publishes the writer's clock
        on the flag cell.  A *release* store (``release=True``, used for
        remote dirty marks) additionally requires the writer's earlier
        one-sided ops to ``target`` to be fenced; an unfenced pending op
        means the pair is unordered at the target and is reported.
        """
        vc = self.vc[proc.rank]
        if release and target is not None:
            pending = self._pending.get((proc.rank, target))
            if pending:
                store = Access(
                    rank=proc.rank,
                    op="fw",
                    region=region,
                    time=proc.now,
                    site=_call_site(),
                    vc=tuple(vc.c),
                )
                self._report("unfenced-flag-store", region, pending[-1], store)
        cell = self._flag_cells.get(region)
        if cell is None:
            cell = self._flag_cells[region] = VectorClock(self.engine.nprocs)
        cell.join(vc)
        vc.tick(proc.rank)
        if self.capture is not None:
            self.capture.on_flag_write(proc, region, target, release)

    def flag_read(self, proc: "Proc", region: Hashable) -> None:
        """A load of a flag joins the stored clocks (acquire)."""
        cell = self._flag_cells.get(region)
        if cell is not None:
            self.vc[proc.rank].join(cell)
        if self.capture is not None:
            self.capture.on_flag_read(proc, region)

    def on_protocol(self, proc: "Proc", kind: str, data: dict) -> None:
        """A runtime-layer protocol event (steal transfer, vote, wave...).

        No happens-before effect; captured verbatim for the predictive
        passes and for witness-strategy gates.
        """
        if self.capture is not None:
            self.capture.on_protocol(proc, kind, data)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _ordered(self, prior: Access, current_vc: VectorClock) -> bool:
        """Has ``current_vc`` observed ``prior`` (epoch test)?"""
        return prior.vc[prior.rank] <= current_vc.c[prior.rank]

    def _report(self, kind: str, region: Hashable, first: Access, second: Access) -> None:
        key = (kind, region, first.rank, first.site, second.rank, second.site)
        if key in self._seen:
            return
        self._seen.add(key)
        self.races.append(Race(kind=kind, region=region, first=first, second=second))

    def report(self) -> str:
        """Human-readable summary of every race found."""
        if not self.races:
            return f"no races ({self.accesses} shared accesses checked)"
        lines = [f"{len(self.races)} race(s) in {self.accesses} shared accesses:"]
        for i, race in enumerate(self.races):
            lines.append(f"  #{i + 1} {race.describe()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Report deduplication
# ---------------------------------------------------------------------- #
def region_class(region: Hashable) -> tuple:
    """Collapse a region instance to its defect class.

    Region tuples carry instance coordinates (queue owner rank, flag
    owner rank, ...) as integers; one racy code path shows up once per
    instance.  Dropping the integer components groups those instances:
    ``("queue", "chk", 0)`` and ``("queue", "chk", 2)`` are the same
    defect at different owners.  Integer tuples (GA block origins) are
    instance coordinates too.
    """

    def coordinate(x) -> bool:
        return isinstance(x, int) or (
            isinstance(x, tuple) and all(isinstance(y, int) for y in x)
        )

    if isinstance(region, tuple):
        return tuple(x for x in region if not coordinate(x))
    return (region,)


@dataclass(frozen=True)
class RaceGroup:
    """All race instances sharing one (kind, region class, site pair)."""

    kind: str
    region_cls: tuple
    sites: tuple[str, str]
    count: int
    exemplar: Race

    def describe(self) -> str:
        suffix = f"  [x{self.count} instance(s)]" if self.count > 1 else ""
        return f"{self.exemplar.describe()}{suffix}"


def dedupe_races(races: list[Race]) -> list[RaceGroup]:
    """Group race reports by (site pair, region class) with counts.

    The site pair is order-insensitive so A-then-B and B-then-A
    observations of the same unordered pair collapse.  The first
    instance seen is kept as the exemplar; groups preserve first-seen
    order.
    """
    groups: dict[tuple, list[Race]] = {}
    for race in races:
        sites = tuple(sorted((race.first.site, race.second.site)))
        key = (race.kind, region_class(race.region), sites)
        groups.setdefault(key, []).append(race)
    return [
        RaceGroup(
            kind=key[0],
            region_cls=key[1],
            sites=key[2],
            count=len(members),
            exemplar=members[0],
        )
        for key, members in groups.items()
    ]
