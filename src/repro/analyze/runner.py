"""Race-detection runner: execute check scenarios with the detector on.

Unlike :mod:`repro.check` — which *searches* schedules for an
interleaving that corrupts state — the race detector fires on any
schedule that executes an unsynchronized code path, so a single
deterministic run per scenario suffices.  Mutations from
:mod:`repro.check.mutations` can be applied to demonstrate the detector
against known-bad protocol variants (``unlocked_split``,
``fence_elision``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import repro.core.task as task_mod

from repro.analyze.race import Race, RaceDetector
from repro.check.mutations import apply_mutation
from repro.check.scenarios import SCENARIOS, make_scenario
from repro.sim.engine import Engine
from repro.util.errors import ReproError, SimDeadlockError

__all__ = ["RaceRunResult", "run_race_detection"]


@dataclass
class RaceRunResult:
    """Outcome of one instrumented scenario run."""

    target: str
    mutation: str | None
    races: list[Race] = field(default_factory=list)
    accesses: int = 0
    events: int = 0
    error: str | None = None
    report: str = ""

    @property
    def racy(self) -> bool:
        return bool(self.races)


def run_race_detection(
    target: str,
    mutation: str | None = None,
    engine_seed: int = 0,
) -> RaceRunResult:
    """Run ``target`` once under the deterministic schedule with the
    race detector attached; return every race found.

    A mutated run may crash or deadlock before completing — races found
    up to that point are still reported (the detector observes accesses
    as they happen, not post-mortem).
    """
    if target not in SCENARIOS:
        raise ValueError(f"unknown scenario {target!r} (have: {sorted(SCENARIOS)})")
    result = RaceRunResult(target=target, mutation=mutation)
    task_mod._uid_counter = itertools.count(1)
    scenario = make_scenario(target)
    with apply_mutation(mutation):
        engine = Engine(
            scenario.nprocs,
            seed=engine_seed,
            max_events=scenario.max_events,
        )
        detector = RaceDetector.attach(engine)
        scenario.build(engine)
        try:
            engine.run()
        except SimDeadlockError as exc:
            result.error = f"{type(exc).__name__}: {exc}"
        except (ReproError, RuntimeError, AssertionError) as exc:
            result.error = f"{type(exc).__name__}: {exc}"
    result.races = list(detector.races)
    result.accesses = detector.accesses
    result.events = engine.events
    result.report = detector.report()
    return result
