"""Witness-guided scheduling: steer a replay toward a predicted bug.

The predictive analyzer (:mod:`repro.analyze.predict`) reports hazards
that are feasible in *other* interleavings of an observed trace.  This
module turns such a prediction into a targeted
:class:`~repro.sim.engine.SchedulingStrategy`: a
:class:`WitnessStrategy` watches the live event stream of a monitored
run (via the trace capture's listener hook) and *defers* specific ranks
at specific protocol points, walking the schedule into the predicted
reordering.  Every pick is recorded in the standard decision format, so
a successful witness run persists as an ordinary
:class:`~repro.check.traces.DecisionTrace` and replays through
:class:`~repro.check.strategies.ReplayStrategy` like any explored
failure.

Deferral is *soft*: a deferred rank is simply never chosen while a
non-deferred candidate exists.  When every candidate is deferred the
lowest-priority deferred rank runs — the schedule can stall briefly but
never wedge, so a witness that fails to trigger degrades into a clean
run instead of a hang.  A decision cap releases all gates as a final
safety valve.

Two gate controllers are provided:

* :class:`DirtyMarkWitness` — drives the §5.3 steal-after-vote window:
  hold the thief out of the early game so it votes white before its
  first steal, freeze it between the locked transfer and its
  (late/absent) dirty-mark delivery, and keep it frozen until the
  victim has cast a white vote inside the window.
* :class:`DeadlockWitness` — drives a predicted lock-order cycle
  closed: freeze each rank at the apex of its inverted acquisition
  chain until another rank blocks on the frozen rank's lock, then
  release so the cross-request completes the cycle (which the capture's
  wait-for monitor reports as
  :class:`~repro.analyze.capture.PredictedDeadlockError`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.check.strategies import ExplorationStrategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analyze.capture import TraceEvent

__all__ = ["WitnessStrategy", "DirtyMarkWitness", "DeadlockWitness"]


class WitnessStrategy(ExplorationStrategy):
    """Event-gated deterministic strategy (no randomness is drawn).

    Wire it to a run with ``RaceDetector.attach(engine, capture=True)``
    and ``detector.capture.listeners.append(strategy.on_event)`` — the
    ``engine_hook`` parameter of :func:`repro.check.runner.run_once` is
    the intended seam.
    """

    def __init__(self, controller, max_decisions: int = 20_000) -> None:
        super().__init__(seed=0)
        self.controller = controller
        self.max_decisions = max_decisions
        #: rank -> deferral priority (higher defers harder)
        self.deferred: dict[int, int] = {}
        self._tripped = False
        controller.start(self)

    # -- gate manipulation (called by controllers) --------------------- #
    def defer(self, rank: int, priority: int = 1) -> None:
        if not self._tripped:
            self.deferred[rank] = priority

    def release(self, rank: int) -> None:
        self.deferred.pop(rank, None)

    # -- live event feed ----------------------------------------------- #
    def on_event(self, ev: "TraceEvent") -> None:
        if not self._tripped:
            self.controller.on_event(ev, self)

    # -- SchedulingStrategy -------------------------------------------- #
    def choose(self, candidates: list[tuple[float, int, int, int]]) -> int:
        if len(self.decisions) >= self.max_decisions and not self._tripped:
            # Safety valve: open every gate so the run finishes cleanly.
            self._tripped = True
            self.deferred.clear()
        if self.deferred:
            best, best_key = 0, (self.deferred.get(candidates[0][2], 0), 0)
            for i in range(1, len(candidates)):
                key = (self.deferred.get(candidates[i][2], 0), i)
                if key < best_key:
                    best, best_key = i, key
            idx = best
        else:
            idx = 0
        self._record_pick(candidates[idx][2])
        return idx

    def delay(self, proc, site: str) -> float:
        return 0.0


class DirtyMarkWitness:
    """Steer toward the §5.3 window for one (thief, victim) casting.

    Phases::

        0  thief deferred from the start: the victim does the early
           stealing, the thief arrives at the first wave with a clean
           dirty flag and an empty queue
        1  first down-token reaches the thief -> release it (it votes
           white before anything else, having no work)
        1-2  whenever the victim publishes stealable work mid-wave
           (``queue-release``), the victim is deferred so the work is
           still there when the thief's next probe arrives
        2  thief (voted) steals from the victim; the moment it drops the
           victim's queue mutex (or closes its reservation atomic) it is
           frozen -- transfer done, dirty mark not yet delivered -- and
           the victim is released to drain and vote
        3  victim casts a WHITE vote -> the window is open; release the
           thief and let the run finish (an invariant violation or a
           mark-after-vote window in the capture confirms the
           prediction)

    The root is never deferred: it must stay live to post down-tokens
    and collect votes, and a timed-backoff leaf is always a candidate,
    so a deferred root would starve forever (deferral is only *soft*
    against ranks that park without timeouts).
    """

    def __init__(self, thief: int, victim: int) -> None:
        if thief == 0 or victim == 0:
            # The root never votes (its wave completion plays that
            # role), so neither side of the casting can be rank 0: a
            # root thief has no vote to get ahead of, and a root victim
            # has no vote for the window oracle to anchor on.
            raise ValueError("thief and victim must be non-root ranks")
        self.thief = thief
        self.victim = victim
        self.phase = 0
        self._pin_armed = False

    def start(self, strategy: WitnessStrategy) -> None:
        strategy.defer(self.thief, priority=1)

    def on_event(self, ev: "TraceEvent", strategy: WitnessStrategy) -> None:
        kind = ev.kind
        data = ev.data
        if kind != "protocol" and kind not in ("release", "rmw-done"):
            return
        what = data.get("what")
        if self.phase == 0:
            if what == "td-send" and data["token"] == "down" and data["dest"] == self.thief:
                strategy.release(self.thief)
                self.phase = 1
        elif self.phase == 1 or self.phase == 2:
            if what == "queue-release" and ev.rank == self.victim:
                # Pin the published work in place for the thief's probe.
                # Immediately if the victim holds no locks (pin before it
                # can reacquire the work back to private); otherwise a
                # pinned lock holder starves anyone who parks (untimed)
                # on that lock, so arm and pin at the lock-exit instead.
                if ev.held:
                    self._pin_armed = True
                else:
                    strategy.defer(self.victim, priority=1)
            elif (
                self._pin_armed
                and ev.rank == self.victim
                and kind in ("release", "rmw-done")
                and not ev.held
            ):
                self._pin_armed = False
                strategy.defer(self.victim, priority=1)
            elif self.phase == 1 and what == "vote" and ev.rank == self.thief:
                self.phase = 2
            elif (
                what == "steal-transfer"
                and ev.rank == self.thief
                and data["victim"] == self.victim
                and self.phase == 2
            ):
                self.phase = 25  # transfer seen; freeze at the unlock
        elif self.phase == 25:
            if kind == "release" and ev.rank == self.thief and data["host"] == self.victim:
                strategy.defer(self.thief, priority=2)
                strategy.release(self.victim)
                self.phase = 3
            elif kind == "rmw-done" and ev.rank == self.thief and data["target"] == self.victim:
                strategy.defer(self.thief, priority=2)
                strategy.release(self.victim)
                self.phase = 3
        elif self.phase == 3:
            if what == "vote" and ev.rank == self.victim and data["color"] == 0:
                strategy.release(self.thief)
                self.phase = 4


class DeadlockWitness:
    """Interleave inverted lock-acquisition chains until they cross.

    Relies on the ``steal-own-lock`` protocol event the
    ``lock_order_inversion`` mutation emits before taking the thief's
    own queue mutex.  Each rank is frozen at the apex of its chain (own
    lock held, victim's lock not yet requested); when chains cross —
    either two frozen ranks name each other as victims, or a second
    rank blocks on a frozen rank's lock — the frozen rank is released
    and its next request closes the cycle.
    """

    def __init__(self) -> None:
        #: rank -> victim it announced before its own-lock acquire
        self.pending: dict[int, int] = {}
        #: rank -> (own mutex name, victim) while frozen at the apex
        self.frozen: dict[int, tuple[str, int]] = {}

    def start(self, strategy: WitnessStrategy) -> None:
        pass

    def _release(self, rank: int, strategy: WitnessStrategy) -> None:
        self.frozen.pop(rank, None)
        strategy.release(rank)

    def on_event(self, ev: "TraceEvent", strategy: WitnessStrategy) -> None:
        data = ev.data
        if ev.kind == "protocol":
            if data.get("what") == "steal-own-lock":
                self.pending[ev.rank] = data["victim"]
            return
        if ev.kind == "acquire":
            victim = self.pending.pop(ev.rank, None)
            if victim is not None and data["host"] == ev.rank:
                self.frozen[ev.rank] = (data["mutex"], victim)
                strategy.defer(ev.rank, priority=2)
                # Two apexes naming each other: release both; their next
                # requests are the cycle's closing edges.
                for a, (_, va) in list(self.frozen.items()):
                    for b, (_, vb) in list(self.frozen.items()):
                        if a < b and va == b and vb == a:
                            self._release(a, strategy)
                            self._release(b, strategy)
            return
        if ev.kind == "request" and data.get("blocking") is not None:
            holder = data["blocking"]
            if holder in self.frozen and self.frozen[holder][0] == data["mutex"]:
                # Someone is parked on a frozen rank's apex lock; let the
                # frozen rank run into its victim's lock.
                self._release(holder, strategy)
