"""Command-line driver for the UTS benchmark.

Examples::

    python -m repro.apps.uts --nprocs 16 --gen-mx 10 --root-seed 17
    python -m repro.apps.uts --impl mpi --machine xt4 --nprocs 64
    python -m repro.apps.uts --tree binomial --b0 12 --q 0.12 --m 4
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.uts import UTSParams, count_tree, run_uts_mpi, run_uts_scioto
from repro.core import SciotoConfig
from repro.sim.machines import cray_xt4, heterogeneous_cluster, uniform_cluster

_MACHINES = {
    "cluster": uniform_cluster,
    "het": heterogeneous_cluster,
    "xt4": cray_xt4,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.apps.uts", description=__doc__)
    p.add_argument("--nprocs", type=int, default=8)
    p.add_argument("--impl", choices=["scioto", "mpi"], default="scioto")
    p.add_argument("--machine", choices=sorted(_MACHINES), default="het")
    p.add_argument("--tree", choices=["geometric", "binomial"], default="geometric")
    p.add_argument("--b0", type=float, default=4.0)
    p.add_argument("--gen-mx", type=int, default=10)
    p.add_argument("--q", type=float, default=0.15)
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--root-seed", type=int, default=17)
    p.add_argument("--seed", type=int, default=1, help="scheduler RNG seed")
    p.add_argument("--chunk", type=int, default=10)
    p.add_argument("--no-split", action="store_true", help="use fully locked queues")
    p.add_argument("--wait-free", action="store_true", help="wait-free steal protocol")
    p.add_argument("--steal-policy", choices=["random", "ring", "last_victim"],
                   default="random")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    params = UTSParams(
        tree_type=args.tree, b0=args.b0, gen_mx=args.gen_mx,
        q=args.q, m=args.m, root_seed=args.root_seed,
    )
    ref = count_tree(params, max_nodes=20_000_000)
    print(f"tree: {ref.nodes} nodes, {ref.leaves} leaves, depth {ref.max_depth}")
    machine = _MACHINES[args.machine](args.nprocs)
    if args.impl == "scioto":
        cfg = SciotoConfig(
            split_queues=not args.no_split,
            chunk_size=args.chunk,
            wait_free_steals=args.wait_free,
            steal_policy=args.steal_policy,
        )
        r = run_uts_scioto(args.nprocs, params, machine=machine, seed=args.seed,
                           config=cfg)
        extra = f", {r.total_steals} steals"
    else:
        r = run_uts_mpi(args.nprocs, params, machine=machine, seed=args.seed,
                        chunk=args.chunk)
        extra = ""
    if r.stats.nodes != ref.nodes:
        print("ERROR: parallel traversal disagrees with sequential count",
              file=sys.stderr)
        return 1
    print(
        f"{args.impl} on {args.nprocs} {args.machine} ranks: "
        f"{r.throughput / 1e6:.2f} Mnodes/s "
        f"({r.elapsed * 1e3:.2f} ms virtual{extra})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
