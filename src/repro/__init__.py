"""Reproduction of *Scioto: A Framework for Global-View Task Parallelism*
(Dinan, Krishnamoorthy, Larkins, Nieplocha, Sadayappan — ICPP 2008).

Package map (see README.md and DESIGN.md for the full story):

* :mod:`repro.sim` — deterministic discrete-event cluster simulator and
  machine models (the hardware substitute).
* :mod:`repro.armci` — one-sided communication (put/get/acc, atomics,
  mutexes, mailboxes, collectives).
* :mod:`repro.mpi` — two-sided messaging for the baselines.
* :mod:`repro.ga` — Global Arrays subset (distributed dense arrays).
* :mod:`repro.core` — the paper's contribution: task collections, split
  queues, locality-aware work stealing, wave termination detection, plus
  the §8 extensions (task graphs, wait-free steals).
* :mod:`repro.baselines` — the comparison schedulers.
* :mod:`repro.apps` — UTS, SCF, TCE, blocked matmul.
* :mod:`repro.bench` — regenerates every table and figure (run
  ``python -m repro.bench``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
