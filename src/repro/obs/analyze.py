"""Post-hoc analysis of exported traces: summaries and critical idle gaps.

Works on the Chrome ``trace_event`` JSON written by
:func:`repro.obs.export.write_chrome_trace`, so analyses can run long
after the simulation exited (or on traces produced elsewhere, as long
as they use ``"ph": "X"`` complete events with numeric ``tid`` tracks).

The headline analysis is :func:`critical_idle`: for each rank, the
longest stretches of virtual time with **no span at all** — the
scheduler was neither executing tasks nor communicating — together with
the spans that bounded the gap on each side.  In a work-stealing
runtime these bounds are almost always a failed steal before the gap
and a successful steal or termination token after it, which is exactly
the signal needed to diagnose steal latency and termination waves
(Figures 4 and 8 of the paper).
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass
from pathlib import Path

from repro.obs.export import ascii_timeline, self_times, summary_table
from repro.obs.record import SpanRecord

__all__ = [
    "load_chrome_trace",
    "load_metrics_json",
    "percentile_table",
    "IdleGap",
    "critical_idle",
    "summarize",
]

#: Metrics schemas this reader understands.  ``/1`` documents predate
#: stored percentiles; :func:`load_metrics_json` recomputes them from
#: the serialized bucket edges/counts so downstream code sees one shape.
METRICS_SCHEMAS = ("repro-obs-metrics/1", "repro-obs-metrics/2")


def load_chrome_trace(path: str | Path) -> list[SpanRecord]:
    """Load the complete ("X") events of a Chrome trace as span records.

    Instant and metadata events are skipped; timestamps convert back
    from microseconds to seconds of virtual time.
    """
    data = json.loads(Path(path).read_text())
    events = data["traceEvents"] if isinstance(data, dict) else data
    spans: list[SpanRecord] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        start = ev["ts"] / 1e6
        spans.append(
            SpanRecord(
                rank=int(ev.get("tid", 0)),
                name=ev.get("name", "?"),
                category=ev.get("cat", "runtime"),
                start=start,
                end=start + ev.get("dur", 0.0) / 1e6,
                detail=(ev.get("args") or {}).get("detail"),
            )
        )
    return spans


def _bucket_quantile(hist: dict, q: float) -> float | None:
    """Quantile from serialized edges/counts (same rule as Histogram)."""
    count = hist.get("count", 0)
    if not count:
        return None
    edges, counts = hist.get("edges", []), hist.get("counts", [])
    target = q * count
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= target and c:
            return edges[i] if i < len(edges) else hist.get("max")
    return hist.get("max")


def load_metrics_json(path: str | Path) -> dict:
    """Load a metrics JSON document, accepting schemas ``/1`` and ``/2``.

    Returns the document normalized to the ``/2`` shape: every
    histogram carries ``p50``/``p95``/``p99``.  A ``/1`` document (no
    stored percentiles) gets them recomputed from its bucket counts,
    so readers and the differ never need to branch on schema.
    """
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema not in METRICS_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported metrics schema {schema!r}; "
            f"expected one of {METRICS_SCHEMAS}"
        )
    for hist in doc.get("histograms", {}).values():
        for q, key in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            if hist.get(key) is None:
                hist[key] = _bucket_quantile(hist, q)
    return doc


def percentile_table(histograms: dict[str, dict]) -> str:
    """One row per histogram: count, mean, p50/p95/p99, max.

    Values are printed in the histogram's native unit (seconds for the
    latency metrics, plain counts for chunk/occupancy ones).
    """
    if not histograms:
        return "(no histograms)"
    header = ["histogram", "count", "mean", "p50", "p95", "p99", "max"]
    lines = ["  ".join(f"{h:>14}" for h in header)]
    for name in sorted(histograms):
        h = histograms[name]
        row = [name, str(h.get("count", 0))]
        for key in ("mean", "p50", "p95", "p99", "max"):
            v = h.get(key)
            row.append("-" if v is None else f"{v:.6g}")
        lines.append("  ".join(f"{v:>14}" for v in row))
    return "\n".join(lines)


@dataclass(frozen=True)
class IdleGap:
    """One uncovered stretch of a rank's timeline."""

    rank: int
    start: float
    end: float
    before: str  #: name of the span that ended at the gap's start
    after: str  #: name of the span that started at the gap's end

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        return (
            f"rank {self.rank}: {self.duration * 1e6:10.3f} us idle "
            f"[{self.start * 1e6:.3f} .. {self.end * 1e6:.3f}] "
            f"after '{self.before}', ended by '{self.after}'"
        )


def _merged_cover(intervals: list[tuple[float, float, str]]) -> list[tuple[float, float, str, str]]:
    """Merge overlapping intervals; keep the last/first span names at the
    merged edges (for gap attribution)."""
    if not intervals:
        return []
    intervals.sort(key=lambda iv: (iv[0], iv[1]))
    merged: list[list] = []
    for start, end, name in intervals:
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1][1] = end
                merged[-1][3] = name  # new rightmost span
        else:
            merged.append([start, end, name, name])
    return [(s, e, first, last) for s, e, first, last in merged]


def critical_idle(
    spans: list[SpanRecord], top: int = 5, min_gap: float = 0.0
) -> list[IdleGap]:
    """The ``top`` longest per-rank gaps not covered by any span.

    A gap is bounded by the span activity around it: ``before`` names
    the rightmost span of the covered stretch that precedes the gap,
    ``after`` the first span that ends it.  Gaps are measured inside
    each rank's own recorded extent (before a rank's first span and
    after its last one nothing is known, so nothing is reported).
    """
    by_rank: dict[int, list[tuple[float, float, str]]] = defaultdict(list)
    for s in spans:
        if s.end is not None:
            by_rank[s.rank].append((s.start, s.end, s.name))
    gaps: list[IdleGap] = []
    for rank, intervals in by_rank.items():
        cover = _merged_cover(intervals)
        for (s0, e0, _f0, last), (s1, _e1, first, _l1) in zip(cover, cover[1:]):
            if s1 - e0 > min_gap:
                gaps.append(IdleGap(rank, e0, s1, before=last, after=first))
    gaps.sort(key=lambda g: -g.duration)
    return gaps[:top]


def summarize(spans: list[SpanRecord], width: int = 80, top: int = 5) -> str:
    """Full text report: timeline, per-rank breakdown, longest spans, gaps."""
    finished = [s for s in spans if s.end is not None]
    if not finished:
        return "(trace holds no finished spans)"
    nprocs = max(s.rank for s in finished) + 1
    lines = [ascii_timeline(finished, nprocs, width=width), ""]
    lines.append(summary_table(finished, nprocs))
    lines.append("")
    longest = sorted(finished, key=lambda s: -s.duration)[:top]
    lines.append(f"longest {len(longest)} spans:")
    for s in longest:
        detail = f" ({s.detail})" if s.detail is not None else ""
        lines.append(
            f"  rank {s.rank}: {s.name}{detail} [{s.category}] "
            f"{s.duration * 1e6:.3f} us at {s.start * 1e6:.3f} us"
        )
    lines.append("")
    gaps = critical_idle(finished, top=top)
    if gaps:
        lines.append(f"critical idle gaps (top {len(gaps)}):")
        lines.extend(f"  {g.describe()}" for g in gaps)
    else:
        lines.append("no idle gaps between spans")
    # aggregate category totals
    agg: dict[str, float] = defaultdict(float)
    for per_cat in self_times(finished).values():
        for cat, t in per_cat.items():
            agg[cat] += t
    total = sum(agg.values())
    if total > 0:
        lines.append("")
        lines.append("aggregate self time by category:")
        for cat, t in sorted(agg.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {cat:<12} {t * 1e6:12.3f} us  ({t / total * 100:5.1f}%)")
    return "\n".join(lines)
