"""Tests for victim-selection policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.uts import UTSParams, count_tree, run_uts_scioto
from repro.core import SciotoConfig
from repro.core.stealing import STEAL_POLICIES, make_victim_selector
from repro.sim.engine import Engine, run_spmd
from repro.util.errors import TaskCollectionError

SMALL = UTSParams(b0=4.0, gen_mx=8, root_seed=6)


class TestSelectors:
    @pytest.mark.parametrize("policy", STEAL_POLICIES)
    def test_never_selects_self(self, policy):
        def main(proc):
            sel = make_victim_selector(policy, proc)
            picks = [sel.next_victim() for _ in range(50)]
            return picks

        res = run_spmd(5, main, seed=9)
        for rank, picks in enumerate(res.returns):
            assert all(0 <= v < 5 and v != rank for v in picks), (rank, picks)

    def test_ring_cycles_through_everyone(self):
        def main(proc):
            sel = make_victim_selector("ring", proc)
            return [sel.next_victim() for _ in range(6)]

        res = run_spmd(4, main)
        for rank, picks in enumerate(res.returns):
            others = {r for r in range(4) if r != rank}
            assert set(picks[:3]) == others

    def test_last_victim_retries_successful_victim(self):
        def main(proc):
            sel = make_victim_selector("last_victim", proc)
            v1 = sel.next_victim()
            sel.report(v1, success=True)
            v2 = sel.next_victim()
            sel.report(v2, success=False)
            return (v1, v2)

        res = run_spmd(3, main, seed=4)
        for v1, v2 in res.returns:
            assert v1 == v2, "successful victim must be retried"

    def test_unknown_policy_rejected(self):
        def main(proc):
            make_victim_selector("psychic", proc)

        with pytest.raises(TaskCollectionError, match="unknown steal policy"):
            run_spmd(2, main)

    def test_config_validates_policy(self):
        with pytest.raises(ValueError, match="steal_policy"):
            SciotoConfig(steal_policy="psychic")


class TestPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", STEAL_POLICIES)
    def test_uts_exact_under_each_policy(self, policy):
        ref = count_tree(SMALL)
        r = run_uts_scioto(
            4, SMALL, seed=2, config=SciotoConfig(steal_policy=policy),
            max_events=3_000_000,
        )
        assert r.stats.nodes == ref.nodes

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2000), policy=st.sampled_from(STEAL_POLICIES))
    def test_policies_deterministic(self, seed, policy):
        cfg = SciotoConfig(steal_policy=policy)
        a = run_uts_scioto(3, SMALL, seed=seed, config=cfg, max_events=3_000_000)
        b = run_uts_scioto(3, SMALL, seed=seed, config=cfg, max_events=3_000_000)
        assert a.elapsed == b.elapsed
        assert a.total_steals == b.total_steals
