"""Pluggable context-switch backends for the simulation engine.

The engine's scheduling semantics — one simulated process runs at a
time, chosen by the ``(virtual time, insertion sequence)`` heap — are
independent of *how* control physically moves between process contexts.
That mechanism lives here, behind :class:`SwitchBackend`:

``coro``
    No execution contexts at all: every process whose main function is
    a generator function runs as a coroutine on the engine's single
    stack, resumed by a trampoline loop with one ``send()`` call per
    event — function-call-scale switches, no threads, no locks, no
    dependencies.  Processes with plain blocking mains transparently
    fall back to a compatibility OS thread, so mixed engines work.
    Always available; the auto default.

``thread``
    One OS thread per process, handed control through raw
    ``_thread`` locks.  The scheduling decision runs in the *yielding*
    thread and control passes directly to the next process: one kernel
    handoff per event.  Always available.

``greenlet``
    One greenlet per process on a single OS thread; switches are plain
    user-level stack switches (no kernel involvement, no GIL handoff).
    Selected automatically when the optional ``greenlet`` package is
    importable.

``thread-sem``
    The seed implementation's mechanism, kept as a measurable
    reference: every event bounces through a central engine thread via
    ``threading.Semaphore`` pairs — two kernel handoffs per event.
    Never auto-selected; exists so ``repro.bench perf`` can quantify
    the switch-engine speedup against the original design run after
    run (see ``docs/performance.md``).

Backend choice is per-:class:`~repro.sim.engine.Engine`
(``Engine(..., backend=...)``) with an environment override
(``REPRO_SIM_BACKEND``) so whole runs — benchmarks, the model checker,
the test suite — can be flipped without touching call sites.  Every
backend executes the identical dispatch code, so results are
bit-for-bit identical across backends; ``tests/test_sim_backends.py``
enforces this.

A *context* is either a :class:`~repro.sim.engine.Proc` or ``None``
for the engine context (the caller of ``Engine.run()``).  Exactly one
context is ever runnable; backends only implement the transfer.
"""

from __future__ import annotations

import inspect
import os
import threading
import _thread
from typing import TYPE_CHECKING, Callable

from repro.util.errors import SimShutdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, Proc

try:
    from greenlet import greenlet as _greenlet
except ImportError:  # pragma: no cover - exercised where greenlet is absent
    _greenlet = None

__all__ = [
    "SwitchBackend",
    "CoroBackend",
    "ThreadBackend",
    "GreenletBackend",
    "SemaphoreThreadBackend",
    "BACKENDS",
    "ENV_BACKEND",
    "available_backends",
    "greenlet_available",
    "resolve_backend_name",
    "make_backend",
]

#: Environment variable consulted when ``backend="auto"``.
ENV_BACKEND = "REPRO_SIM_BACKEND"


class SwitchBackend:
    """How control moves between the engine and its simulated processes.

    Subclasses implement the five hooks below.  ``src``/``dst`` are
    contexts: a ``Proc``, or ``None`` for the engine context.  The
    engine guarantees that at most one context runs at a time and that
    every ``switch``/``exit_to`` names a context that is currently
    suspended (or, for a fresh proc, spawned but never resumed).
    """

    name: str = "abstract"

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine

    def prepare(self) -> None:
        """Called once at the start of ``Engine.run()``, in the engine
        context, before any ``spawn``."""

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        """Create the execution context for ``proc``.  ``main`` is a
        zero-argument callable; it must not run until the first
        ``switch``/``exit_to`` targeting ``proc``."""
        raise NotImplementedError

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        """Transfer control from ``src`` (the caller) to ``dst``;
        return when ``src`` is next resumed."""
        raise NotImplementedError

    def exit_to(self, dst: "Proc | None") -> None:
        """Final transfer out of a finishing process context; the
        caller never runs again."""
        raise NotImplementedError

    def kill(self, proc: "Proc") -> None:
        """Unwind one unfinished process context during teardown.

        Called from the engine context with ``engine._shutdown`` set.
        Must be a no-op for contexts that already finished or whose
        execution context never actually started (e.g. a thread whose
        ``start()`` failed) — see ``tests/test_sim_backends.py``.
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Called once after teardown; release backend resources."""


class ThreadBackend(SwitchBackend):
    """One OS thread per process, direct handoff through raw locks.

    Each context owns a pre-acquired ``_thread`` lock it blocks on; a
    switch releases the destination's lock and re-acquires the
    caller's.  Raw locks are C-level (no ``threading.Condition``
    machinery) and the direct handoff skips the seed design's bounce
    through the engine thread, so an event costs one kernel wakeup
    instead of two semaphore round trips.
    """

    name = "thread"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._engine_lock = _thread.allocate_lock()
        self._engine_lock.acquire()

    def _lock_of(self, ctx: "Proc | None"):
        return self._engine_lock if ctx is None else ctx._lock

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        lock = _thread.allocate_lock()
        lock.acquire()
        proc._lock = lock

        def body() -> None:
            lock.acquire()  # wait for the first resume
            main()

        proc._thread = threading.Thread(
            target=body, name=f"simproc-{proc.rank}", daemon=True
        )
        proc._thread.start()

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        # Inlined _lock_of: this is the hottest line in the simulator.
        (self._engine_lock if dst is None else dst._lock).release()
        (self._engine_lock if src is None else src._lock).acquire()

    def exit_to(self, dst: "Proc | None") -> None:
        self._lock_of(dst).release()

    def kill(self, proc: "Proc") -> None:
        thread = proc._thread
        if thread is None or proc.finished:
            return
        if not thread.is_alive():
            # The thread never started (Thread.start() failed mid-spawn)
            # or died without reporting: there is no stack to unwind, and
            # handshaking against it would hang teardown forever.
            return
        while not proc.finished:
            proc._lock.release()
            self._engine_lock.acquire()

    def finalize(self) -> None:
        for proc in self.engine.procs:
            thread = proc._thread
            if thread is not None and thread.ident is not None:
                # ident is None for a thread whose start() failed; joining
                # it would raise rather than reap anything.
                thread.join(timeout=5.0)


class SemaphoreThreadBackend(SwitchBackend):
    """The seed engine's handoff, preserved as a reference backend.

    Every event routes through the engine thread: the yielding process
    wakes the engine via one ``threading.Semaphore``, the engine thread
    wakes the chosen process via another.  Two kernel handoffs and four
    Python-level semaphore operations per event — this is what the
    repo's engine cost looked like before the direct-handoff redesign,
    and keeping it runnable lets ``repro.bench perf`` measure the
    improvement on every host rather than asserting it in prose.
    """

    name = "thread-sem"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        self._engine_sem = threading.Semaphore(0)
        self._hand: "Proc | None" = None  # context the pump forwards to

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        sem = threading.Semaphore(0)
        proc._lock = sem  # same slot as ThreadBackend's lock

        def body() -> None:
            sem.acquire()  # wait for the first resume
            main()

        proc._thread = threading.Thread(
            target=body, name=f"simproc-{proc.rank}", daemon=True
        )
        proc._thread.start()

    def _pump(self) -> None:
        """Engine-thread loop: forward control until told to return."""
        while True:
            self._engine_sem.acquire()
            dst = self._hand
            if dst is None:
                return
            dst._lock.release()

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        if src is None:
            # Engine context: hand off to dst, then mediate every
            # subsequent switch until control is handed back.
            dst._lock.release()
            self._pump()
            return
        self._hand = dst
        self._engine_sem.release()
        src._lock.acquire()

    def exit_to(self, dst: "Proc | None") -> None:
        self._hand = dst
        self._engine_sem.release()

    def kill(self, proc: "Proc") -> None:
        thread = proc._thread
        if thread is None or proc.finished:
            return
        if not thread.is_alive():
            return  # never started: nothing to unwind (see ThreadBackend)
        while not proc.finished:
            proc._lock.release()
            self._engine_sem.acquire()  # matched by the proc's exit_to(None)

    def finalize(self) -> None:
        for proc in self.engine.procs:
            thread = proc._thread
            if thread is not None and thread.ident is not None:
                # ident is None for a thread whose start() failed; joining
                # it would raise rather than reap anything.
                thread.join(timeout=5.0)


class GreenletBackend(SwitchBackend):
    """One greenlet per process; switches never leave the OS thread.

    A greenlet switch is a user-level stack swap — no kernel, no GIL
    handoff, two orders of magnitude cheaper than waking a thread.  The
    engine context is the greenlet that called ``Engine.run()``; a
    finishing process re-parents itself onto its successor so its death
    transfers control without an extra hop.
    """

    name = "greenlet"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        if _greenlet is None:  # pragma: no cover - guarded by resolve
            raise RuntimeError("greenlet backend requires the 'greenlet' package")
        self._engine_glet = None

    def prepare(self) -> None:
        self._engine_glet = _greenlet.getcurrent()

    def _glet_of(self, ctx: "Proc | None"):
        return self._engine_glet if ctx is None else ctx._glet

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        # Parent defaults to the spawning (engine) greenlet; exit_to
        # re-parents before death so control lands on the chosen context.
        proc._glet = _greenlet(main)

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        self._glet_of(dst).switch()

    def exit_to(self, dst: "Proc | None") -> None:
        glet = _greenlet.getcurrent()
        glet.parent = self._glet_of(dst)
        # Returning from the greenlet's body transfers to the parent.

    def kill(self, proc: "Proc") -> None:
        glet = proc._glet
        if glet is None or proc.finished or glet.dead:
            return
        glet.parent = self._engine_glet
        while not proc.finished and not glet.dead:
            # Raises SimShutdown at the proc's suspended switch point
            # (or just marks a never-started greenlet dead).
            glet.throw(SimShutdown)


class CoroBackend(SwitchBackend):
    """Generator trampoline: every process is a coroutine on one stack.

    A process whose main function is a *generator function* gets no
    execution context at all: :meth:`Engine._proc_coro` wraps it in a
    generator and the trampoline loop resumes it with a single
    ``coro.send(None)`` per event.  A context switch therefore costs
    one frame hop per ``yield from`` level — no kernel, no locks, no
    extra stacks, no GIL handoff — and the scheduling decision
    (``Engine._pick``) runs in the trampoline between sends.

    Processes whose mains are plain blocking functions still work:
    they get a compatibility OS thread (the same handoff discipline as
    :class:`ThreadBackend`) that always bounces control back through
    the trampoline.  That fallback is what lets ``coro`` be the
    universal auto default — legacy blocking code keeps running,
    converted coroutine code gets function-call-scale switches, and
    both kinds can mix inside one engine.  Blocking primitives invoked
    *from a coroutine context* raise: suspension must reach the
    trampoline through the ``co_*`` protocol (``yield from``), never by
    blocking the shared stack.
    """

    name = "coro"

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine)
        # Trampoline-side lock for compatibility threads: a thread proc
        # hands control back here instead of directly to its successor.
        self._tramp_lock = _thread.allocate_lock()
        self._tramp_lock.acquire()
        self._next: "Proc | None" = None
        self._have_threads = False

    def spawn(self, proc: "Proc", main: Callable[[], None]) -> None:
        fn, _args = self.engine._mains[proc.rank]
        if inspect.isgeneratorfunction(fn):
            proc._coro = self.engine._proc_coro(proc)
            return
        # Compatibility path: a plain blocking main gets an OS thread.
        self._have_threads = True
        lock = _thread.allocate_lock()
        lock.acquire()
        proc._lock = lock

        def body() -> None:
            lock.acquire()  # wait for the first resume
            main()

        proc._thread = threading.Thread(
            target=body, name=f"simproc-{proc.rank}", daemon=True
        )
        proc._thread.start()

    def switch(self, src: "Proc | None", dst: "Proc | None") -> None:
        if src is None:
            self._loop(dst)
            return
        if src._coro is not None:
            raise RuntimeError(
                f"blocking primitive reached the coro backend from the "
                f"coroutine context of rank {src.rank}: a generator main "
                f"(and every task body or callback it runs) must suspend "
                f"through the co_* coroutine protocol (yield from), not "
                f"the blocking API"
            )
        # Compatibility thread: hand control to the trampoline (which
        # forwards to dst), then block until resumed.
        self._next = dst
        self._tramp_lock.release()
        src._lock.acquire()

    def _loop(self, dst: "Proc | None") -> None:
        """The trampoline: runs in the engine context until completion.

        One iteration per event: resume ``dst``, then ask the engine
        which process runs next.  Compatibility threads get a real
        handoff and return control here at their next suspension.
        """
        engine = self.engine
        pick = engine._pick
        while dst is not None:
            coro = dst._coro
            if coro is None:
                dst._lock.release()
                self._tramp_lock.acquire()
                dst = self._next
                continue
            try:
                coro.send(None)
            except StopIteration:
                # The proc's main returned; its epilogue already ran
                # inside _proc_coro.
                if engine._shutdown or engine._failure is not None:
                    return
                dst = pick()
                continue
            dst = pick()

    def exit_to(self, dst: "Proc | None") -> None:
        # Only compatibility threads exit through here (coroutine procs
        # return from their generator instead); route via the trampoline.
        self._next = dst
        self._tramp_lock.release()

    def kill(self, proc: "Proc") -> None:
        coro = proc._coro
        if coro is None:
            thread = proc._thread
            if thread is None or proc.finished:
                return
            if not thread.is_alive():
                return  # never started: nothing to unwind (see ThreadBackend)
            while not proc.finished:
                proc._lock.release()
                self._tramp_lock.acquire()
            return
        if proc.finished:
            return
        state = inspect.getgeneratorstate(coro)
        if state == inspect.GEN_CREATED:
            # Never resumed: no frames to unwind — the coroutine
            # analogue of a thread whose start() failed.
            coro.close()
            return
        if state == inspect.GEN_CLOSED:
            return
        while not proc.finished:
            try:
                # Raises SimShutdown at the proc's suspended yield; the
                # epilogue inside _proc_coro marks it finished.  The loop
                # guards against user code that catches and re-yields.
                coro.throw(SimShutdown)
            except (StopIteration, SimShutdown):
                break

    def finalize(self) -> None:
        if not self._have_threads:
            return
        for proc in self.engine.procs:
            thread = proc._thread
            if thread is not None and thread.ident is not None:
                # ident is None for a thread whose start() failed; joining
                # it would raise rather than reap anything.
                thread.join(timeout=5.0)


#: Constructible backends by CLI/env name.
BACKENDS: dict[str, type[SwitchBackend]] = {
    "coro": CoroBackend,
    "thread": ThreadBackend,
    "greenlet": GreenletBackend,
    "thread-sem": SemaphoreThreadBackend,
}


def greenlet_available() -> bool:
    """Whether the optional ``greenlet`` package is importable."""
    return _greenlet is not None


def available_backends() -> tuple[str, ...]:
    """Backends usable in this environment, fastest first."""
    names = ["coro"]
    if _greenlet is not None:
        names.append("greenlet")
    names += ["thread", "thread-sem"]
    return tuple(names)


def resolve_backend_name(name: str | None = "auto") -> str:
    """Resolve a backend request to a concrete backend name.

    ``"auto"`` (or None/empty) consults ``$REPRO_SIM_BACKEND``; if that
    is unset or itself ``auto``, picks ``coro`` — the generator
    trampoline, which needs nothing the standard library doesn't have.
    Explicit names are validated: asking for ``greenlet`` without the
    package installed raises instead of silently falling back, so
    benchmark results can't lie about the backend they ran on.
    """
    name = name or "auto"
    if name == "auto":
        name = os.environ.get(ENV_BACKEND, "").strip() or "auto"
    if name == "auto":
        return "coro"
    if name not in BACKENDS:
        raise ValueError(
            f"unknown simulation backend {name!r}; choose from "
            f"{sorted(BACKENDS)} or 'auto'"
        )
    if name == "greenlet" and _greenlet is None:
        raise RuntimeError(
            "backend 'greenlet' requested (argument or $REPRO_SIM_BACKEND) "
            "but the optional 'greenlet' package is not importable; "
            "install it or use backend 'thread'"
        )
    return name


def make_backend(name: str, engine: "Engine") -> SwitchBackend:
    """Instantiate the backend resolved from ``name`` for ``engine``."""
    return BACKENDS[resolve_backend_name(name)](engine)
