"""Tests for block distributions, including property-based coverage."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga.distribution import BlockDistribution, factor_grid


class TestFactorGrid:
    def test_examples(self):
        assert factor_grid(12, 2) == (4, 3)
        assert factor_grid(8, 3) == (2, 2, 2)
        assert factor_grid(1, 2) == (1, 1)
        assert factor_grid(7, 2) == (7, 1)

    @given(st.integers(1, 256), st.integers(1, 4))
    def test_product_equals_nprocs(self, nprocs, ndims):
        grid = factor_grid(nprocs, ndims)
        assert len(grid) == ndims
        assert int(np.prod(grid)) == nprocs


class TestBlockDistribution:
    def test_patches_partition_the_array(self):
        dist = BlockDistribution((10, 7), 6)
        covered = np.zeros((10, 7), dtype=int)
        for rank in range(6):
            lo, hi = dist.patch(rank)
            covered[lo[0] : hi[0], lo[1] : hi[1]] += 1
        assert (covered == 1).all()

    def test_locate_matches_patch(self):
        dist = BlockDistribution((9, 9), 4)
        for i in range(9):
            for j in range(9):
                rank = dist.locate((i, j))
                lo, hi = dist.patch(rank)
                assert lo[0] <= i < hi[0] and lo[1] <= j < hi[1]

    def test_locate_out_of_bounds(self):
        dist = BlockDistribution((4, 4), 2)
        with pytest.raises(IndexError):
            dist.locate((4, 0))
        with pytest.raises(IndexError):
            dist.locate((0, -1))

    def test_patches_intersecting_covers_box_exactly(self):
        dist = BlockDistribution((8, 8), 4)
        covered = np.zeros((8, 8), dtype=int)
        for rank, (plo, phi) in dist.patches_intersecting((1, 2), (7, 8)):
            lo, hi = dist.patch(rank)
            assert all(l <= p for l, p in zip(lo, plo))
            assert all(p <= h for p, h in zip(phi, hi))
            covered[plo[0] : phi[0], plo[1] : phi[1]] += 1
        expect = np.zeros((8, 8), dtype=int)
        expect[1:7, 2:8] = 1
        assert (covered == expect).all()

    def test_patches_intersecting_rejects_bad_box(self):
        dist = BlockDistribution((4, 4), 2)
        with pytest.raises(IndexError):
            list(dist.patches_intersecting((0, 0), (5, 4)))
        with pytest.raises(IndexError):
            list(dist.patches_intersecting((2, 0), (2, 4)))  # empty box

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            BlockDistribution((0, 4), 2)

    @settings(max_examples=50, deadline=None)
    @given(
        shape=st.tuples(st.integers(1, 12), st.integers(1, 12)),
        nprocs=st.integers(1, 16),
        seed=st.integers(0, 10_000),
    )
    def test_property_partition_and_locate_consistent(self, shape, nprocs, seed):
        """Patches tile the array; locate agrees with the tiling; every
        intersect query returns exactly the requested box."""
        dist = BlockDistribution(shape, nprocs)
        covered = np.full(shape, -1, dtype=int)
        for rank in range(nprocs):
            lo, hi = dist.patch(rank)
            sl = tuple(slice(l, h) for l, h in zip(lo, hi))
            assert (covered[sl] == -1).all()
            covered[sl] = rank
        assert (covered >= 0).all()
        rng = np.random.default_rng(seed)
        idx = tuple(int(rng.integers(0, s)) for s in shape)
        assert dist.locate(idx) == covered[idx]
        # random sub-box is covered exactly once by intersections
        lo = tuple(int(rng.integers(0, s)) for s in shape)
        hi = tuple(int(rng.integers(l + 1, s + 1)) for l, s in zip(lo, shape))
        hits = np.zeros(shape, dtype=int)
        for _rank, (plo, phi) in dist.patches_intersecting(lo, hi):
            hits[tuple(slice(a, b) for a, b in zip(plo, phi))] += 1
        box = tuple(slice(a, b) for a, b in zip(lo, hi))
        assert (hits[box] == 1).all()
        hits[box] = 0
        assert (hits == 0).all()
