"""Crash flight recorder: the last moments of a run, always on disk.

A :class:`FlightRecorder` keeps a bounded per-rank ring of the most
recently *completed* spans and instants (``deque(maxlen=...)`` — memory
is constant regardless of run length).  The recorder taps it on every
close, and :meth:`dump` serializes the rings atomically
(:data:`FLIGHT_SCHEMA`) when something goes wrong:

* engine failure — deadlock (``SimDeadlockError``), event-budget
  exhaustion, a predicted deadlock raised by the concurrency predictor
  (``PredictedDeadlockError``), or any exception escaping a proc: the
  engine's ``failure_hooks`` fire before ``run()`` re-raises
  (:meth:`repro.obs.record.Recorder.set_flight` registers the hook);
* invariant failure — the model checker's post-hoc invariant sweep
  (:mod:`repro.check.runner`) dumps when a violation is found;
* fleet worker crash — workers dump *periodically* (every
  ``flush_every`` records), so a SIGKILL'd worker — which gets no
  chance to run failure hooks — still leaves its most recent rings on
  disk; the fleet parent adds a crash report next to it
  (:mod:`repro.fleet.scheduler`).

Attachment is environment-driven so any entry point (CLI runs, check
campaigns, fleet workers) picks it up without plumbing:
:func:`maybe_attach_flight` reads :data:`ENV_FLIGHT_DIR` and attaches a
flight-tapped recorder (storage-free :class:`~repro.obs.stream.NullSink`
when no recorder was requested — the ring is the only retention, so
flight recording never unbounds memory).
"""

from __future__ import annotations

import json
import os
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.record import InstantRecord, Recorder, SpanRecord
from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

__all__ = [
    "FLIGHT_SCHEMA",
    "ENV_FLIGHT_DIR",
    "ENV_FLIGHT_FLUSH",
    "FlightRecorder",
    "flight_from_env",
    "maybe_attach_flight",
    "load_flight_dump",
]

#: Schema tag stamped into every flight dump.
FLIGHT_SCHEMA = "repro-obs-flight/1"

#: Environment variable naming the directory flight dumps land in.
#: Set by the user (or by fleet workers) to arm the flight recorder in
#: every engine run of the process.
ENV_FLIGHT_DIR = "REPRO_FLIGHT_DIR"

#: Environment variable overriding the periodic-flush cadence for
#: env-attached recorders.  Fleet workers set it so a SIGKILL mid-run
#: still leaves a recent dump (a killed process runs no failure hooks).
ENV_FLIGHT_FLUSH = "REPRO_FLIGHT_FLUSH_EVERY"


class FlightRecorder:
    """Bounded per-rank ring of recent records, dumped on failure.

    Args:
        path: Dump destination (rewritten atomically on each dump).
        per_rank: Ring capacity per rank — the N most recent completed
            spans/instants of each rank survive.
        flush_every: When > 0, rewrite the dump (reason ``"periodic"``)
            every that-many records, so even a SIGKILL — no hooks, no
            atexit — leaves a recent snapshot on disk.
    """

    def __init__(
        self, path: str | Path, per_rank: int = 256, flush_every: int = 0
    ) -> None:
        self.path = Path(path)
        self.per_rank = per_rank
        self.flush_every = flush_every
        self._rings: dict[int, deque] = {}
        self.records_seen = 0
        self.dumps = 0
        self.context: dict[str, Any] = {}
        #: Most recent live-telemetry frame (set by the telemetry bus);
        #: included in dumps so a post-mortem shows load state at death.
        self.latest_frame: dict | None = None

    def _ring(self, rank: int) -> deque:
        ring = self._rings.get(rank)
        if ring is None:
            ring = deque(maxlen=self.per_rank)
            self._rings[rank] = ring
        return ring

    def record_span(self, span: SpanRecord) -> None:
        """Ring a completed span (called by the recorder on close)."""
        self._record(
            span.rank,
            {
                "kind": "span",
                "name": span.name,
                "cat": span.category,
                "start": span.start,
                "end": span.end,
                "depth": span.depth,
                "detail": None if span.detail is None else str(span.detail),
            },
        )

    def record_instant(self, inst: InstantRecord) -> None:
        self._record(
            inst.rank,
            {
                "kind": "instant",
                "name": inst.name,
                "cat": inst.category,
                "time": inst.time,
                "detail": None if inst.detail is None else str(inst.detail),
            },
        )

    def record_frame(self, frame: dict) -> None:
        """Remember the latest live-telemetry frame (not ring-counted)."""
        self.latest_frame = frame

    def _record(self, rank: int, entry: dict) -> None:
        self._ring(rank).append(entry)
        self.records_seen += 1
        if self.flush_every and self.records_seen % self.flush_every == 0:
            self.dump("periodic")

    def dump(
        self, reason: str, error: str | None = None, context: dict | None = None
    ) -> Path:
        """Write the rings to :attr:`path` atomically; return the path."""
        doc = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "error": error,
            "pid": os.getpid(),
            "records_seen": self.records_seen,
            "per_rank": self.per_rank,
            # Arm-time configuration, so a dump is self-describing even
            # when the invocation that armed it is long gone.
            "config": {
                "path": str(self.path),
                "per_rank": self.per_rank,
                "flush_every": self.flush_every,
            },
            "context": {**self.context, **(context or {})},
            # Load state at death: the last frame the telemetry bus
            # published before the failure (None when the bus is off).
            "telemetry": self.latest_frame,
            "rings": {
                str(rank): list(self._rings[rank])
                for rank in sorted(self._rings)
            },
        }
        atomic_write_text(self.path, json.dumps(doc, indent=2))
        self.dumps += 1
        return self.path


def load_flight_dump(path: str | Path) -> dict:
    """Read and schema-check one flight dump."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported flight schema {doc.get('schema')!r}; "
            f"expected {FLIGHT_SCHEMA}"
        )
    return doc


def flight_from_env(
    context: str = "run",
    per_rank: int = 256,
    flush_every: int = 0,
    extra: dict | None = None,
) -> FlightRecorder | None:
    """Build a flight recorder from the environment, or ``None``.

    Returns a recorder dumping to ``flight-<context>-pid<pid>.json``
    under :data:`ENV_FLIGHT_DIR` (so concurrent processes — fleet
    workers — never collide), with the flush cadence taken from
    :data:`ENV_FLIGHT_FLUSH` unless ``flush_every`` overrides it.
    """
    flight_dir = os.environ.get(ENV_FLIGHT_DIR)
    if not flight_dir:
        return None
    if flush_every == 0:
        try:
            flush_every = int(os.environ.get(ENV_FLIGHT_FLUSH, "0"))
        except ValueError:
            flush_every = 0
    directory = Path(flight_dir)
    directory.mkdir(parents=True, exist_ok=True)
    safe = "".join(c if c.isalnum() or c in "-_." else "-" for c in context)
    flight = FlightRecorder(
        directory / f"flight-{safe}-pid{os.getpid()}.json",
        per_rank=per_rank,
        flush_every=flush_every,
    )
    flight.context = {"context": context, **(extra or {})}
    return flight


def maybe_attach_flight(
    engine: "Engine",
    context: str = "run",
    per_rank: int = 256,
    flush_every: int = 0,
    extra: dict | None = None,
) -> FlightRecorder | None:
    """Arm the flight recorder on ``engine`` when :data:`ENV_FLIGHT_DIR` is set.

    Reuses the engine's recorder when one is attached (any sink); when
    none is, attaches one with a :class:`~repro.obs.stream.NullSink` so
    flight recording adds only the ring's constant memory.
    """
    flight = flight_from_env(
        context, per_rank=per_rank, flush_every=flush_every, extra=extra
    )
    if flight is None:
        return None
    rec = Recorder.of(engine)
    if rec is None:
        from repro.obs.stream import NullSink

        rec = Recorder.attach(engine, sink=NullSink(), flight=flight)
    else:
        rec.set_flight(flight)
    return flight
