"""Cross-rank causal profiling: the happens-before DAG and its critical path.

The span recorder (:mod:`repro.obs.record`) captures two things: per-rank
*spans* (where each rank's virtual time went) and cross-rank *causal
edges* (the synchronization points where one rank's progress depended on
another's — steals, termination tokens, lock grants, task spawns; the
same happens-before relation :mod:`repro.analyze.vectorclock` encodes
for race detection).  This module combines them into a
:class:`CausalGraph` and extracts the **critical path**: the single
chain of activities and cross-rank hops that determined the run's
makespan.  Per-rank aggregates (Figure 5/6-style breakdowns) cannot
answer "what limited the run" — a rank can be 90% busy with work that
was never on the determining chain.  The critical path can, and its
**blame decomposition** splits the makespan exactly into categories
(task work, steal, queue moves, lock wait, termination wave, idle), so
the blamed durations sum to the measured makespan by construction.

Graph model
-----------

* Each rank's timeline is cut at every causal-edge endpoint touching
  it (plus the global window bounds ``t0``/``t1``), producing a chain
  of *segments* per rank, linked in program order.
* A segment's duration is decomposed by the **innermost** span category
  covering each instant (the same containment rule
  :func:`repro.obs.export.self_times` uses), mapped to blame
  categories; uncovered time is ``idle``.  ``comm`` spans are
  transparent: a ``get`` inside a steal blames ``steal``.
* Cross-rank edges connect their source point to their destination
  point; the measured latency is ``dst_time - src_time``.

Critical-path extraction walks backwards from the makespan point.  At
each cut point it either consumes the local segment before it, or —
when that segment was predominantly *waiting* (idle/lock blame) and an
incoming edge ends at the point — hops across the edge to the rank
whose action released the waiter.  Either way the path stays contiguous
in time, which is what makes the blame sum exact.

See ``docs/observability.md`` ("Causal profiling") for the full rules
and :mod:`repro.obs.whatif` for what-if projection over the same graph.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import defaultdict
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING

from repro.obs.record import EdgeRecord, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.record import Recorder

__all__ = [
    "BLAME_CATEGORIES",
    "edge_blame",
    "blame_profile",
    "CausalGraph",
    "PathStep",
    "CritPath",
    "critical_path",
]

#: All blame categories a decomposition can produce, in display order.
BLAME_CATEGORIES: tuple[str, ...] = (
    "task", "steal", "queue", "lock", "wave", "comm", "runtime", "idle",
)

#: Span category -> blame category for categories that blame directly.
_PRIMARY_BLAME: dict[str, str] = {
    "task": "task",
    "steal": "steal",
    "queue": "queue",
    "lock": "lock",
    "termination": "wave",
    "idle": "idle",
}

#: Span categories that defer to their enclosing span's blame (a ``get``
#: inside a steal is steal cost; a bare one is generic comm).
_TRANSPARENT: dict[str, str] = {"comm": "comm", "runtime": "runtime"}

#: Blame categories counted as *waiting* when deciding whether a cut
#: point was released by an incoming edge (see the walk rule above).
_WAIT_BLAME = frozenset({"idle", "lock"})


def edge_blame(edge: EdgeRecord) -> str:
    """The blame category charged to time spent crossing ``edge``."""
    if edge.kind == "steal":
        return "steal"
    if edge.kind == "lock":
        return "lock"
    if edge.kind in ("dirty",):
        return "wave"
    if edge.kind == "msg":
        # Mailboxes currently carry termination tokens (tag "td:...");
        # any future message kind falls back to generic comm.
        return "wave" if str(edge.detail).startswith("td:") else "comm"
    if edge.kind == "spawn":
        return "task"
    return "comm"


def _chain_blame(chain: list[SpanRecord]) -> str:
    """Blame category for a chain of covering spans, innermost first."""
    for s in chain:
        mapped = _PRIMARY_BLAME.get(s.category)
        if mapped is not None:
            return mapped
    for s in chain:
        mapped = _TRANSPARENT.get(s.category)
        if mapped is not None:
            return mapped
    return _PRIMARY_BLAME.get(chain[0].category, "runtime") if chain else "idle"


def blame_profile(
    spans: list[SpanRecord], t0: float, t1: float
) -> list[tuple[float, float, str]]:
    """Piecewise blame over ``[t0, t1]`` for one rank's finished spans.

    Returns contiguous ``(start, end, category)`` pieces exactly
    covering the window (so piece durations always sum to ``t1 - t0``).
    """
    finished = [
        s for s in spans
        if s.end is not None and s.end > s.start and s.end > t0 and s.start < t1
    ]
    if t1 <= t0:
        return []
    if not finished:
        return [(t0, t1, "idle")]
    bounds = sorted(
        {t0, t1}
        | {max(s.start, t0) for s in finished}
        | {min(s.end, t1) for s in finished}
    )
    finished.sort(key=lambda s: (s.start, -s.end))
    pieces: list[tuple[float, float, str]] = []
    nxt = 0  # next span (by start) not yet activated
    active: list[tuple[float, float, int]] = []  # (-start, end, idx) sorted
    ends: list[tuple[float, int]] = []  # min-heap of (end, idx) for retirement
    alive: set[int] = set()
    for a, b in zip(bounds, bounds[1:]):
        while nxt < len(finished) and finished[nxt].start <= a:
            insort(active, (-finished[nxt].start, finished[nxt].end, nxt))
            heappush(ends, (finished[nxt].end, nxt))
            alive.add(nxt)
            nxt += 1
        while ends and ends[0][0] <= a:
            alive.discard(heappop(ends)[1])
        chain = [finished[i] for (_s, _e, i) in active if i in alive]
        cat = _chain_blame(chain)
        if pieces and pieces[-1][2] == cat and pieces[-1][1] == a:
            pieces[-1] = (pieces[-1][0], b, cat)
        else:
            pieces.append((a, b, cat))
    return pieces


def _interval_blame(
    profile: list[tuple[float, float, str]], a: float, b: float, lo_hint: int
) -> tuple[dict[str, float], int]:
    """Blame decomposition of ``[a, b]`` against a profile; returns the
    piece index to resume from (both walk left to right)."""
    out: dict[str, float] = defaultdict(float)
    i = lo_hint
    while i < len(profile) and profile[i][1] <= a:
        i += 1
    start_hint = i
    while i < len(profile) and profile[i][0] < b:
        s, e, cat = profile[i]
        overlap = min(e, b) - max(s, a)
        if overlap > 0:
            out[cat] += overlap
        i += 1
    return dict(out), start_hint


@dataclass
class CausalGraph:
    """The happens-before DAG of one recorded run."""

    nprocs: int
    t0: float
    t1: float
    #: per rank: strictly increasing cut times, first == t0, last == t1
    points: list[list[float]]
    #: per rank: blame decomposition of segment i = [points[i], points[i+1]]
    segments: list[list[dict[str, float]]]
    #: (rank, time) -> incoming edges ending exactly at that cut point
    edges_in: dict[tuple[int, float], list[EdgeRecord]]
    edges: list[EdgeRecord] = field(default_factory=list)
    #: the rank whose recorded activity actually reaches t1
    end_rank: int = 0
    #: per rank: last span-end/edge-endpoint time — beyond it the rank's
    #: timeline is pure window padding, which the projection treats as
    #: slack (it is not a constraint on anything)
    rank_ends: list[float] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    @classmethod
    def build(
        cls,
        spans: list[SpanRecord],
        edges: list[EdgeRecord],
        nprocs: int,
    ) -> "CausalGraph":
        """Construct the DAG from a recording's spans and causal edges."""
        finished = [s for s in spans if s.end is not None]
        times = [s.start for s in finished] + [s.end for s in finished]
        times += [e.src_time for e in edges] + [e.dst_time for e in edges]
        if not times:
            t0 = t1 = 0.0
        else:
            t0, t1 = min(times), max(times)
        cuts: list[set[float]] = [{t0, t1} for _ in range(nprocs)]
        # Actual activity per rank (span ends + edge endpoints), as
        # opposed to the forced t0/t1 window padding in ``cuts``.
        activity: list[set[float]] = [set() for _ in range(nprocs)]
        edges_in: dict[tuple[int, float], list[EdgeRecord]] = defaultdict(list)
        for e in edges:
            if 0 <= e.src_rank < nprocs:
                cuts[e.src_rank].add(e.src_time)
                activity[e.src_rank].add(e.src_time)
            if 0 <= e.dst_rank < nprocs:
                cuts[e.dst_rank].add(e.dst_time)
                activity[e.dst_rank].add(e.dst_time)
                edges_in[(e.dst_rank, e.dst_time)].append(e)
        points = [sorted(c) for c in cuts]

        by_rank: list[list[SpanRecord]] = [[] for _ in range(nprocs)]
        for s in finished:
            if 0 <= s.rank < nprocs:
                by_rank[s.rank].append(s)
        segments: list[list[dict[str, float]]] = []
        rank_ends = [t0] * nprocs
        for r in range(nprocs):
            profile = blame_profile(by_rank[r], t0, t1)
            segs: list[dict[str, float]] = []
            hint = 0
            for a, b in zip(points[r], points[r][1:]):
                blame, hint = _interval_blame(profile, a, b, hint)
                segs.append(blame)
            segments.append(segs)
            reach = [t0]
            reach += [s.end for s in by_rank[r]]
            reach += list(activity[r])
            rank_ends[r] = max(reach)
        # Ranks whose own activity reaches t1 (not just the padded window).
        end_rank = 0
        best = -1.0
        for r in range(nprocs):
            if rank_ends[r] > best + 1e-18:
                best = rank_ends[r]
                end_rank = r
        return cls(
            nprocs=nprocs,
            t0=t0,
            t1=t1,
            points=points,
            segments=segments,
            edges_in=dict(edges_in),
            edges=list(edges),
            end_rank=end_rank,
            rank_ends=rank_ends,
        )

    @classmethod
    def from_recorder(cls, recorder: "Recorder") -> "CausalGraph":
        return cls.build(
            recorder.spans, recorder.edges, recorder.engine.nprocs
        )

    # ------------------------------------------------------------------ #
    # Segment queries
    # ------------------------------------------------------------------ #
    def point_index(self, rank: int, time: float) -> int:
        """Index of ``time`` in ``points[rank]`` (must be a cut point)."""
        pts = self.points[rank]
        i = bisect_left(pts, time)
        if i >= len(pts) or pts[i] != time:
            raise ValueError(f"{time!r} is not a cut point of rank {rank}")
        return i

    def wait_fraction(self, rank: int, seg: int) -> float:
        """Share of segment ``seg`` blamed to waiting (idle or lock)."""
        blame = self.segments[rank][seg]
        total = sum(blame.values())
        if total <= 0.0:
            return 1.0  # a zero-length segment imposes no local work
        return sum(blame.get(c, 0.0) for c in _WAIT_BLAME) / total

    def aggregate_blame(self) -> dict[str, float]:
        """Whole-graph blame totals across every rank's full timeline."""
        out: dict[str, float] = defaultdict(float)
        for segs in self.segments:
            for blame in segs:
                for cat, d in blame.items():
                    out[cat] += d
        return dict(out)


@dataclass(frozen=True)
class PathStep:
    """One contiguous piece of the critical path."""

    kind: str  #: "local" (a rank's own segment) or "edge" (a cross-rank hop)
    rank: int  #: the rank the step's time is charged to (edge: source rank)
    start: float
    end: float
    blame: dict[str, float]
    name: str = ""
    detail: object = None
    dst_rank: int | None = None  #: edge steps: the rank that was released

    @property
    def duration(self) -> float:
        return self.end - self.start

    def describe(self) -> str:
        top = max(self.blame.items(), key=lambda kv: kv[1])[0] if self.blame else "idle"
        span = f"[{self.start * 1e6:.3f} .. {self.end * 1e6:.3f}]"
        if self.kind == "edge":
            return (
                f"rank {self.rank} -> {self.dst_rank}: {self.name} hop "
                f"{self.duration * 1e6:10.3f} us {span} [{top}]"
            )
        return (
            f"rank {self.rank}: {self.name or 'segment'} "
            f"{self.duration * 1e6:10.3f} us {span} [{top}]"
        )


@dataclass
class CritPath:
    """The extracted critical path plus its blame decomposition."""

    steps: list[PathStep]
    t0: float
    t1: float

    @property
    def makespan(self) -> float:
        return self.t1 - self.t0

    def blame(self) -> dict[str, float]:
        """Total blamed duration per category; sums to the makespan."""
        out: dict[str, float] = defaultdict(float)
        for step in self.steps:
            for cat, d in step.blame.items():
                out[cat] += d
        return dict(out)

    def blame_fractions(self) -> dict[str, float]:
        """``blame`` normalized by the makespan (sums to 1.0)."""
        span = self.makespan
        if span <= 0.0:
            return {}
        return {cat: d / span for cat, d in self.blame().items()}

    def hops(self) -> int:
        """Number of cross-rank hops on the path."""
        return sum(1 for s in self.steps if s.kind == "edge")


def _binding_edge(
    graph: CausalGraph, rank: int, time: float
) -> EdgeRecord | None:
    """The incoming edge the backward walk should follow at a point.

    Only candidates that strictly precede the point are eligible (a
    zero-latency edge cannot shorten the path and would not terminate
    the walk); among them the latest source wins — it is the dependency
    that actually gated the release — with rank/id tie-breaks for
    byte-for-byte deterministic output.
    """
    candidates = [
        e for e in graph.edges_in.get((rank, time), []) if e.src_time < time
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda e: (e.src_time, -e.src_rank, -e.eid))


def critical_path(graph: CausalGraph, wait_threshold: float = 0.5) -> CritPath:
    """Walk the makespan-determining chain backwards through the DAG.

    At each cut point: hop across the binding incoming edge when the
    local segment leading to the point was mostly waiting (blamed
    idle/lock beyond ``wait_threshold``), else consume the local
    segment.  The returned steps are time-ordered and contiguous over
    ``[t0, t1]``, so their blamed durations sum to the makespan.
    """
    steps: list[PathStep] = []
    rank, t = graph.end_rank, graph.t1
    guard = sum(len(p) for p in graph.points) + len(graph.edges) + 1
    while t > graph.t0 and guard > 0:
        guard -= 1
        i = graph.point_index(rank, t)
        seg = i - 1
        edge = _binding_edge(graph, rank, t)
        if (
            edge is not None
            and seg >= 0
            and graph.wait_fraction(rank, seg) > wait_threshold
        ):
            steps.append(
                PathStep(
                    kind="edge",
                    rank=edge.src_rank,
                    dst_rank=rank,
                    start=edge.src_time,
                    end=t,
                    blame={edge_blame(edge): t - edge.src_time},
                    name=edge.kind,
                    detail=edge.detail,
                )
            )
            rank, t = edge.src_rank, edge.src_time
            continue
        if seg < 0:  # pragma: no cover - t0 is always each rank's first point
            break
        prev = graph.points[rank][seg]
        steps.append(
            PathStep(
                kind="local",
                rank=rank,
                start=prev,
                end=t,
                blame=dict(graph.segments[rank][seg]),
            )
        )
        t = prev
    steps.reverse()
    return CritPath(steps=steps, t0=graph.t0, t1=graph.t1)


def render_critical_path(
    path: CritPath, graph: CausalGraph, top: int = 12
) -> str:
    """Terminal report: blame table, fractions, and the longest steps."""
    lines = [
        f"critical path: {path.makespan * 1e6:.3f} us makespan, "
        f"{len(path.steps)} steps, {path.hops()} cross-rank hops"
    ]
    blame = path.blame()
    fractions = path.blame_fractions()
    lines.append("")
    lines.append(f"{'category':<10} {'blamed(us)':>14} {'fraction':>10}")
    for cat in BLAME_CATEGORIES:
        if cat not in blame:
            continue
        lines.append(
            f"{cat:<10} {blame[cat] * 1e6:>14.3f} {fractions[cat]:>10.4f}"
        )
    total = sum(blame.values())
    lines.append(
        f"{'total':<10} {total * 1e6:>14.3f} {sum(fractions.values()):>10.4f}"
    )
    longest = sorted(path.steps, key=lambda s: (-s.duration, s.start))[:top]
    lines.append("")
    lines.append(f"longest {len(longest)} steps:")
    for s in longest:
        lines.append(f"  {s.describe()}")
    return "\n".join(lines)
