"""Task-parallel blocked matrix multiplication over Global Arrays (§4).

The paper's worked example (Figure 3): all ranks collectively create a
task collection, register the multiply callback, and seed one task per
block triple they own; ``tc_process`` runs the MIMD phase.  The task
body carries portable references — GA handles are integers — plus the
block indices, exactly like the paper's ``mm_task`` struct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.armci.runtime import Armci
from repro.core import AFFINITY_HIGH, SciotoConfig, Task, TaskCollection
from repro.core.stats import ProcessStats
from repro.ga import GlobalArray
from repro.sim.engine import Engine, SimResult
from repro.sim.machines import MachineSpec

__all__ = ["run_matmul", "MatmulResult"]


@dataclass
class MatmulResult:
    """Outcome of a distributed blocked matrix multiplication."""

    c: np.ndarray  #: the assembled product (for verification)
    elapsed: float
    nprocs: int
    per_rank: list[ProcessStats]
    sim: SimResult


def _mm_main(proc, a_mat: np.ndarray, b_mat: np.ndarray, num_blocks: int,
             config: SciotoConfig):
    n = a_mat.shape[0]
    bs = n // num_blocks
    a_ga = GlobalArray.create(proc, "A", (n, n))
    b_ga = GlobalArray.create(proc, "B", (n, n))
    c_ga = GlobalArray.create(proc, "C", (n, n))
    (plo, phi) = a_ga.distribution(proc.rank)
    sl = tuple(slice(l, h) for l, h in zip(plo, phi))
    a_ga.access(proc)[...] = a_mat[sl]
    b_ga.access(proc)[...] = b_mat[sl]
    a_ga.sync(proc)

    tc = TaskCollection.create(proc, task_size=64,
                               max_tasks=num_blocks**3 + 8, config=config)

    def box(i, j):
        return (i * bs, j * bs), ((i + 1) * bs, (j + 1) * bs)

    def mm_task_fcn(tc_, task):
        # mm task body: GA handles are portable integer references (§2.2)
        a_gid, b_gid, c_gid, i, j, k = task.body
        p = tc_.proc
        from repro.ga.array import GaRuntime

        arrays = GaRuntime.attach(p.engine).arrays
        a, b, c = arrays[a_gid], arrays[b_gid], arrays[c_gid]
        lo_a, hi_a = box(i, k)
        lo_b, hi_b = box(k, j)
        lo_c, hi_c = box(i, j)
        a_blk = a.get(p, lo_a, hi_a)
        b_blk = b.get(p, lo_b, hi_b)
        p.compute(2.0 * bs**3 * p.machine.seconds_per_flop)
        c.acc(p, lo_c, hi_c, a_blk @ b_blk)

    hdl = tc.register(mm_task_fcn)

    def get_owner(i, j, k):
        """Owner of the A block read by task (i, j, k), as in Figure 3."""
        return a_ga.locate((i * bs, k * bs))

    for i in range(num_blocks):
        for j in range(num_blocks):
            for k in range(num_blocks):
                if get_owner(i, j, k) == proc.rank:
                    task = Task(callback=hdl,
                                body=(a_ga.gid, b_ga.gid, c_ga.gid, i, j, k))
                    tc.add(task, rank=proc.rank, affinity=AFFINITY_HIGH)
    armci = Armci.attach(proc.engine)
    armci.barrier(proc)
    t0 = proc.now
    stats = tc.process()
    c_ga.sync(proc)
    elapsed = armci.allreduce(proc, proc.now - t0, max)
    tc.destroy()
    return (elapsed, stats, c_ga)


def run_matmul(
    nprocs: int,
    a_mat: np.ndarray,
    b_mat: np.ndarray,
    num_blocks: int = 4,
    machine: MachineSpec | None = None,
    seed: int = 0,
    config: SciotoConfig | None = None,
    max_events: int | None = None,
) -> MatmulResult:
    """Multiply two square matrices with Scioto-scheduled block tasks.

    ``a_mat.shape[0]`` must be divisible by ``num_blocks``.
    """
    n = a_mat.shape[0]
    if a_mat.shape != (n, n) or b_mat.shape != (n, n):
        raise ValueError("matrices must be square and of equal shape")
    if n % num_blocks:
        raise ValueError(f"matrix size {n} not divisible by num_blocks={num_blocks}")
    cfg = config if config is not None else SciotoConfig()
    eng = Engine(nprocs, machine=machine, seed=seed, max_events=max_events)
    eng.spawn_all(_mm_main, a_mat, b_mat, num_blocks, cfg)
    sim = eng.run()
    elapsed, _, c_ga = sim.returns[0]
    return MatmulResult(
        c=c_ga.unsafe_snapshot(),
        elapsed=elapsed,
        nprocs=nprocs,
        per_rank=[r[1] for r in sim.returns],
        sim=sim,
    )
