"""Exploration runner: many schedules, invariant checks, replay, shrink.

The core loop is :func:`explore`: run a scenario under a fresh seeded
exploration strategy N times; after each run, feed the recorded event
stream to the scenario's invariant checkers.  On the first failure —
an invariant violation, a deadlock, or any protocol exception — the
decision trace is persisted, replayed to confirm determinism, minimized
by delta debugging, and reported.

A *failure signature* identifies a failure class for reproduction
purposes: the sorted set of violated invariant names, or the exception
type (for deadlocks, extended with the parked rank set so that "the same
deadlock" means the same stuck configuration, not just any deadlock).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

import repro.core.task as task_mod

from repro.check.invariants import Violation
from repro.check.mutations import apply_mutation
from repro.check.scenarios import Scenario, make_scenario
from repro.check.strategies import ExplorationStrategy, ReplayStrategy, make_strategy
from repro.check.traces import DecisionTrace, minimize_decisions
from repro.sim.engine import Engine, SchedulingStrategy
from repro.obs.flight import maybe_attach_flight
from repro.obs.tracing import Tracer
from repro.util.errors import ReproError, SimDeadlockError

__all__ = ["RunOutcome", "FailureReport", "ExploreResult", "run_once", "explore", "replay"]


@dataclass
class RunOutcome:
    """Result of one schedule of one scenario."""

    error: str | None = None
    parked: tuple[tuple[int, str | None], ...] = ()
    violations: list[Violation] = field(default_factory=list)
    events: int = 0
    decisions: list[dict] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.error is not None or bool(self.violations)

    @property
    def signature(self) -> tuple:
        """Hashable failure class; () when the run was clean."""
        if self.error is not None:
            kind = self.error.split(":", 1)[0]
            if kind == "SimDeadlockError":
                return ("deadlock", tuple(sorted(r for r, _ in self.parked)))
            return ("error", kind)
        if self.violations:
            return ("invariants", tuple(sorted({v.invariant for v in self.violations})))
        return ()

    @property
    def signature_json(self) -> list:
        """The signature in its JSON (list) form, as stored in traces."""
        return json.loads(json.dumps(self.signature))

    def describe(self) -> str:
        if self.error is not None:
            return self.error
        if self.violations:
            return "; ".join(str(v) for v in self.violations[:4])
        return "ok"


@dataclass
class FailureReport:
    """A failing schedule plus its replay artifacts."""

    schedule_index: int
    strategy_seed: int
    outcome: RunOutcome
    trace_path: Path | None = None
    minimized_path: Path | None = None
    decisions_total: int = 0
    decisions_minimized: int = 0
    replay_confirmed: bool = False


@dataclass
class ExploreResult:
    """Summary of one :func:`explore` campaign."""

    target: str
    strategy: str
    schedules_run: int
    events_total: int = 0
    failures: list[FailureReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_once(
    scenario: Scenario,
    strategy: SchedulingStrategy | None,
    engine_seed: int = 0,
    mutation: str | None = None,
    engine_hook=None,
) -> RunOutcome:
    """Run one schedule of ``scenario`` under ``strategy`` and check it.

    ``engine_hook`` (when given) is called with the engine after
    creation and before the scenario builds — the attachment point for
    extra observers (race detector, trace capture, witness listeners)
    without perturbing the run.
    """
    out = RunOutcome()
    # fresh task uids per run so the uids in a persisted failure trace
    # mean the same thing when the trace is replayed in a new process
    task_mod._uid_counter = itertools.count(1)
    with apply_mutation(mutation):
        engine = Engine(
            scenario.nprocs,
            seed=engine_seed,
            max_events=scenario.max_events,
            strategy=strategy,
        )
        tracer = Tracer.attach(engine)
        if engine_hook is not None:
            engine_hook(engine)
        # When $REPRO_FLIGHT_DIR is set, arm the flight recorder: engine
        # failures (deadlock, PredictedDeadlockError, limits, crashes)
        # dump the last spans per rank via the engine's failure hooks.
        flight = maybe_attach_flight(engine, context=f"check-{scenario.name}")
        ctx = scenario.build(engine)
        try:
            engine.run()
        except SimDeadlockError as exc:
            out.error = f"{type(exc).__name__}: {exc}"
            out.parked = tuple(exc.parked)
        except (ReproError, RuntimeError, AssertionError) as exc:
            out.error = f"{type(exc).__name__}: {exc}"
    out.events = engine.events
    if isinstance(strategy, (ExplorationStrategy, ReplayStrategy)):
        out.decisions = list(strategy.decisions)
    if out.error is None:
        # checkers assume a complete run; a crashed/deadlocked one is
        # already a reported failure and its stream is partial by design
        for checker in scenario.checkers():
            out.violations.extend(checker.check(tracer.events, ctx))
        if out.violations and flight is not None:
            flight.dump(
                "invariant-failure",
                error="; ".join(str(v) for v in out.violations[:4]),
            )
    return out


def replay(trace: DecisionTrace, decisions: list[dict] | None = None) -> RunOutcome:
    """Re-execute a persisted trace (optionally with an edited decision list)."""
    scenario = make_scenario(trace.target)
    strategy = ReplayStrategy(trace.decisions if decisions is None else decisions)
    return run_once(
        scenario,
        strategy,
        engine_seed=trace.engine_seed,
        mutation=trace.mutation,
    )


def explore(
    target: str,
    schedules: int,
    strategy_name: str = "random",
    seed: int = 0,
    engine_seed: int = 0,
    mutation: str | None = None,
    out_dir: str | Path | None = None,
    stop_on_failure: bool = True,
    minimize: bool = True,
    max_minimize_replays: int = 150,
    progress=None,
) -> ExploreResult:
    """Explore ``schedules`` interleavings of ``target`` and check invariants.

    Args:
        target: Scenario name (see ``repro.check.scenarios.SCENARIOS``).
        schedules: Number of schedules to run; schedule ``i`` uses
            strategy seed ``seed + i``.
        strategy_name: ``random``, ``pct``, ``delay`` or ``deterministic``.
        seed: Base strategy seed.
        engine_seed: Engine (workload) seed, fixed across schedules.
        mutation: Optional intentional bug to apply (``repro.check.mutations``).
        out_dir: Where to persist failure traces (default ``scioto-check/``).
        stop_on_failure: Stop at the first failing schedule (default) or
            keep exploring and collect every distinct failure.
        minimize: Shrink the failing decision trace by delta debugging.
        max_minimize_replays: Replay budget for the minimizer.
        progress: Optional ``fn(i, outcome)`` called after each schedule.
    """
    scenario = make_scenario(target)
    result = ExploreResult(target=target, strategy=strategy_name, schedules_run=0)
    out_dir = Path(out_dir) if out_dir is not None else Path("scioto-check")
    seen_signatures: set[tuple] = set()

    for i in range(schedules):
        strategy = make_strategy(strategy_name, seed=seed + i)
        outcome = run_once(scenario, strategy, engine_seed=engine_seed, mutation=mutation)
        result.schedules_run += 1
        result.events_total += outcome.events
        if progress is not None:
            progress(i, outcome)
        if not outcome.failed:
            continue
        if outcome.signature in seen_signatures:
            continue
        seen_signatures.add(outcome.signature)
        report = _report_failure(
            target,
            strategy_name,
            seed + i,
            engine_seed,
            mutation,
            i,
            outcome,
            out_dir,
            minimize,
            max_minimize_replays,
        )
        result.failures.append(report)
        if stop_on_failure:
            break
    return result


def _report_failure(
    target: str,
    strategy_name: str,
    strategy_seed: int,
    engine_seed: int,
    mutation: str | None,
    index: int,
    outcome: RunOutcome,
    out_dir: Path,
    minimize: bool,
    max_minimize_replays: int,
) -> FailureReport:
    """Persist, replay-confirm, and minimize one failing schedule."""
    trace = DecisionTrace(
        target=target,
        strategy=strategy_name,
        strategy_seed=strategy_seed,
        engine_seed=engine_seed,
        nprocs=make_scenario(target).nprocs,
        schedule_index=index,
        failure=outcome.describe(),
        mutation=mutation if mutation is not None else "none",
        signature=outcome.signature_json,
        decisions=outcome.decisions,
    )
    stem = f"{target}-{strategy_name}-s{strategy_seed}"
    trace_path = trace.save(out_dir / f"{stem}.trace.json")
    report = FailureReport(
        schedule_index=index,
        strategy_seed=strategy_seed,
        outcome=outcome,
        trace_path=trace_path,
        decisions_total=len(outcome.decisions),
    )
    want = outcome.signature
    report.replay_confirmed = replay(trace).signature == want
    if minimize and report.replay_confirmed and outcome.decisions:
        minimized, _used = minimize_decisions(
            outcome.decisions,
            lambda ds: replay(trace, decisions=ds).signature == want,
            max_replays=max_minimize_replays,
        )
        min_trace = DecisionTrace(**{**trace.__dict__, "decisions": minimized})
        report.minimized_path = min_trace.save(out_dir / f"{stem}.min.json")
        report.decisions_minimized = len(minimized)
    return report
