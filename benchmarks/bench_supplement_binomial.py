"""Supplementary: binomial UTS — the worst-case load-balancing stressor.

The paper evaluates UTS on geometric trees (Figures 7-8); the UTS
benchmark's binomial trees are the harder case — near-critical branching
gives subtree sizes with enormous variance and depth in the hundreds, so
almost all parallelism must be discovered by stealing long chains.  This
benchmark confirms Scioto's advantage persists (and typically grows)
under that stress.
"""

from repro.apps.uts import run_uts_mpi, run_uts_scioto
from repro.apps.uts.presets import EXPECTED_NODES, preset
from repro.bench.harness import scale
from repro.util.records import Series, SweepResult
from repro.bench.report import render
from repro.sim.machines import heterogeneous_cluster


def run_binomial(scale_name: str) -> SweepResult:
    params = preset("binomial")
    procs = [4, 8, 16] if scale_name == "quick" else [8, 16, 32, 64]
    result = SweepResult(experiment="supplement-binomial-uts")
    scioto = Series(label="Scioto", unit="Mnodes/s")
    mpi = Series(label="MPI-WS", unit="Mnodes/s")
    for p in procs:
        mach = heterogeneous_cluster(p)
        s = run_uts_scioto(p, params, machine=mach, seed=1)
        m = run_uts_mpi(p, params, machine=mach, seed=1)
        assert s.stats.nodes == m.stats.nodes == EXPECTED_NODES["binomial"]
        scioto.add(p, s.throughput / 1e6)
        mpi.add(p, m.throughput / 1e6)
    result.series = [scioto, mpi]
    result.notes.append("binomial tree: 86k nodes, depth 155, leaf fraction > 0.6")
    return result


def test_supplement_binomial(benchmark):
    result = benchmark.pedantic(run_binomial, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, fmt="{:.2f}"))
    scioto = result.get("Scioto")
    mpi = result.get("MPI-WS")
    for p in scioto.xs:
        assert scioto.y_at(p) > mpi.y_at(p), p
    big, small = max(scioto.xs), min(scioto.xs)
    assert scioto.y_at(big) > 1.5 * scioto.y_at(small)
