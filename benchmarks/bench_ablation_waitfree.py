"""Ablation A6: locked vs wait-free steal protocol (§8 future work)."""

from repro.bench.ablations import run_ablation_waitfree
from repro.bench.harness import scale
from repro.bench.report import render


def test_ablation_waitfree_steals(benchmark):
    result = benchmark.pedantic(
        run_ablation_waitfree, args=(scale(),), rounds=1, iterations=1
    )
    print("\n" + render(result, fmt="{:.2f}"))
    locked = result.get("locked-steals")
    waitfree = result.get("wait-free-steals")
    big = max(locked.xs)
    # removing the mutex must not cost throughput, and typically gains a
    # little once steal traffic is non-trivial
    assert waitfree.y_at(big) > 0.95 * locked.y_at(big)
