"""MPI-like two-sided messaging layer over the simulator.

Only what the baselines need: eager send, blocking receive, ``iprobe``
polling, and a dissemination barrier.  The explicit polling this model
requires of work-stealing victims is precisely the overhead Scioto's
one-sided design eliminates (§6.3 of the paper).
"""

from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, Mpi

__all__ = ["Mpi", "ANY_SOURCE", "ANY_TAG"]
