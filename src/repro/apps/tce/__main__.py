"""Command-line driver for the TCE block-sparse contraction kernel.

Examples::

    python -m repro.apps.tce --nprocs 16 --nblocks 12 --blocksize 48
    python -m repro.apps.tce --scheduler original --density 0.3
    python -m repro.apps.tce --placement roundrobin   # locality ablation
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.apps.tce import (
    TCEProblem,
    contract_sequential,
    run_tce_original,
    run_tce_scioto,
)
from repro.sim.machines import cray_xt4, heterogeneous_cluster, uniform_cluster

_MACHINES = {
    "cluster": uniform_cluster,
    "het": heterogeneous_cluster,
    "xt4": cray_xt4,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro.apps.tce", description=__doc__)
    p.add_argument("--nprocs", type=int, default=8)
    p.add_argument("--scheduler", choices=["scioto", "original"], default="scioto")
    p.add_argument("--placement", choices=["owner", "roundrobin"], default="owner")
    p.add_argument("--machine", choices=sorted(_MACHINES), default="het")
    p.add_argument("--nblocks", type=int, default=10)
    p.add_argument("--blocksize", type=int, default=48)
    p.add_argument("--density", type=float, default=0.4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--verify", action="store_true",
                   help="check C against the dense reference")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    problem = TCEProblem(nblocks=args.nblocks, blocksize=args.blocksize,
                         density=args.density)
    machine = _MACHINES[args.machine](args.nprocs)
    if args.scheduler == "scioto":
        r = run_tce_scioto(args.nprocs, problem, machine=machine, seed=args.seed,
                           placement=args.placement)
    else:
        r = run_tce_original(args.nprocs, problem, machine=machine, seed=args.seed)
    nz = len(problem.nonzero_triples())
    print(f"TCE ({args.scheduler}/{args.placement}) n={problem.n}: "
          f"{nz} real tasks of {len(problem.all_triples())} triples")
    print(f"virtual time {r.elapsed * 1e3:.2f} ms on {args.nprocs} ranks; "
          f"remote accs {int(r.comm.get('acc_remote', 0))}, "
          f"counter claims {int(r.comm.get('rmw', 0))}")
    if args.verify:
        ok = np.allclose(r.result, contract_sequential(problem), atol=1e-9)
        print(f"matches dense reference: {ok}")
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
