"""Sparse tensor contraction kernel from the Tensor Contraction Engine (§6.2).

The paper's TCE kernel contracts two block-sparse tensors stored in
Global Arrays and accumulates into a distributed output array; the
irregularity comes from sparsity in the inputs.  The original code
balances load with a shared global counter over *all* block triples —
most of which are zero and are claimed only to be discarded — while the
Scioto port seeds one task per *nonzero* triple at the owner of its
output block.

This package reproduces that structure with deterministic block-sparse
matrices: ``C[i,j] += A[i,k] @ B[k,j]`` over a block grid, with random
(deterministic, replicated) nonzero masks for A and B.
"""

from repro.apps.tce.problem import TCEProblem
from repro.apps.tce.parallel import run_tce_scioto, run_tce_original, TCERunResult
from repro.apps.tce.reference import contract_sequential

__all__ = [
    "TCEProblem",
    "run_tce_scioto",
    "run_tce_original",
    "TCERunResult",
    "contract_sequential",
]
