"""Streaming span sinks: bounded-memory spill, sharded JSONL, trace pack.

The :class:`~repro.obs.record.Recorder` does not own its storage any
more — it pushes records into a :class:`SpanSink`:

* :class:`MemorySink` (the default) is the historical in-memory list
  behaviour, bit-for-bit: spans are appended at *open* time (so list
  index equals the span's stable ``sid``), instants and edges append in
  emission order, and the ``capacity`` bound drops-and-counts exactly
  as before.
* :class:`SpillSink` holds **no** completed records in memory: it
  buffers up to ``shard_size`` records and flushes them as sharded
  JSONL files (``spans-00000.jsonl`` …) in a spill directory, written
  atomically via :func:`repro.util.io.atomic_write_text`.  A footer
  ``index.json`` (schema :data:`STREAM_SCHEMA`) is sealed at the end of
  the run.  Recorder memory is bounded by the open-span stacks plus one
  shard buffer, independent of run length — this is what lets a
  million-event run be recorded at all (ROADMAP item 3).
* :class:`NullSink` stores nothing; it exists so the flight recorder
  (:mod:`repro.obs.flight`) can tap the completed-span stream without
  any retention.

Span shards are written **pre-sorted by the Chrome-trace event order**
``(tid, ts, -dur, sid)``, so :func:`pack` can produce a byte-identical
Chrome ``trace_event`` JSON with a constant-memory k-way merge over the
shard files — the packed bytes equal what
:func:`repro.obs.export.write_chrome_trace` writes for the same run
recorded in memory (tested on every check scenario).  Instants and
edges are order-preserving streams, so their shards concatenate.

:func:`merge_spills` generalizes :func:`pack` to fleet-wide trace
aggregation: each worker's spill directory becomes its own Perfetto
*process* (``pid`` = worker id) in one merged trace, with flow-arrow
ids offset so cross-rank arrows never collide between workers.

Spill directories hold the *span* stream; the companion *metrics*
stream — interval telemetry frames — is the live feed of
:mod:`repro.obs.live`, whose :func:`~repro.obs.live.merge_feeds` plays
the same fleet-aggregation role for frames that :func:`merge_spills`
plays for spans.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Iterable, Iterator

from repro.obs.record import EdgeRecord, InstantRecord, SpanRecord
from repro.util.io import atomic_write_text

__all__ = [
    "STREAM_SCHEMA",
    "SpanSink",
    "MemorySink",
    "SpillSink",
    "NullSink",
    "TeeSink",
    "SpillReader",
    "pack",
    "merge_spills",
]

#: Schema tag sealed into every spill directory's ``index.json``.
STREAM_SCHEMA = "repro-obs-stream/1"

#: Default records per shard file.  Bounds both the sink's buffer and
#: the per-shard sort cost; 32k span records is ~4 MB of JSONL.
DEFAULT_SHARD_SIZE = 32_768


def _span_sort_key(span: SpanRecord) -> tuple:
    """The Chrome-trace global span order: ``(tid, ts, -dur, sid)``.

    Computed with the exact float expressions the exporter uses for
    ``ts``/``dur``, so the shard merge reproduces the in-memory stable
    sort (which is sid-ordered input under key ``(tid, ts, -dur)``).
    """
    return (
        span.rank,
        span.start * 1e6,
        -(span.duration * 1e6),
        span.sid,
    )


class SpanSink:
    """Protocol for recorder storage; subclasses override what they keep.

    The recorder calls ``on_open`` when a span begins, ``on_close`` when
    it completes (``end`` is set), ``on_complete`` for out-of-stack
    completed spans, and ``on_instant``/``on_edge`` for the other record
    kinds.  ``accepts_*`` lets a bounded sink refuse a record *before*
    the recorder allocates it (the refusal is counted as a drop).
    """

    def accepts_span(self) -> bool:
        return True

    def accepts_instant(self) -> bool:
        return True

    def accepts_edge(self) -> bool:
        return True

    def on_open(self, span: SpanRecord) -> None:
        pass

    def on_close(self, span: SpanRecord) -> None:
        pass

    def on_complete(self, span: SpanRecord) -> None:
        pass

    def on_instant(self, inst: InstantRecord) -> None:
        pass

    def on_edge(self, edge: EdgeRecord) -> None:
        pass

    def seal(self, footer: dict) -> None:
        """Finish the stream (flush buffers, write the footer index)."""

    # -- full-stream reads (fingerprints, small-run analysis) ----------- #
    def span_stream(self) -> list[SpanRecord]:
        """Every recorded span in ``sid`` (emission) order."""
        raise NotImplementedError

    def instant_stream(self) -> list[InstantRecord]:
        raise NotImplementedError

    def edge_stream(self) -> list[EdgeRecord]:
        raise NotImplementedError


class MemorySink(SpanSink):
    """The historical in-memory storage: plain lists, capacity-bounded."""

    def __init__(self, capacity: int = 2_000_000) -> None:
        self.capacity = capacity
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.edges: list[EdgeRecord] = []

    def accepts_span(self) -> bool:
        return len(self.spans) < self.capacity

    def accepts_instant(self) -> bool:
        return len(self.instants) < self.capacity

    def accepts_edge(self) -> bool:
        return len(self.edges) < self.capacity

    def on_open(self, span: SpanRecord) -> None:
        # Appending at open keeps list index == sid, which is what makes
        # ``parent`` usable as an index into ``Recorder.spans``.
        self.spans.append(span)

    def on_complete(self, span: SpanRecord) -> None:
        self.spans.append(span)

    def on_instant(self, inst: InstantRecord) -> None:
        self.instants.append(inst)

    def on_edge(self, edge: EdgeRecord) -> None:
        self.edges.append(edge)

    def span_stream(self) -> list[SpanRecord]:
        return self.spans

    def instant_stream(self) -> list[InstantRecord]:
        return self.instants

    def edge_stream(self) -> list[EdgeRecord]:
        return self.edges


class NullSink(SpanSink):
    """Keeps nothing.  Used when only side-taps (flight rings) matter."""

    def span_stream(self) -> list[SpanRecord]:
        return []

    def instant_stream(self) -> list[InstantRecord]:
        return []

    def edge_stream(self) -> list[EdgeRecord]:
        return []


class TeeSink(SpanSink):
    """Duplicates one recording into several sinks.

    A record is accepted only if *every* child accepts it, so the drop
    decision (and the recorder's sid allocation) is shared — each child
    sees the exact same stream.  Reads delegate to the first child.
    The equivalence tests use this to record one run into a
    :class:`MemorySink` and a :class:`SpillSink` simultaneously, which
    is the only way to compare the two paths byte-for-byte (two
    *separate* runs differ in task uids carried in span details).
    """

    def __init__(self, *sinks: SpanSink) -> None:
        if not sinks:
            raise ValueError("TeeSink needs at least one child sink")
        self.sinks = sinks

    def accepts_span(self) -> bool:
        return all(s.accepts_span() for s in self.sinks)

    def accepts_instant(self) -> bool:
        return all(s.accepts_instant() for s in self.sinks)

    def accepts_edge(self) -> bool:
        return all(s.accepts_edge() for s in self.sinks)

    def on_open(self, span: SpanRecord) -> None:
        for s in self.sinks:
            s.on_open(span)

    def on_close(self, span: SpanRecord) -> None:
        for s in self.sinks:
            s.on_close(span)

    def on_complete(self, span: SpanRecord) -> None:
        for s in self.sinks:
            s.on_complete(span)

    def on_instant(self, inst: InstantRecord) -> None:
        for s in self.sinks:
            s.on_instant(inst)

    def on_edge(self, edge: EdgeRecord) -> None:
        for s in self.sinks:
            s.on_edge(edge)

    def seal(self, footer: dict) -> None:
        for s in self.sinks:
            s.seal(footer)

    def span_stream(self) -> list[SpanRecord]:
        return self.sinks[0].span_stream()

    def instant_stream(self) -> list[InstantRecord]:
        return self.sinks[0].instant_stream()

    def edge_stream(self) -> list[EdgeRecord]:
        return self.sinks[0].edge_stream()


def _span_line(span: SpanRecord) -> str:
    return json.dumps(
        [
            span.sid,
            span.rank,
            span.name,
            span.category,
            span.start,
            span.end,
            span.depth,
            span.parent,
            None if span.detail is None else str(span.detail),
        ]
    )


def _instant_line(inst: InstantRecord) -> str:
    return json.dumps(
        [
            inst.time,
            inst.rank,
            inst.name,
            inst.category,
            None if inst.detail is None else str(inst.detail),
        ]
    )


def _edge_line(edge: EdgeRecord) -> str:
    return json.dumps(
        [
            edge.eid,
            edge.kind,
            edge.src_rank,
            edge.src_time,
            edge.dst_rank,
            edge.dst_time,
            None if edge.detail is None else str(edge.detail),
        ]
    )


def _span_from_line(fields: list) -> SpanRecord:
    sid, rank, name, category, start, end, depth, parent, detail = fields
    return SpanRecord(
        rank=rank,
        name=name,
        category=category,
        start=start,
        end=end,
        depth=depth,
        parent=parent,
        detail=detail,
        sid=sid,
    )


def _instant_from_line(fields: list) -> InstantRecord:
    time, rank, name, category, detail = fields
    return InstantRecord(time, rank, name, category, detail)


def _edge_from_line(fields: list) -> EdgeRecord:
    eid, kind, src_rank, src_time, dst_rank, dst_time, detail = fields
    return EdgeRecord(eid, kind, src_rank, src_time, dst_rank, dst_time, detail)


class SpillSink(SpanSink):
    """Constant-memory sink: sharded JSONL spill under one directory.

    Completed records buffer up to ``shard_size`` and flush as one
    atomically written shard file.  Span shards are sorted by
    :func:`_span_sort_key` before writing so :func:`pack` can k-way
    merge them without materializing the run; instant/edge shards
    preserve emission order.  Detail payloads are stringified exactly
    the way the Chrome exporter would (``str(detail)``).
    """

    def __init__(
        self, directory: str | Path, shard_size: int = DEFAULT_SHARD_SIZE
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_size = shard_size
        self._bufs: dict[str, list] = {"spans": [], "instants": [], "edges": []}
        self.shards: dict[str, list[dict]] = {"spans": [], "instants": [], "edges": []}
        self.sealed = False

    # -- recorder interface -------------------------------------------- #
    def on_close(self, span: SpanRecord) -> None:
        self._push("spans", span)

    def on_complete(self, span: SpanRecord) -> None:
        self._push("spans", span)

    def on_instant(self, inst: InstantRecord) -> None:
        self._push("instants", inst)

    def on_edge(self, edge: EdgeRecord) -> None:
        self._push("edges", edge)

    def _push(self, kind: str, record) -> None:
        buf = self._bufs[kind]
        buf.append(record)
        if len(buf) >= self.shard_size:
            self._flush(kind)

    def _flush(self, kind: str) -> None:
        buf = self._bufs[kind]
        if not buf:
            return
        if kind == "spans":
            buf.sort(key=_span_sort_key)
            lines = [_span_line(s) for s in buf]
        elif kind == "instants":
            lines = [_instant_line(i) for i in buf]
        else:
            lines = [_edge_line(e) for e in buf]
        name = f"{kind}-{len(self.shards[kind]):05d}.jsonl"
        atomic_write_text(self.directory / name, "\n".join(lines) + "\n")
        self.shards[kind].append({"file": name, "count": len(buf)})
        buf.clear()

    def flush(self) -> None:
        """Flush every pending buffer to shard files."""
        for kind in ("spans", "instants", "edges"):
            self._flush(kind)

    def seal(self, footer: dict) -> None:
        """Write the footer ``index.json`` (idempotent; atomic)."""
        self.flush()
        doc = {
            "schema": STREAM_SCHEMA,
            **footer,
            "shards": self.shards,
        }
        atomic_write_text(self.directory / "index.json", json.dumps(doc, indent=2))
        self.sealed = True

    # -- full-stream reads --------------------------------------------- #
    def _reader(self) -> "SpillReader":
        self.flush()
        return SpillReader(self.directory, index=None, shards=self.shards)

    def span_stream(self) -> list[SpanRecord]:
        spans = list(self._reader().iter_spans())
        spans.sort(key=lambda s: s.sid)
        return spans

    def instant_stream(self) -> list[InstantRecord]:
        return list(self._reader().iter_instants())

    def edge_stream(self) -> list[EdgeRecord]:
        return list(self._reader().iter_edges())


class SpillReader:
    """Read-side of a spill directory (sealed or mid-write)."""

    def __init__(
        self,
        directory: str | Path,
        index: dict | None = None,
        shards: dict | None = None,
    ) -> None:
        self.directory = Path(directory)
        if index is None and shards is None:
            index_path = self.directory / "index.json"
            if not index_path.exists():
                raise FileNotFoundError(
                    f"{self.directory} holds no index.json; not a sealed "
                    f"spill directory (schema {STREAM_SCHEMA})"
                )
            index = json.loads(index_path.read_text())
            if index.get("schema") != STREAM_SCHEMA:
                raise ValueError(
                    f"{index_path}: unsupported spill schema "
                    f"{index.get('schema')!r}; expected {STREAM_SCHEMA}"
                )
        self.index = index or {}
        self.shards = shards if shards is not None else self.index["shards"]

    @property
    def nprocs(self) -> int:
        return int(self.index.get("nprocs", 0))

    def _iter_shard(self, kind: str, shard: dict) -> Iterator[list]:
        with open(self.directory / shard["file"], "r") as fh:
            for line in fh:
                if line.strip():
                    yield json.loads(line)

    def iter_spans_merged(self) -> Iterator[SpanRecord]:
        """All spans in Chrome-trace order: k-way merge of sorted shards."""
        streams = [
            map(_span_from_line, self._iter_shard("spans", sh))
            for sh in self.shards["spans"]
        ]
        return heapq.merge(*streams, key=_span_sort_key)

    def iter_spans(self) -> Iterator[SpanRecord]:
        """All spans, shard order (use ``sorted(..., key=sid)`` for stream order)."""
        for sh in self.shards["spans"]:
            yield from map(_span_from_line, self._iter_shard("spans", sh))

    def iter_instants(self) -> Iterator[InstantRecord]:
        for sh in self.shards["instants"]:
            yield from map(_instant_from_line, self._iter_shard("instants", sh))

    def iter_edges(self) -> Iterator[EdgeRecord]:
        for sh in self.shards["edges"]:
            yield from map(_edge_from_line, self._iter_shard("edges", sh))

    def load(self) -> tuple[list[SpanRecord], list[InstantRecord], list[EdgeRecord]]:
        """Materialize the full stream (for small-run analysis/verify)."""
        spans = sorted(self.iter_spans(), key=lambda s: s.sid)
        return spans, list(self.iter_instants()), list(self.iter_edges())


# ---------------------------------------------------------------------- #
# Streaming pack: spill directory -> Chrome trace JSON, constant memory
# ---------------------------------------------------------------------- #
class _EventWriter:
    """Writes a Chrome ``trace_event`` JSON byte-identically to
    ``json.dumps({"traceEvents": [...], ...})`` without holding the
    event list in memory."""

    def __init__(self, fh: IO[str]) -> None:
        self._fh = fh
        self._first = True
        self._fh.write('{"traceEvents": [')

    def event(self, ev: dict) -> None:
        if not self._first:
            self._fh.write(", ")
        self._first = False
        self._fh.write(json.dumps(ev))

    def finish(self, trailer: dict) -> None:
        """Close the event array and append the remaining document keys."""
        self._fh.write("]")
        for key, value in trailer.items():
            self._fh.write(f", {json.dumps(key)}: {json.dumps(value)}")
        self._fh.write("}")


def _atomic_stream(path: Path):
    """(fd-backed file handle, publish callable) for atomic streaming."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    fh = os.fdopen(fd, "w")

    def publish() -> None:
        fh.close()
        os.replace(tmp_name, path)

    def discard() -> None:
        try:
            fh.close()
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    return fh, publish, discard


def pack(
    spill_dir: str | Path,
    out_path: str | Path,
    flow_kinds: tuple[str, ...] | None = None,
) -> Path:
    """Convert a sealed spill directory into a Chrome trace JSON.

    Streams shard files straight into the output (constant memory) and
    produces bytes identical to
    :func:`repro.obs.export.write_chrome_trace` over the same run
    recorded with a :class:`MemorySink` (without a tracer or critical
    path attached).  The output is published atomically.
    """
    # Imported here: export imports record, stream must stay importable
    # from record's siblings without a cycle.
    from repro.obs.export import (
        FLOW_KINDS,
        flow_event_pair,
        instant_event,
        meta_events,
        span_event,
    )

    if flow_kinds is None:
        flow_kinds = FLOW_KINDS
    reader = SpillReader(spill_dir)
    out_path = Path(out_path)
    fh, publish, discard = _atomic_stream(out_path)
    try:
        w = _EventWriter(fh)
        for ev in meta_events(reader.nprocs):
            w.event(ev)
        for span in reader.iter_spans_merged():
            if span.end is None:
                continue
            w.event(span_event(span))
        for inst in reader.iter_instants():
            w.event(instant_event(inst))
        flows = 0
        for edge in reader.iter_edges():
            if edge.kind not in flow_kinds:
                continue
            flows += 1
            s_ev, f_ev = flow_event_pair(edge)
            w.event(s_ev)
            w.event(f_ev)
        w.finish(
            {
                "displayTimeUnit": "ns",
                "otherData": {
                    "source": "repro.obs",
                    "spans_recorded": reader.index.get("spans", 0),
                    "spans_dropped": reader.index.get("dropped", 0),
                    "edges_recorded": reader.index.get("edges", 0),
                    "flow_events": flows,
                },
            }
        )
        publish()
    except BaseException:
        discard()
        raise
    return out_path


def merge_spills(
    items: Iterable[tuple[int, str, str | Path]],
    out_path: str | Path,
    flow_kinds: tuple[str, ...] | None = None,
) -> Path:
    """Merge several spill directories into one fleet-wide Chrome trace.

    Args:
        items: ``(pid, label, spill_dir)`` triples — each spill becomes
            its own Perfetto process (one track per simulated rank
            inside it), named ``label``.
        out_path: Merged trace destination (written atomically).
        flow_kinds: Causal-edge kinds drawn as flow arrows.

    Flow-arrow ids are offset per process so arrows from different
    workers never alias.  Streams shard files; memory stays constant in
    total event count.
    """
    from repro.obs.export import (
        FLOW_KINDS,
        flow_event_pair,
        instant_event,
        meta_events,
        span_event,
    )

    if flow_kinds is None:
        flow_kinds = FLOW_KINDS
    out_path = Path(out_path)
    fh, publish, discard = _atomic_stream(out_path)
    totals = {"spans": 0, "edges": 0, "dropped": 0, "flow_events": 0, "processes": 0}
    try:
        w = _EventWriter(fh)
        eid_base = 0
        for pid, label, spill_dir in items:
            reader = SpillReader(spill_dir)
            totals["processes"] += 1
            totals["spans"] += int(reader.index.get("spans", 0))
            totals["edges"] += int(reader.index.get("edges", 0))
            totals["dropped"] += int(reader.index.get("dropped", 0))
            for ev in meta_events(reader.nprocs, pid=pid, process=label):
                w.event(ev)
            for span in reader.iter_spans_merged():
                if span.end is None:
                    continue
                w.event(span_event(span, pid=pid))
            for inst in reader.iter_instants():
                w.event(instant_event(inst, pid=pid))
            max_eid = -1
            for edge in reader.iter_edges():
                max_eid = max(max_eid, edge.eid)
                if edge.kind not in flow_kinds:
                    continue
                totals["flow_events"] += 1
                s_ev, f_ev = flow_event_pair(edge, pid=pid, eid_offset=eid_base)
                w.event(s_ev)
                w.event(f_ev)
            eid_base += max_eid + 1
        w.finish(
            {
                "displayTimeUnit": "ns",
                "otherData": {"source": "repro.fleet trace", **totals},
            }
        )
        publish()
    except BaseException:
        discard()
        raise
    return out_path
