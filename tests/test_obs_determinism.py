"""Recording must not perturb the deterministic schedule.

The acceptance bar of the observability subsystem: attaching a
``Recorder`` (spans + metrics + instants) leaves virtual-time results
and every ``Counters`` total bit-for-bit unchanged.  The fingerprint
covers elapsed time, engine event count, per-rank clocks, and the full
per-rank ARMCI and task-collection counter maps.
"""

from __future__ import annotations

import pytest

from repro.obs.scenarios import fingerprint, run_target


@pytest.mark.parametrize("target", ["queue", "steals"])
def test_recording_leaves_run_bit_for_bit_unchanged(target):
    off = fingerprint(run_target(target, record=False))
    on = fingerprint(run_target(target, record=True))
    assert off == on


def test_recorded_run_actually_recorded_something():
    run = run_target("steals", record=True)
    assert run.recorder is not None
    assert len(run.recorder.finished_spans()) > 0
    assert run.recorder.metrics.histograms  # at least one histogram fed


def test_recording_without_edges_keeps_span_stream_identical():
    on = run_target("steals", record=True, edges=True)
    off = run_target("steals", record=True, edges=False)
    assert on.recorder.edges and not off.recorder.edges
    assert on.recorder.stream_fingerprint() == off.recorder.stream_fingerprint()


def test_verify_cli_passes_on_check_scenarios(capsys):
    from repro.obs.__main__ import main

    assert main(["verify", "queue", "steals"]) == 0
    out = capsys.readouterr().out
    # one line per target/backend combination, plus the summary
    assert "span stream unchanged by recording, causal edges, streaming, and live telemetry" in out
    assert "0 dropped" in out
    assert "target/backend combinations deterministic" in out
    assert "DIVERGED" not in out
