"""Ablation A5: dynamic load balancing on vs off on the heterogeneous cluster."""

from repro.bench.ablations import run_ablation_static
from repro.bench.harness import scale
from repro.bench.report import render


def test_ablation_static_placement(benchmark):
    result = benchmark.pedantic(run_ablation_static, args=(scale(),), rounds=1, iterations=1)
    print("\n" + render(result, fmt="{:.2f}"))
    dyn = result.get("load-balancing-on")
    stat = result.get("load-balancing-off")
    big = max(dyn.xs)
    # with heterogeneous CPUs and an unbalanced tree, static placement
    # leaves throughput on the table at scale
    assert dyn.y_at(big) > 1.2 * stat.y_at(big)
