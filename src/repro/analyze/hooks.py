"""Zero-cost-when-off access hooks for the race detector.

The runtime layers (``repro.core``, ``repro.ga``, ``repro.armci``,
``repro.sim``) call these free functions at every shared-state touch
point.  When no :class:`~repro.analyze.race.RaceDetector` is attached
to the engine the cost is a single dict probe — the same pattern the
structured tracer uses — so instrumented code is safe on hot paths.

This module deliberately imports nothing from the runtime layers so
that any of them can import it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable

from repro.analyze.race import RaceDetector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Proc

__all__ = [
    "shared_read",
    "shared_write",
    "shared_update",
    "shared_atomic",
    "flag_write",
    "flag_read",
    "protocol",
]

_KEY = RaceDetector._KEY


def shared_read(proc: "Proc", region: Hashable, site: str | None = None) -> None:
    """Record a read of an ARMCI shared region."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.record(proc, region, "r", site)


def shared_write(proc: "Proc", region: Hashable, site: str | None = None) -> None:
    """Record a write of an ARMCI shared region."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.record(proc, region, "w", site)


def shared_update(proc: "Proc", region: Hashable, site: str | None = None) -> None:
    """Record a read-modify-write of an ARMCI shared region."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.record(proc, region, "rw", site)


def shared_atomic(proc: "Proc", region: Hashable, site: str | None = None) -> None:
    """Record a target-side-serialized (atomic) access, e.g. a GA acc."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.record(proc, region, "a", site)


def flag_write(
    proc: "Proc",
    region: Hashable,
    target: int | None = None,
    release: bool = False,
) -> None:
    """Record a store to a termination/steal flag (a sync object)."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.flag_write(proc, region, target, release)


def flag_read(proc: "Proc", region: Hashable) -> None:
    """Record a load of a termination/steal flag (acquire join)."""
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.flag_read(proc, region)


def protocol(proc: "Proc", kind: str, **data) -> None:
    """Record a runtime-protocol event (steal transfer, vote, wave).

    Only visible to full-trace capture (``attach(engine,
    capture=True)``); has no happens-before effect and costs a dict
    probe when analysis is off.
    """
    det = proc.engine.state.get(_KEY)
    if det is not None:
        det.on_protocol(proc, kind, data)
