"""Tests for the task-parallel GA_Dgemm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ga import GlobalArray, ga_dgemm
from repro.sim.engine import Engine
from repro.util.errors import CommError


def _run(nprocs, main, *args, seed=0):
    eng = Engine(nprocs, seed=seed, max_events=3_000_000)
    eng.spawn_all(main, *args)
    return eng, eng.run()


def _fill(proc, ga, full):
    lo, hi = ga.distribution(proc.rank)
    sl = tuple(slice(x, y) for x, y in zip(lo, hi))
    ga.access(proc)[...] = full[sl]
    ga.sync(proc)


def _gemm_case(nprocs, n, alpha, beta, block=None, seed=0):
    rng = np.random.default_rng(seed)
    fa = rng.standard_normal((n, n))
    fb = rng.standard_normal((n, n))
    fc = rng.standard_normal((n, n))

    def main(proc):
        a = GlobalArray.create(proc, "a", (n, n))
        b = GlobalArray.create(proc, "b", (n, n))
        c = GlobalArray.create(proc, "c", (n, n))
        _fill(proc, a, fa)
        _fill(proc, b, fb)
        _fill(proc, c, fc)
        ga_dgemm(proc, alpha, a, b, beta, c, block=block)
        return c.read_full(proc)

    _, res = _run(nprocs, main, seed=seed)
    expect = alpha * (fa @ fb) + beta * fc
    return res.returns[0], expect


class TestGaDgemm:
    @pytest.mark.parametrize("nprocs", [1, 2, 4])
    def test_matches_numpy(self, nprocs):
        got, expect = _gemm_case(nprocs, n=16, alpha=1.0, beta=0.0, block=4)
        assert np.allclose(got, expect, atol=1e-10)

    def test_alpha_beta(self):
        got, expect = _gemm_case(3, n=12, alpha=2.5, beta=-0.5, block=4)
        assert np.allclose(got, expect, atol=1e-10)

    def test_beta_one_accumulates(self):
        got, expect = _gemm_case(2, n=8, alpha=1.0, beta=1.0, block=4)
        assert np.allclose(got, expect, atol=1e-10)

    def test_default_block_selection(self):
        got, expect = _gemm_case(4, n=24, alpha=1.0, beta=0.0, block=None)
        assert np.allclose(got, expect, atol=1e-10)

    def test_bad_block_rejected(self):
        def main(proc):
            a = GlobalArray.create(proc, "a", (8, 8))
            ga_dgemm(proc, 1.0, a, a, 0.0, a, block=3)

        with pytest.raises(CommError, match="does not divide"):
            _run(2, main)

    def test_nonsquare_rejected(self):
        def main(proc):
            a = GlobalArray.create(proc, "a", (8, 6))
            ga_dgemm(proc, 1.0, a, a, 0.0, a)

        with pytest.raises(CommError, match="square"):
            _run(2, main)

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 500),
        nprocs=st.integers(1, 5),
        nb=st.sampled_from([2, 3, 4]),
    )
    def test_property_random_instances(self, seed, nprocs, nb):
        got, expect = _gemm_case(nprocs, n=4 * nb, alpha=1.0, beta=0.0, block=4,
                                 seed=seed)
        assert np.allclose(got, expect, atol=1e-9)
