"""Tests for the machine cost models and the paper's §6.3 constants."""

from __future__ import annotations

import pytest

from repro.sim.machines import (
    OPTERON_NS_PER_UTS_NODE,
    XEON_NS_PER_UTS_NODE,
    XT4_NS_PER_UTS_NODE,
    cray_xt4,
    heterogeneous_cluster,
    uniform_cluster,
)


def test_paper_per_node_costs_encoded():
    assert OPTERON_NS_PER_UTS_NODE == pytest.approx(0.3158e-6)
    assert XEON_NS_PER_UTS_NODE == pytest.approx(0.4753e-6)
    assert XT4_NS_PER_UTS_NODE == pytest.approx(0.5681e-6)


def test_heterogeneous_cluster_alternates_cpu_types():
    m = heterogeneous_cluster(8)
    assert m.cpu_factor(0) == 1.0
    assert m.cpu_factor(1) == pytest.approx(0.4753 / 0.3158)
    assert m.cpu_factor(2) == 1.0
    # paper §6.3: a 50% difference in UTS performance between node types
    assert m.cpu_factor(1) / m.cpu_factor(0) == pytest.approx(1.505, abs=0.01)


def test_work_time_reproduces_uts_per_node_costs():
    het = heterogeneous_cluster(2)
    assert het.work_time(0, 1) == pytest.approx(0.3158e-6)
    assert het.work_time(1, 1) == pytest.approx(0.4753e-6)
    assert cray_xt4(4).work_time(3, 1) == pytest.approx(0.5681e-6)


def test_xt4_slower_network_than_cluster():
    cl, xt = uniform_cluster(4), cray_xt4(4)
    assert xt.latency > cl.latency
    assert xt.get_time(1024) > cl.get_time(1024)
    assert xt.local_copy_time(1024) > cl.local_copy_time(1024)


def test_get_costs_more_than_put():
    m = uniform_cluster(2)
    assert m.get_time(1024) > m.put_time(1024)


def test_validate_rejects_too_few_factors():
    m = heterogeneous_cluster(4)
    with pytest.raises(ValueError):
        m.validate(8)
    m.validate(4)  # ok
    uniform_cluster(4).validate(1000)  # uniform works at any size


def test_replace_produces_modified_copy():
    m = uniform_cluster(4)
    m2 = m.replace(latency=1e-6)
    assert m2.latency == 1e-6
    assert m.latency != 1e-6
    assert m2.net_bandwidth == m.net_bandwidth


def test_lock_and_unlock_costs():
    m = uniform_cluster(2)
    assert m.lock_time() == pytest.approx(2 * m.latency)
    assert m.unlock_time() == pytest.approx(m.latency)
    assert m.rmw_time() == pytest.approx(2 * m.latency + m.rmw_overhead)
