"""Lock-order-graph deadlock prediction over a captured trace.

Third tier of the predictive analyzer: build a directed graph whose
nodes are mutex names and whose edges record nested acquisition —
``A -> B`` when some rank acquired ``B`` while holding ``A``.  A cycle
in this graph means two ranks can interleave their acquisition chains
into a circular wait, even if the observed run acquired the locks at
disjoint times and never blocked.

Each edge is annotated with its dynamic instances (rank, full held-set
at the inner acquire, trace position), which feeds two classic
false-cycle pruners:

* **Gate lock** — if every edge of a cycle was taken while also holding
  some common *other* lock, the chains are serialized by that gate and
  the cycle cannot close (Goodlock's guarded-cycle rule).
* **Single rank** — a cycle whose every edge instance comes from one
  rank describes that rank's own nesting order, not a cross-rank wait;
  with non-reentrant mutexes the rank would have to block on itself to
  realize it, which the runtime treats as a protocol error, not a
  schedule hazard.

Cycles that survive pruning become ``deadlock`` predictions; the
confirmation stage then steers a replay so the chains actually
interleave (see :mod:`repro.check.witness`), upgrading the report when
the wait-for graph of the monitored run closes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.capture import TraceEvent

__all__ = ["LockEdge", "DeadlockFinding", "build_lock_graph", "deadlock_pass"]

#: Bound on reported simple-cycle length; lock cycles beyond a handful
#: of mutexes are noise in practice and explode combinatorially.
_MAX_CYCLE = 4


@dataclass(frozen=True)
class LockEdge:
    """One dynamic nested acquisition: ``dst`` acquired holding ``src``."""

    src: str
    dst: str
    rank: int
    #: Full lockset held at the moment ``dst`` was granted (incl. src).
    held: tuple[str, ...]
    seq: int


@dataclass(frozen=True)
class DeadlockFinding:
    """A lock-order cycle that survived pruning."""

    #: Mutex names along the cycle (cycle[i] held while cycle[i+1] acquired).
    cycle: tuple[str, ...]
    #: One exemplar edge instance per cycle hop.
    edges: tuple[LockEdge, ...]

    def describe(self) -> str:
        hops = " -> ".join(self.cycle + (self.cycle[0],))
        lines = [f"lock-order cycle {hops}:"]
        for e in self.edges:
            lines.append(
                f"    rank {e.rank} acquired {e.dst} holding "
                f"{{{', '.join(e.held)}}} [trace seq {e.seq}]"
            )
        return "\n".join(lines)


def build_lock_graph(events: list[TraceEvent]) -> dict[tuple[str, str], list[LockEdge]]:
    """All nested-acquisition edges, keyed ``(outer, inner)``.

    The capture's ``held`` tuple on an ``acquire`` event lists the locks
    held *before* the grant, so every element is an outer lock of this
    acquisition.  The rmw pseudo-locks participate: holding a real mutex
    across a reservation atomic is an ordering commitment too.
    """
    edges: dict[tuple[str, str], list[LockEdge]] = {}
    for ev in events:
        if ev.kind != "acquire":
            continue
        inner = ev.data["mutex"]
        for outer in ev.held:
            if outer == inner:
                continue
            edge = LockEdge(
                src=outer,
                dst=inner,
                rank=ev.rank,
                held=ev.held + (inner,),
                seq=ev.seq,
            )
            edges.setdefault((outer, inner), []).append(edge)
    return edges


def _gated(cycle_edges: list[list[LockEdge]], cycle: tuple[str, ...]) -> bool:
    """True when every hop of the cycle is guarded by one common lock."""
    cycle_set = set(cycle)
    gates: set[str] | None = None
    for instances in cycle_edges:
        # A hop is guarded by lock g only if *every* instance of the hop
        # holds g — one unguarded instance is enough to realize the hop.
        hop_gates: set[str] | None = None
        for e in instances:
            outside = set(e.held) - cycle_set
            hop_gates = outside if hop_gates is None else (hop_gates & outside)
        gates = hop_gates if gates is None else (gates & (hop_gates or set()))
        if not gates:
            return False
    return bool(gates)


def _single_rank(cycle_edges: list[list[LockEdge]]) -> bool:
    """True when one rank accounts for every instance of every hop."""
    ranks = {e.rank for instances in cycle_edges for e in instances}
    return len(ranks) <= 1


def deadlock_pass(events: list[TraceEvent]) -> list[DeadlockFinding]:
    """Find lock-order cycles and prune the provably-false ones."""
    edges = build_lock_graph(events)
    adjacency: dict[str, list[str]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
    for dsts in adjacency.values():
        dsts.sort()

    findings: list[DeadlockFinding] = []
    seen: set[tuple[str, ...]] = set()

    def canonical(cycle: tuple[str, ...]) -> tuple[str, ...]:
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]

    def walk(start: str, node: str, path: tuple[str, ...]) -> None:
        for nxt in adjacency.get(node, ()):
            if nxt == start:
                cycle = canonical(path)
                if cycle in seen:
                    continue
                seen.add(cycle)
                hops = [
                    edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
                    for i in range(len(cycle))
                ]
                if _single_rank(hops) or _gated(hops, cycle):
                    continue
                findings.append(
                    DeadlockFinding(
                        cycle=cycle,
                        edges=tuple(min(h, key=lambda e: e.seq) for h in hops),
                    )
                )
            elif nxt not in path and len(path) < _MAX_CYCLE:
                # Only expand from the cycle's minimal node to avoid
                # re-discovering each rotation.
                if nxt > start:
                    walk(start, nxt, path + (nxt,))

    for node in sorted(adjacency):
        walk(node, node, (node,))
    findings.sort(key=lambda f: f.cycle)
    return findings
