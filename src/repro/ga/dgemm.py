"""Distributed matrix multiplication over Global Arrays (GA_Dgemm).

``C = alpha * A @ B + beta * C`` computed as a Scioto task-parallel
blocked multiplication: one task per output-block/k-step triple, seeded
at the owner of the C block with high affinity (so accumulates are
local), balanced by work stealing.  This turns the paper's §4 example
into a reusable library operation — the same structure NWChem-era codes
obtained from ``ga_dgemm``.

Collective: every rank must call with the same arguments.
"""

from __future__ import annotations

import numpy as np

from repro.armci.runtime import Armci
from repro.core import AFFINITY_HIGH, SciotoConfig, Task, TaskCollection
from repro.ga.array import GlobalArray
from repro.ga.ops import ga_scale
from repro.sim.engine import Proc
from repro.util.errors import CommError

__all__ = ["ga_dgemm"]


def ga_dgemm(
    proc: Proc,
    alpha: float,
    a: GlobalArray,
    b: GlobalArray,
    beta: float,
    c: GlobalArray,
    block: int | None = None,
    config: SciotoConfig | None = None,
) -> None:
    """Compute ``C = alpha * A @ B + beta * C`` (square arrays).

    Args:
        proc: Calling rank's process (collective call).
        alpha, beta: GEMM scalars.
        a, b, c: Conformant square global arrays.
        block: Blocking factor; must divide the matrix dimension.
            Defaults to the largest divisor of n that is <= n/nprocs**0.5
            rounded to a practical tile, or n itself for tiny matrices.
        config: Scheduler configuration for the internal task collection.
    """
    n = a.shape[0]
    for g in (a, b, c):
        if len(g.shape) != 2 or g.shape[0] != g.shape[1] or g.shape[0] != n:
            raise CommError("ga_dgemm requires conformant square 2-D arrays")
    if block is None:
        block = _default_block(n, proc.nprocs)
    if n % block:
        raise CommError(f"block {block} does not divide matrix dimension {n}")
    nb = n // block

    if beta != 1.0:
        ga_scale(proc, c, beta)
    else:
        c.sync(proc)

    tc = TaskCollection.create(
        proc, task_size=64, max_tasks=nb * nb * nb + 8,
        config=config or SciotoConfig(chunk_size=2),
    )

    def box(i, j):
        return (i * block, j * block), ((i + 1) * block, (j + 1) * block)

    def mm_task(tc_, task):
        i, j, k = task.body
        p = tc_.proc
        lo_a, hi_a = box(i, k)
        lo_b, hi_b = box(k, j)
        lo_c, hi_c = box(i, j)
        a_blk = a.get(p, lo_a, hi_a)
        b_blk = b.get(p, lo_b, hi_b)
        p.compute(2.0 * block**3 * p.machine.seconds_per_flop)
        c.acc(p, lo_c, hi_c, a_blk @ b_blk, alpha=alpha)

    h = tc.register(mm_task)
    for i in range(nb):
        for j in range(nb):
            if c.locate((i * block, j * block)) != proc.rank:
                continue
            for k in range(nb):
                tc.add(Task(callback=h, body=(i, j, k)), affinity=AFFINITY_HIGH)
    tc.process()
    c.sync(proc)
    tc.destroy()


def _default_block(n: int, nprocs: int) -> int:
    """Largest divisor of ``n`` no bigger than a per-rank-friendly tile."""
    target = max(1, int(n / max(1.0, nprocs**0.5)))
    for b in range(min(target, n), 0, -1):
        if n % b == 0:
            return b
    return n  # pragma: no cover - range above always finds 1
