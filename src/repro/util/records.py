"""Result records produced by the benchmark harness.

Every experiment in ``repro.bench`` returns structured records so that
tests can assert on shapes (who wins, where crossovers fall) and the
report generator can print paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentRecord:
    """One measured data point of an experiment.

    Attributes:
        experiment: Experiment id, e.g. ``"figure7"``.
        config: Configuration label, e.g. ``"scioto-split"``.
        x: Sweep variable (typically the process count).
        value: Measured value in ``unit``.
        unit: Unit string, e.g. ``"nodes/s"`` or ``"us"``.
        extra: Free-form auxiliary measurements (message counts, steals...).
    """

    experiment: str
    config: str
    x: float
    value: float
    unit: str
    extra: dict[str, float] = field(default_factory=dict)


@dataclass
class Series:
    """A named series of (x, y) points, one line of a paper figure."""

    label: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)
    unit: str = ""

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    @classmethod
    def from_dict(cls, data: dict) -> "Series":
        """Inverse of :meth:`to_dict` (fleet results cross process
        boundaries in dict form)."""
        return cls(
            label=data["label"],
            xs=list(data.get("xs", [])),
            ys=list(data.get("ys", [])),
            unit=data.get("unit", ""),
        )

    def y_at(self, x: float) -> float:
        """Return the y value recorded at sweep point ``x``."""
        return self.ys[self.xs.index(x)]

    def to_dict(self) -> dict:
        """JSON-ready form (used by the bench ``BENCH_sim.json`` writer)."""
        return {
            "label": self.label,
            "unit": self.unit,
            "xs": list(self.xs),
            "ys": list(self.ys),
        }


@dataclass
class SweepResult:
    """All series of one figure/table plus free-form notes."""

    experiment: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get(self, label: str) -> Series:
        """Return the series with the given label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.experiment}")

    def labels(self) -> list[str]:
        return [s.label for s in self.series]

    def to_dict(self) -> dict:
        """JSON-ready form (used by the bench ``BENCH_sim.json`` writer)."""
        return {
            "experiment": self.experiment,
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            experiment=data["experiment"],
            series=[Series.from_dict(s) for s in data.get("series", [])],
            notes=list(data.get("notes", [])),
        )
