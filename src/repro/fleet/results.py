"""Result plumbing: merge shards, dedup failures, persist traces.

An exploration campaign comes back from the fleet as unordered job
results — each a shard of (schedule index -> outcome) for one target.
:func:`merge_explore` reassembles them into the canonical campaign
view: failures sorted by (target, schedule index), deduplicated the
same way the serial explorer deduplicates (first occurrence of each
failure *signature* per target wins), with every kept failure carrying
its content-hash trace fingerprint.

Because per-schedule seeds are derived, not positional
(:mod:`repro.fleet.seeds`), the merged view is a pure function of the
campaign parameters: any ``--jobs N`` produces byte-identical merged
failures and :func:`failing_set_digest` values.  The regression test
``tests/test_fleet_explore.py`` pins jobs=1 vs jobs=2 equality, and
the committed ``BENCH_fleet.json`` records the digest at every jobs
level it measured.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.fleet.jobs import JobResult

__all__ = [
    "MergedFailure",
    "ExploreSummary",
    "merge_explore",
    "failing_set_digest",
    "persist_failures",
]


@dataclass(frozen=True)
class MergedFailure:
    """One deduplicated failing schedule of a merged campaign."""

    target: str
    strategy: str
    index: int
    strategy_seed: int
    signature: tuple
    failure: str
    fingerprint: str
    decisions: tuple = ()


@dataclass
class ExploreSummary:
    """Campaign-level view of a merged exploration fleet run."""

    schedules_run: int = 0
    events_total: int = 0
    per_target: dict[str, dict] = field(default_factory=dict)
    failures: list[MergedFailure] = field(default_factory=list)
    #: Every failing schedule before signature dedup (fingerprint set).
    all_failure_fingerprints: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _freeze(value):
    """JSON value -> hashable tuple form (signatures arrive as lists)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def merge_explore(results: Iterable[JobResult]) -> ExploreSummary:
    """Merge explore-job results into the canonical campaign summary.

    Only ``explore`` results participate; job-level errors are the
    scheduler's to report and are skipped here.  Dedup keeps, per
    target, the lowest-index schedule of each failure signature —
    exactly the serial explorer's ``seen_signatures`` rule, made
    partition-independent by sorting on schedule index first.
    """
    summary = ExploreSummary()
    raw: list[MergedFailure] = []
    for res in results:
        if res.kind != "explore" or not res.ok:
            continue
        p = res.payload
        summary.schedules_run += p["schedules"]
        summary.events_total += p["events"]
        per = summary.per_target.setdefault(
            p["target"], {"schedules": 0, "events": 0, "failures": 0}
        )
        per["schedules"] += p["schedules"]
        per["events"] += p["events"]
        for f in p["failures"]:
            raw.append(
                MergedFailure(
                    target=p["target"],
                    strategy=p["strategy"],
                    index=f["index"],
                    strategy_seed=f["strategy_seed"],
                    signature=_freeze(f["signature"]),
                    failure=f["failure"],
                    fingerprint=f["fingerprint"],
                    decisions=tuple(
                        tuple(sorted(d.items())) for d in f["decisions"]
                    ),
                )
            )
    raw.sort(key=lambda f: (f.target, f.index))
    summary.all_failure_fingerprints = [f.fingerprint for f in raw]
    seen: set[tuple[str, tuple]] = set()
    for f in raw:
        key = (f.target, f.signature)
        if key in seen:
            continue
        seen.add(key)
        summary.failures.append(f)
        summary.per_target[f.target]["failures"] += 1
    return summary


def failing_set_digest(summary: ExploreSummary) -> str:
    """Content hash of the deduplicated failing-schedule set.

    SHA-256 over the kept failures' fingerprints in merged order.  For
    a fixed campaign (targets, strategy, seed, schedules) this digest
    is byte-identical for any ``--jobs N`` — the committed
    ``BENCH_fleet.json`` validator enforces it across its entries.
    """
    h = hashlib.sha256()
    for f in summary.failures:
        h.update(f.fingerprint.encode())
        h.update(b"\n")
    return h.hexdigest()


def persist_failures(
    summary: ExploreSummary,
    out_dir: str | Path,
    engine_seed: int = 0,
    mutation: str | None = None,
) -> list[Path]:
    """Write each kept failure as a replayable decision-trace file.

    Uses the same :class:`~repro.check.traces.DecisionTrace` format the
    serial explorer persists, so ``python -m repro.check --replay``
    works on fleet-found failures unchanged.  Writes are atomic
    (``repro.util.io``) — parallel campaigns over one output directory
    cannot tear a trace.
    """
    from repro.check.traces import DecisionTrace

    out_dir = Path(out_dir)
    paths = []
    for f in summary.failures:
        trace = DecisionTrace(
            target=f.target,
            strategy=f.strategy,
            strategy_seed=f.strategy_seed,
            engine_seed=engine_seed,
            nprocs=_scenario_nprocs(f.target),
            schedule_index=f.index,
            failure=f.failure,
            mutation=mutation if mutation is not None else "none",
            signature=json.loads(json.dumps(f.signature, default=list)),
            decisions=[dict(d) for d in f.decisions],
        )
        stem = f"{f.target}-{f.strategy}-s{f.strategy_seed}"
        paths.append(trace.save(out_dir / f"{stem}.trace.json"))
    return paths


def _scenario_nprocs(target: str) -> int:
    from repro.check.scenarios import make_scenario

    return make_scenario(target).nprocs
