"""Property: the engine serializes all synchronized accesses in
nondecreasing virtual-time order — the sequential-consistency guarantee
every protocol in this repository is built on."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    nprocs=st.integers(1, 8),
    steps=st.integers(1, 30),
)
def test_sync_points_globally_time_ordered(seed, nprocs, steps):
    log: list[tuple[float, int]] = []

    def main(proc):
        import numpy as np

        rng = np.random.default_rng((seed, proc.rank, 77))
        for _ in range(steps):
            proc.advance(float(rng.uniform(0, 5e-6)))
            proc.sync()
            log.append((proc.now, proc.rank))

    eng = Engine(nprocs, seed=seed, max_events=500_000)
    eng.spawn_all(main)
    eng.run()
    times = [t for t, _ in log]
    assert times == sorted(times), "synchronized accesses ran out of time order"
    assert len(log) == nprocs * steps


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000), nprocs=st.integers(2, 6))
def test_identical_seed_identical_event_stream(seed, nprocs):
    def run():
        order: list[int] = []

        def main(proc):
            for _ in range(10):
                proc.advance(float(proc.rng.uniform(0, 3e-6)))
                proc.sync()
                order.append(proc.rank)

        eng = Engine(nprocs, seed=seed, max_events=200_000)
        eng.spawn_all(main)
        res = eng.run()
        return order, res.events, res.elapsed

    a, b = run(), run()
    assert a == b
