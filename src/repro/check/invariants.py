"""Protocol invariants checked against the simulation event stream.

Checkers are post-hoc: the runner attaches a :class:`~repro.obs.tracing.Tracer`
to the engine, runs one schedule, and hands the recorded event list to
each checker.  Because the tracer appends events at the protocol's
linearization points (queue mutations inside the one-sided closures,
mutex grants, the root's termination declaration), *list order* is the
global serialization order of the run — checkers reason over it without
re-executing anything.

Event vocabulary (emitted by hook points in ``core``/``sim``):

==============  =====================================================
kind            detail
==============  =====================================================
``task-add``    uid of the queued descriptor (``tc_add`` clone)
``task-exec``   uid, recorded at dispatch
``q-push``      ``(owner, uid)`` — owner local enqueue
``q-pop``       ``(owner, uid)`` — owner local dequeue
``q-steal``     ``(victim, (uid, ...))`` — removal at the victim
``q-absorb``    ``(thief, (uid, ...))`` — deposit into thief's queue
``q-add-remote``  ``(owner, uid)`` — remote insert at effect time
``mutex-acq``   mutex name, recorded at grant
``mutex-rel``   mutex name, recorded at release
``td-done``     wave number, recorded when the root declares
``graph-node``  task-graph node name, recorded at dispatch
==============  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.tracing import TraceEvent

__all__ = [
    "Violation",
    "CheckContext",
    "InvariantChecker",
    "ExactlyOnce",
    "NoEarlyTermination",
    "QueueConsistency",
    "MutexBalance",
    "GraphDependencyOrder",
]


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a run's event stream."""

    invariant: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.invariant}] {self.message}"


@dataclass
class CheckContext:
    """Per-scenario facts the checkers need beyond the event stream.

    Attributes:
        capacity: Per-rank queue capacity (None disables the bound check).
        expect_complete: Whether every added task must have executed by
            the end of the run (True for ``tc_process`` workloads; False
            for open-ended queue stress where tasks may legally remain
            queued or in flight at the end).
        dag: ``{node: (dep, ...)}`` for task-graph scenarios.
    """

    capacity: int | None = None
    expect_complete: bool = True
    dag: dict[str, tuple[str, ...]] | None = None


class InvariantChecker:
    """Base checker: examine an event stream, return violations."""

    name = "invariant"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        raise NotImplementedError

    def _v(self, message: str) -> Violation:
        return Violation(self.name, message)


class ExactlyOnce(InvariantChecker):
    """Every added task executes exactly once (and, when the workload runs
    to termination, at least once) — the paper's core safety property."""

    name = "exactly-once"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        out: list[Violation] = []
        added: set[int] = set()
        execs: dict[int, int] = {}
        for e in events:
            if e.kind == "task-add":
                if e.detail in added:
                    out.append(self._v(f"task uid {e.detail} added twice"))
                added.add(e.detail)
            elif e.kind == "task-exec":
                execs[e.detail] = execs.get(e.detail, 0) + 1
        for uid, n in execs.items():
            if n > 1:
                out.append(self._v(f"task uid {uid} executed {n} times"))
            if uid not in added:
                out.append(self._v(f"task uid {uid} executed but never added"))
        if ctx.expect_complete:
            missing = sorted(added - set(execs))
            if missing:
                out.append(
                    self._v(
                        f"{len(missing)} added task(s) never executed "
                        f"(uids {missing[:8]}{'...' if len(missing) > 8 else ''})"
                    )
                )
        return out


class NoEarlyTermination(InvariantChecker):
    """The root may declare termination only after all work is done: no
    task dispatch may appear after a ``td-done`` event in serialization
    order (§5.2's safety direction)."""

    name = "no-early-termination"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        out: list[Violation] = []
        done_at: int | None = None
        for i, e in enumerate(events):
            if e.kind == "td-done" and done_at is None:
                done_at = i
            elif e.kind == "task-exec" and done_at is not None:
                out.append(
                    self._v(
                        f"task uid {e.detail} dispatched on rank {e.rank} after "
                        f"termination was declared (event {i} > done at {done_at})"
                    )
                )
        if ctx.expect_complete and done_at is None and any(
            e.kind == "task-exec" for e in events
        ):
            out.append(self._v("run ended without a termination declaration"))
        return out


class QueueConsistency(InvariantChecker):
    """Split-queue state machine: every descriptor is in exactly one place.

    Replays the queue events against a per-uid location automaton
    (``queued@rank`` → ``popped`` / ``in-flight@thief`` → ``queued@thief``)
    and flags any transition the protocol forbids: popping or stealing a
    descriptor that is not in that queue, absorbing one that was never
    reserved, or a queue exceeding its capacity.  This is the list-storage
    analogue of the paper's head/split/tail index consistency — an index
    race shows up here as a descriptor that is lost (popped from nowhere)
    or duplicated (alive in two places).
    """

    name = "queue-consistency"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        out: list[Violation] = []
        loc: dict[int, tuple[str, int]] = {}  # uid -> ("queued"|"inflight", rank)
        counts: dict[int, int] = {}  # rank -> descriptors currently queued

        def enqueue(uid: int, rank: int, what: str) -> None:
            if uid in loc:
                state, r = loc[uid]
                out.append(
                    self._v(
                        f"{what} of uid {uid} into rank {rank} queue while it is "
                        f"already {state} at rank {r} (duplicated descriptor)"
                    )
                )
                return
            loc[uid] = ("queued", rank)
            counts[rank] = counts.get(rank, 0) + 1
            if ctx.capacity is not None and counts[rank] > ctx.capacity:
                out.append(
                    self._v(
                        f"rank {rank} queue holds {counts[rank]} descriptors, "
                        f"capacity {ctx.capacity}"
                    )
                )

        def dequeue(uid: int, rank: int, what: str) -> bool:
            state = loc.get(uid)
            if state != ("queued", rank):
                out.append(
                    self._v(
                        f"{what} of uid {uid} from rank {rank} queue but it is "
                        f"{'absent' if state is None else f'{state[0]} at rank {state[1]}'}"
                        " (lost or duplicated descriptor)"
                    )
                )
                return False
            del loc[uid]
            counts[rank] -= 1
            return True

        for e in events:
            if e.kind == "q-push":
                owner, uid = e.detail
                enqueue(uid, owner, "push")
            elif e.kind == "q-add-remote":
                owner, uid = e.detail
                enqueue(uid, owner, "remote add")
            elif e.kind == "q-pop":
                owner, uid = e.detail
                dequeue(uid, owner, "pop")
            elif e.kind == "q-steal":
                victim, uids = e.detail
                for uid in uids:
                    if dequeue(uid, victim, "steal"):
                        loc[uid] = ("inflight", e.rank)
            elif e.kind == "q-absorb":
                thief, uids = e.detail
                for uid in uids:
                    state = loc.get(uid)
                    if state != ("inflight", thief):
                        out.append(
                            self._v(
                                f"absorb of uid {uid} at rank {thief} but it is "
                                f"{'absent' if state is None else f'{state[0]} at rank {state[1]}'}"
                            )
                        )
                        continue
                    del loc[uid]
                    enqueue(uid, thief, "absorb")
        return out


class MutexBalance(InvariantChecker):
    """Mutex acquire/release balance: grants alternate with releases by
    the same rank, and every mutex ends the run free."""

    name = "mutex-balance"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        out: list[Violation] = []
        holder: dict[str, int] = {}  # mutex name -> rank holding it
        for e in events:
            if e.kind == "mutex-acq":
                if e.detail in holder:
                    out.append(
                        self._v(
                            f"mutex {e.detail!r} granted to rank {e.rank} while "
                            f"held by rank {holder[e.detail]}"
                        )
                    )
                holder[e.detail] = e.rank
            elif e.kind == "mutex-rel":
                if holder.get(e.detail) != e.rank:
                    out.append(
                        self._v(
                            f"mutex {e.detail!r} released by rank {e.rank} which "
                            "does not hold it"
                        )
                    )
                holder.pop(e.detail, None)
        for name, rank in sorted(holder.items()):
            out.append(self._v(f"mutex {name!r} still held by rank {rank} at end"))
        return out


class GraphDependencyOrder(InvariantChecker):
    """TaskGraph: a node dispatches only after all its dependencies, and
    each declared node runs exactly once."""

    name = "graph-deps"

    def check(self, events: list[TraceEvent], ctx: CheckContext) -> list[Violation]:
        if ctx.dag is None:
            return []
        out: list[Violation] = []
        seen: dict[str, int] = {}
        for i, e in enumerate(events):
            if e.kind != "graph-node":
                continue
            name = e.detail
            if name in seen:
                out.append(self._v(f"graph node {name!r} dispatched twice"))
            seen[name] = i
            for dep in ctx.dag.get(name, ()):
                if dep not in seen or seen[dep] >= i:
                    out.append(
                        self._v(
                            f"graph node {name!r} dispatched before its "
                            f"dependency {dep!r}"
                        )
                    )
        if ctx.expect_complete:
            missing = sorted(set(ctx.dag) - set(seen))
            if missing:
                out.append(self._v(f"graph nodes never executed: {missing}"))
        return out
