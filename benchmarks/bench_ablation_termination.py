"""Ablation A2: dirty-mark messages saved by the votes-before rule (§5.3)."""

from repro.bench.ablations import run_ablation_termination
from repro.bench.harness import scale
from repro.bench.report import render


def test_ablation_termination_opt(benchmark):
    result = benchmark.pedantic(
        run_ablation_termination, args=(scale(),), rounds=1, iterations=1
    )
    print("\n" + render(result, fmt="{:.3g}"))
    opt = result.get("dirty-msgs-optimized")
    base = result.get("dirty-msgs-baseline")
    saved = result.get("fraction-elided")
    for p in opt.xs:
        assert opt.y_at(p) <= base.y_at(p), p
    # the optimization must elide a substantial share of dirty marks
    assert max(saved.ys) > 0.3
