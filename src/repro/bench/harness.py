"""Shared benchmark plumbing: scale selection, sweeps, JSON emission."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.util.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.util.records import SweepResult

__all__ = [
    "scale",
    "sweep_procs",
    "write_bench_json",
    "validate_bench_json",
    "BENCH_SCHEMA",
    "QUICK",
    "FULL",
]

#: Schema tag stamped into every ``BENCH_sim.json`` document.
BENCH_SCHEMA = "repro-bench/1"

QUICK = "quick"
FULL = "full"


def scale(override: str | None = None) -> str:
    """The active benchmark scale (``quick`` or ``full``).

    Priority: explicit ``override`` argument, then the ``REPRO_SCALE``
    environment variable, then ``quick``.
    """
    s = override or os.environ.get("REPRO_SCALE", QUICK)
    if s not in (QUICK, FULL):
        raise ValueError(f"unknown scale {s!r}; use 'quick' or 'full'")
    return s


def sweep_procs(scale_name: str, max_full: int = 64, max_quick: int = 16) -> list[int]:
    """Power-of-two process counts for a scaling sweep."""
    limit = max_full if scale_name == FULL else max_quick
    out = []
    p = 2
    while p <= limit:
        out.append(p)
        p *= 2
    return out


def write_bench_json(
    results: list[tuple["SweepResult", float]],
    path: str | Path,
    scale_name: str,
) -> Path:
    """Write the machine-readable benchmark record (``BENCH_sim.json``).

    Args:
        results: ``(sweep_result, wall_seconds)`` per experiment run, in
            run order.  Wall seconds are *host* time for the experiment
            (the sanctioned wall-clock measurement), everything inside
            the sweeps is virtual time.  Each result may be a
            ``SweepResult`` or its ``to_dict()`` form (fleet workers
            return the latter across the process boundary).
        path: Output file, conventionally ``BENCH_sim.json`` at the
            repo root so the perf trajectory is tracked across commits.
        scale_name: The active scale (``quick`` or ``full``).

    The write is atomic (temp file + ``os.replace``), so a reader — or
    an interrupted run — never observes a torn record.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "scale": scale_name,
        "experiments": [
            {**(r if isinstance(r, dict) else r.to_dict()), "wall_seconds": wall}
            for r, wall in results
        ],
    }
    validate_bench_json(doc)
    return atomic_write_text(Path(path), json.dumps(doc, indent=2))


def validate_bench_json(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a valid bench record.

    Checked: the schema tag, the scale, and for every experiment a
    name, a non-negative wall time, and series with aligned xs/ys.
    """
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bad schema tag {doc.get('schema')!r}; want {BENCH_SCHEMA!r}")
    if doc.get("scale") not in (QUICK, FULL):
        raise ValueError(f"bad scale {doc.get('scale')!r}")
    exps = doc.get("experiments")
    if not isinstance(exps, list):
        raise ValueError("experiments must be a list")
    for e in exps:
        if not e.get("experiment"):
            raise ValueError(f"experiment entry without a name: {e!r}")
        wall = e.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            raise ValueError(f"{e['experiment']}: bad wall_seconds {wall!r}")
        for s in e.get("series", []):
            if len(s.get("xs", [])) != len(s.get("ys", [])):
                raise ValueError(
                    f"{e['experiment']}/{s.get('label')}: xs and ys lengths differ"
                )
