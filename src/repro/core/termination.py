"""Wave-based distributed termination detection (§5.2-§5.3).

Implements the Francez-Rodeh style algorithm the paper describes: a
binary spanning tree is mapped onto the process space (children of rank
``r`` are ``2r+1`` and ``2r+2``); a token wave travels down and back up
the tree.  Tokens start white; a process colors its up-token black when
it (or any descendant) performed a load-balancing operation since its
last vote.  The root declares termination only when a wave returns
all-white while it is itself passive; otherwise it launches another
wave.

Dirty marking and the votes-before optimization (§5.3)
------------------------------------------------------

Steals are one-sided, so the victim does not observe them.  To prevent
the scenario where a thief that already cast a white vote becomes active
again with stolen work, the thief writes a *dirty mark* into the victim
that forces the victim's next token black.  The mark piggybacks on the
steal transaction itself (see :meth:`TerminationDetector.steal_mark`):
it must become visible atomically with the transfer, or the victim can
observe its emptied queue and vote white before a separately-sent mark
lands.  The paper's optimization elides the mark when it provably
cannot matter:

    the victim ``pv`` only needs marking if the thief ``pt`` has already
    voted in the current wave AND NOT ``pv votes-before pt`` (i.e. ``pv``
    is not a descendant of ``pt`` in the spanning tree).

Both modes are implemented; the benchmark ``bench_ablation_termination``
counts the messages saved.

Tokens travel as one-sided messages into per-process mailboxes (how an
ARMCI-based implementation delivers them); each scheduler iteration
drains the mailbox, so active processes still forward down-waves
promptly while only *passive* processes vote.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.analyze import hooks
from repro.armci.runtime import MAILBOX_CHECK_COST, Armci
from repro.obs.record import Recorder, instant
from repro.obs.tracing import trace
from repro.sim.engine import Engine, Proc, blocking_method
from repro.sim.counters import Counters
from repro.util.errors import TaskCollectionError

__all__ = ["TerminationDetector", "is_descendant", "tree_children", "tree_parent"]

WHITE = 0
BLACK = 1


def tree_parent(rank: int) -> int:
    """Parent of ``rank`` in the binary spanning tree (root is 0)."""
    if rank == 0:
        raise ValueError("root has no parent")
    return (rank - 1) // 2


def tree_children(rank: int, nprocs: int) -> list[int]:
    """Children of ``rank`` in the binary spanning tree."""
    return [c for c in (2 * rank + 1, 2 * rank + 2) if c < nprocs]


def is_descendant(a: int, b: int) -> bool:
    """True if ``a`` is a (proper) descendant of ``b`` in the spanning tree.

    In the up-wave, descendants vote before their ancestors, so
    ``is_descendant(a, b)`` is exactly the paper's ``a votes-before b``
    relation for distinct ranks on one root-to-leaf path.
    """
    while a > b:
        a = (a - 1) // 2
        if a == b:
            return True
    return False


class TerminationDetector:
    """Per-rank termination-detection state for one ``tc_process`` phase.

    All ranks' detectors for a phase are created together (see
    ``TaskCollection``); thieves reach their victim's detector through
    one-sided writes, charged through the ARMCI layer.
    """

    def __init__(
        self,
        engine: Engine,
        rank: int,
        tag: str,
        peers: list["TerminationDetector"],
        optimize: bool,
        counters: Counters,
    ) -> None:
        self.engine = engine
        self.armci = Armci.attach(engine)
        self.rank = rank
        self.nprocs = engine.nprocs
        self.tag = tag
        self.peers = peers  # shared list; peers[r] is rank r's detector
        self.optimize = optimize
        self.counters = counters
        self.children = tree_children(rank, self.nprocs)
        self.parent = tree_parent(rank) if rank != 0 else None
        self.dirty = False
        self.voted = False
        self.in_wave = False
        self.wave = 0
        self.child_tokens: dict[int, int] = {}
        self.done = False
        self._wave_started = 0.0  # root's wave launch time (obs only)

    # ------------------------------------------------------------------ #
    # Load-balancing hooks
    # ------------------------------------------------------------------ #
    def _need_mark(self, victim: int) -> bool:
        """§5.3: does stealing from ``victim`` require a dirty mark?"""
        return (not self.optimize) or (
            self.voted and not is_descendant(victim, self.rank)
        )

    def steal_mark(self, proc: Proc, victim: int) -> Callable[[], None] | None:
        """The §5.3 dirty mark, to apply *inside* the steal's locked
        transfer (``SplitQueue.steal_from(on_transfer=...)``), or None
        when the votes-before optimization elides it.

        The mark piggybacks on the steal transaction's metadata update:
        it lands at the same instant the tasks leave the shared portion,
        under the victim's queue mutex, so the victim can never observe
        its queue emptied by this steal without also observing the mark.
        Delivering the mark as a separate message *after* the steal —
        even fenced — leaves a window where the victim observes the
        emptied queue, votes white, and the root completes an all-white
        wave while the stolen work runs on a thief that also voted white
        (the thief's own dirty flag only blackens the *next* wave).  The
        ``no_dirty_mark`` / ``fence_elision`` mutations reinstate the
        message-based variants to demonstrate the failure.
        """
        # Attestation for the predictive analyzer: the correct protocol
        # emits a mark decision for *every* steal it is asked about (even
        # an elided one carries the votes-before justification).  A
        # transfer with no preceding decision event from the same thief
        # means this method was bypassed — the signature of the
        # dirty-mark mutations.
        hooks.protocol(
            proc,
            "mark-decision",
            victim=victim,
            needed=self._need_mark(victim),
            thief_voted=self.voted,
            wave=self.wave,
        )
        if not self._need_mark(victim):
            return None
        victim_det = self.peers[victim]

        def _apply() -> None:
            # The steal transaction's queue mutex already orders the mark
            # after the transfer, so no separate fence/release is needed.
            victim_det._mark_dirty(proc)

        return _apply

    def note_steal(self, proc: Proc, victim: int) -> None:
        """Record a successful steal's bookkeeping.  The victim's §5.3
        mark itself is applied by :meth:`steal_mark`'s closure inside the
        transfer; this only marks the thief and records counters/edges."""
        self._mark_dirty(proc)
        if self._need_mark(victim):
            instant(proc, "dirty-mark", "termination", detail=victim)
            rec = Recorder.of(self.engine)
            if rec is not None and rec.edges_enabled:
                # One-sided write landing in the victim's memory: a
                # zero-latency cross-rank edge (the victim's next vote
                # causally follows the thief's mark).
                rec.add_edge("dirty", proc.rank, proc.now, victim, proc.now,
                             detail=victim)
            self.counters.add(proc.rank, "dirty_msgs")
        else:
            instant(proc, "dirty-mark-skipped", "termination", detail=victim)
            self.counters.add(proc.rank, "dirty_msgs_skipped")

    def note_remote_add(self, proc: Proc, target: int) -> None:
        """Record a remote task insertion; the dirty flag piggybacks on the
        insert message itself (no extra communication)."""
        self._mark_dirty(proc)
        self.peers[target]._mark_dirty(proc)

    def _mark_dirty(self, proc: Proc | None = None, release: bool = False) -> None:
        if proc is not None:
            hooks.flag_write(
                proc,
                ("td-dirty", self.tag, self.rank),
                target=self.rank,
                release=release,
            )
        self.dirty = True

    # ------------------------------------------------------------------ #
    # Progress engine
    # ------------------------------------------------------------------ #
    progress = blocking_method("co_progress")

    def co_progress(self, proc: Proc, idle: bool):
        """Drain pending tokens; vote / run the root wave logic when idle.

        Called from the scheduler on every iteration (cheap local mailbox
        probe while messages are absent).  Returns True once global
        termination has been detected and propagated to this rank.
        """
        proc.advance(MAILBOX_CHECK_COST)
        return (yield from self._co_progress(proc, idle))

    def progress_busy(self, proc: Proc):
        """Plain-call twin of ``co_progress(idle=False)`` for the
        scheduler's busy loop, where in steady state the mailbox is
        empty and the generator machinery is pure overhead.

        Charges the same mailbox probe and returns the termination
        state, or ``None`` when tokens are pending — the caller must
        then finish the iteration with :meth:`_co_progress` (the probe
        is already charged).
        """
        proc._clock += MAILBOX_CHECK_COST  # advance(): constant, >= 0
        if self.armci.mailbox_empty(proc, self.tag):
            return self.done
        return None

    def _co_progress(self, proc: Proc, idle: bool):
        """Token drain and wave logic; the probe cost is already charged."""
        if not self.armci.mailbox_empty(proc, self.tag):
            while True:
                msg = yield from self.armci.co_poll_mailbox(proc, self.tag)
                if msg is None:
                    break
                yield from self._co_handle(proc, msg[0], msg[1])
        if self.done:
            return True
        if idle:
            if self.rank == 0:
                yield from self._co_root_step(proc)
            else:
                yield from self._co_try_vote(proc)
        return self.done

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def _co_handle(self, proc: Proc, src: int, payload: tuple):
        kind = payload[0]
        if kind == "down":
            _, wave = payload
            self.wave = wave
            self.in_wave = True
            self.voted = False
            self.child_tokens = {}
            hooks.protocol(proc, "wave-down", wave=wave)
            for c in self.children:
                yield from self._co_send(proc, c, ("down", wave))
        elif kind == "up":
            _, wave, color = payload
            if wave != self.wave:
                raise TaskCollectionError(
                    f"termination protocol error: rank {self.rank} got up-token "
                    f"for wave {wave} during wave {self.wave}"
                )
            self.child_tokens[src] = color
        elif kind == "done":
            self.done = True
            for c in self.children:
                yield from self._co_send(proc, c, ("done",))
        else:  # pragma: no cover - defensive
            raise TaskCollectionError(f"unknown termination message {payload!r}")

    def _co_send(self, proc: Proc, dest: int, payload: tuple):
        self.counters.add(proc.rank, "td_msgs")
        trace(proc, "td-msg", f"{payload[0]} -> rank {dest}")
        hooks.protocol(proc, "td-send", dest=dest, token=payload[0])
        yield from self.armci.co_post(proc, dest, self.tag, payload)

    # ------------------------------------------------------------------ #
    # Voting
    # ------------------------------------------------------------------ #
    def _combined_color(self, proc: Proc) -> int:
        hooks.flag_read(proc, ("td-dirty", self.tag, self.rank))
        if self.dirty or any(c == BLACK for c in self.child_tokens.values()):
            return BLACK
        return WHITE

    def _co_try_vote(self, proc: Proc):
        """Non-root: pass the token up once passive with all child tokens."""
        if not self.in_wave or self.voted:
            return
        if len(self.child_tokens) < len(self.children):
            return
        color = self._combined_color(proc)
        hooks.protocol(proc, "vote", wave=self.wave, color=color)
        hooks.flag_write(proc, ("td-dirty", self.tag, self.rank))
        self.dirty = False
        self.voted = True
        self.in_wave = False
        yield from self._co_send(proc, self.parent, ("up", self.wave, color))
        self.counters.add(proc.rank, "votes")

    def _co_root_step(self, proc: Proc):
        """Root: start waves while idle; complete them when tokens return."""
        if not self.in_wave:
            self.wave += 1
            self.in_wave = True
            self.child_tokens = {}
            self._wave_started = proc.now
            self.counters.add(proc.rank, "waves")
            hooks.protocol(proc, "wave-start", wave=self.wave)
            for c in self.children:
                yield from self._co_send(proc, c, ("down", self.wave))
        if len(self.child_tokens) < len(self.children):
            return
        color = self._combined_color(proc)
        rec = Recorder.of(self.engine)
        if rec is not None:
            rec.metrics.observe(
                "wave_rtt", proc.now - self._wave_started, rank=proc.rank
            )
            rec.complete_span(
                proc,
                f"wave {self.wave}",
                "termination",
                self._wave_started,
                detail="white" if color == WHITE else "black",
            )
        hooks.protocol(
            proc, "wave-complete", wave=self.wave, color=color,
            done=color == WHITE,
        )
        hooks.flag_write(proc, ("td-dirty", self.tag, self.rank))
        self.dirty = False
        self.in_wave = False
        self.child_tokens = {}
        if color == WHITE:
            self.done = True
            trace(proc, "td-done", self.wave)
            for c in self.children:
                yield from self._co_send(proc, c, ("done",))
