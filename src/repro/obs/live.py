"""Live telemetry bus: virtual-time interval snapshots as append-only JSONL.

A :class:`TelemetryBus` binds to a :class:`~repro.obs.record.Recorder`
and publishes one *frame* per virtual-time interval: windowed histogram
percentiles (from :class:`~repro.obs.metrics.QuantileSketch` deltas, so
p50/p95/p99 carry the sketch's relative-error bound), counter totals,
gauge occupancy, and the engine's event rate.  Frames are appended to a
JSONL feed (:data:`LIVE_SCHEMA`) with a single ``O_APPEND`` write each
(:func:`repro.util.io.append_text_line`), so a concurrent tailer —
``python -m repro.obs top FEED --follow`` — always sees whole records
while the run is still in flight.

Determinism contract
--------------------

The bus is an *observer* exactly like the recorder: its engine tick
(:attr:`repro.sim.engine.Engine._tick`, fired once per scheduling event
with the event's virtual time) never advances a clock, never touches an
RNG, and emits frames at boundaries derived purely from virtual time.
Two runs of the same scenario — on any context-switch backend — produce
byte-identical feeds; ``repro.obs verify`` checks that enabling the bus
leaves the run fingerprint unchanged, and the bus is entirely absent
(one ``None`` attribute read per event) when not attached.

Frame boundaries are sampled at event granularity: the frame for window
``[t0, t1)`` is emitted when the first event at or after ``t1`` is
picked, and covers every event ticked — and every metric observation
recorded — before that moment.  Intervals in which no event fired emit
no frame (the feed is bounded by activity, not by elapsed virtual time).

Fleet runs give each worker its own feed file; the parent interleaves
them with :func:`merge_feeds`, annotating every frame with its worker id
(``python -m repro.fleet trace --live``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import QuantileSketch
from repro.util.io import append_text_line, atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.record import Recorder

__all__ = [
    "LIVE_SCHEMA",
    "DEFAULT_INTERVAL",
    "TelemetryBus",
    "read_feed",
    "validate_feed",
    "merge_feeds",
    "latest_frames",
    "render_top",
]

#: Schema tag carried by the meta line of every live feed.
LIVE_SCHEMA = "repro-obs-live/1"

#: Default snapshot interval (virtual seconds) when none is given —
#: 100 µs of simulated time, a few hundred events on the app presets.
DEFAULT_INTERVAL = 100e-6


class TelemetryBus:
    """Publishes interval snapshots of a recorder's metrics to a feed.

    Args:
        path: Feed destination (truncated at bind time; appended per
            frame).
        interval: Virtual-time window length in seconds.
        label: Stream label stamped into the meta line and every frame
            (the target name; fleet merges add a worker id alongside).
    """

    def __init__(
        self,
        path: str | Path,
        interval: float = DEFAULT_INTERVAL,
        label: str = "run",
    ) -> None:
        if interval <= 0:
            raise ValueError("telemetry interval must be > 0")
        self.path = Path(path)
        self.interval = float(interval)
        self.label = label
        self.frames_emitted = 0
        self.recorder: "Recorder | None" = None
        self._engine = None
        self._t0 = 0.0
        self._last = 0.0
        self._events_prev = 0
        # name -> (sketch snapshot, count, sum) at the last frame boundary
        self._snap: dict[str, tuple[Any, int, float]] = {}
        self._finished = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def bind(self, recorder: "Recorder") -> None:
        """Attach to ``recorder``'s engine; write the feed's meta line.

        Installs the engine tick; called by the recorder when it is
        constructed with ``live=...``.
        """
        self.recorder = recorder
        self._engine = recorder.engine
        self._engine._tick = self.tick
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # A fresh run owns its feed: truncate any stale one, then append.
        self.path.write_text("")
        self._write(
            {
                "schema": LIVE_SCHEMA,
                "kind": "meta",
                "label": self.label,
                "interval": self.interval,
                "nprocs": self._engine.nprocs,
            }
        )

    def tick(self, now: float) -> None:
        """Engine hook: called once per scheduling event with its time."""
        if now > self._last:
            self._last = now
        while now >= self._t0 + self.interval:
            self._close(self._t0 + self.interval)

    def finish(self, t_end: float | None = None) -> None:
        """Emit the trailing (possibly partial) frame (idempotent)."""
        if self._finished:
            return
        self._finished = True
        end = self._last if t_end is None else max(t_end, self._last)
        while end >= self._t0 + self.interval:
            self._close(self._t0 + self.interval)
        if self._engine is not None and self._engine.events > self._events_prev:
            self._close(max(end, self._t0))

    # ------------------------------------------------------------------ #
    # Frame emission
    # ------------------------------------------------------------------ #
    def _close(self, t1: float) -> None:
        assert self.recorder is not None and self._engine is not None
        events = self._engine.events
        d_events = events - self._events_prev
        registry = self.recorder.metrics
        histograms: dict[str, dict] = {}
        for name in sorted(registry.histograms):
            h = registry.histograms[name]
            prev = self._snap.get(name)
            prev_sketch, prev_count, prev_sum = (
                prev if prev is not None else (({}, 0, 0), 0, 0.0)
            )
            dcount = h.count - prev_count
            if dcount:
                dsketch = h.sketch.delta(prev_sketch)
                dsum = h.sum - prev_sum
                histograms[name] = {
                    "count": dcount,
                    "mean": dsum / dcount,
                    "p50": dsketch.quantile(0.50),
                    "p95": dsketch.quantile(0.95),
                    "p99": dsketch.quantile(0.99),
                }
            self._snap[name] = (h.sketch.snapshot(), h.count, h.sum)
        if d_events or histograms:
            span = t1 - self._t0
            gauges = {}
            for gname in sorted(registry.gauges):
                g = registry.gauges[gname]
                if g.last:
                    vals = g.last.values()
                    gauges[gname] = {
                        "lo": min(vals),
                        "hi": max(vals),
                        "n": len(vals),
                    }
            frame = {
                "kind": "frame",
                "label": self.label,
                "seq": self.frames_emitted,
                "t0": self._t0,
                "t1": t1,
                "events": events,
                "d_events": d_events,
                "ev_s": (d_events / span) if span > 0 else 0.0,
                "counters": registry.counters.snapshot(),
                "gauges": gauges,
                "histograms": histograms,
            }
            self._write(frame)
            self.frames_emitted += 1
            flight = self.recorder.flight
            if flight is not None:
                flight.record_frame(frame)
        self._events_prev = events
        self._t0 = t1

    def _write(self, doc: dict) -> None:
        append_text_line(
            self.path, json.dumps(doc, sort_keys=True, separators=(",", ":"))
        )


# ---------------------------------------------------------------------- #
# Feed reading / validation / merging
# ---------------------------------------------------------------------- #
def read_feed(path: str | Path) -> dict:
    """Parse a live feed into ``{"meta": ..., "frames": [...]}``.

    Tolerates a truncated final line (a tailer racing the writer, or a
    crash mid-append) by skipping it; raises :class:`ValueError` on a
    missing or wrong-schema meta line.
    """
    path = Path(path)
    meta: dict | None = None
    frames: list[dict] = []
    with path.open() as fh:
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line
            if doc.get("kind") == "meta":
                if meta is None:
                    if doc.get("schema") != LIVE_SCHEMA:
                        raise ValueError(
                            f"{path}: unsupported live-feed schema "
                            f"{doc.get('schema')!r}; expected {LIVE_SCHEMA}"
                        )
                    meta = doc
                else:
                    meta.setdefault("merged", []).append(doc)
            elif doc.get("kind") == "frame":
                frames.append(doc)
    if meta is None:
        raise ValueError(f"{path}: not a live telemetry feed (no meta line)")
    return {"meta": meta, "frames": frames}


def validate_feed(doc: dict) -> list[str]:
    """Structural checks over a parsed feed; returns problem strings.

    Used by the CI schema gate: an empty list means the feed is a valid
    ``repro-obs-live/1`` document.
    """
    problems: list[str] = []
    meta = doc.get("meta") or {}
    if meta.get("schema") != LIVE_SCHEMA:
        problems.append(f"meta schema is {meta.get('schema')!r}")
    if not isinstance(meta.get("interval"), (int, float)) or meta.get("interval", 0) <= 0:
        problems.append(f"meta interval is {meta.get('interval')!r}")
    prev_t1: dict[str, float] = {}
    prev_seq: dict[str, int] = {}
    for i, frame in enumerate(doc.get("frames", ())):
        where = f"frame {i}"
        for key in ("label", "seq", "t0", "t1", "events", "d_events", "histograms"):
            if key not in frame:
                problems.append(f"{where}: missing {key!r}")
        t0, t1 = frame.get("t0"), frame.get("t1")
        if isinstance(t0, (int, float)) and isinstance(t1, (int, float)):
            if not t0 < t1:
                problems.append(f"{where}: empty window [{t0}, {t1})")
            stream = f"{frame.get('label')}/{frame.get('worker', '')}"
            if t0 < prev_t1.get(stream, 0.0):
                problems.append(f"{where}: window overlaps previous ({stream})")
            prev_t1[stream] = t1 if isinstance(t1, float) else float(t1)
            seq = frame.get("seq")
            if isinstance(seq, int):
                if seq <= prev_seq.get(stream, -1):
                    problems.append(f"{where}: seq not increasing ({stream})")
                prev_seq[stream] = seq
        for name, h in (frame.get("histograms") or {}).items():
            for key in ("count", "p50", "p95", "p99"):
                if key not in h:
                    problems.append(f"{where}: histogram {name!r} missing {key!r}")
    return problems


def merge_feeds(
    inputs: list[tuple[int, str | Path]], out: str | Path
) -> dict:
    """Interleave per-worker feeds into one merged feed at ``out``.

    ``inputs`` pairs each worker id with its feed path.  Frames are
    annotated with ``worker`` and ordered by ``(t1, t0, label, worker)``
    — virtual time is the shared axis, so the merged feed reads as one
    cluster-wide timeline.  Written atomically (a finished merge, not an
    append stream).  Returns the merged document.
    """
    metas: list[dict] = []
    frames: list[dict] = []
    for worker, path in inputs:
        doc = read_feed(path)
        meta = dict(doc["meta"])
        meta["worker"] = worker
        metas.append(meta)
        for frame in doc["frames"]:
            f = dict(frame)
            f["worker"] = worker
            frames.append(f)
    frames.sort(key=lambda f: (f["t1"], f["t0"], f.get("label", ""), f["worker"]))
    merged_meta = {
        "schema": LIVE_SCHEMA,
        "kind": "meta",
        "label": "merged",
        "interval": metas[0]["interval"] if metas else 0.0,
        "merged": metas,
    }
    lines = [json.dumps(merged_meta, sort_keys=True, separators=(",", ":"))]
    lines.extend(
        json.dumps(f, sort_keys=True, separators=(",", ":")) for f in frames
    )
    atomic_write_text(out, "\n".join(lines) + "\n")
    return {"meta": merged_meta, "frames": frames}


# ---------------------------------------------------------------------- #
# Terminal rendering (repro.obs top)
# ---------------------------------------------------------------------- #
def latest_frames(doc: dict) -> list[dict]:
    """The most recent frame of each (label, worker) stream, sorted."""
    latest: dict[tuple, dict] = {}
    for frame in doc.get("frames", ()):
        latest[(frame.get("label"), frame.get("worker"))] = frame
    return [latest[k] for k in sorted(latest, key=lambda k: (str(k[0]), str(k[1])))]


def _fmt_seconds(v: float | None) -> str:
    if v is None:
        return "-"
    if v >= 1.0:
        return f"{v:.3g}s"
    if v >= 1e-3:
        return f"{v * 1e3:.3g}ms"
    if v >= 1e-6:
        return f"{v * 1e6:.3g}us"
    return f"{v * 1e9:.3g}ns"


def _fmt_value(name: str, v: float | None) -> str:
    # Latency-style metrics are seconds; count-style ones are unitless.
    if any(h in name for h in ("chunk", "occupancy", "events", "jobs")):
        return "-" if v is None else f"{v:.4g}"
    return _fmt_seconds(v)


def render_top(doc: dict, counters_top: int = 6) -> str:
    """One status table over the latest frame(s) of a feed."""
    frames = latest_frames(doc)
    if not frames:
        return "telemetry feed: no frames yet"
    lines: list[str] = []
    interval = doc.get("meta", {}).get("interval")
    for frame in frames:
        stream = str(frame.get("label", "?"))
        if frame.get("worker") is not None:
            stream += f" (worker {frame['worker']})"
        lines.append(
            f"{stream}: t={_fmt_seconds(frame.get('t1'))} virtual  "
            f"frame #{frame.get('seq')}  events={frame.get('events')}  "
            f"window ev/s={frame.get('ev_s', 0.0):.4g}"
            + (f"  (interval {_fmt_seconds(interval)})" if interval else "")
        )
        hists = frame.get("histograms") or {}
        if hists:
            name_w = max(len(n) for n in hists) + 2
            lines.append(
                f"  {'metric'.ljust(name_w)}{'count':>8}{'mean':>10}"
                f"{'p50':>10}{'p95':>10}{'p99':>10}"
            )
            for name in sorted(hists):
                h = hists[name]
                lines.append(
                    f"  {name.ljust(name_w)}{h.get('count', 0):>8}"
                    f"{_fmt_value(name, h.get('mean')):>10}"
                    f"{_fmt_value(name, h.get('p50')):>10}"
                    f"{_fmt_value(name, h.get('p95')):>10}"
                    f"{_fmt_value(name, h.get('p99')):>10}"
                )
        gauges = frame.get("gauges") or {}
        for gname in sorted(gauges):
            g = gauges[gname]
            lines.append(
                f"  {gname}: lo={g.get('lo'):g} hi={g.get('hi'):g} "
                f"(over {g.get('n')} ranks)"
            )
        counters = frame.get("counters") or {}
        if counters:
            top = sorted(counters.items(), key=lambda kv: -kv[1])[:counters_top]
            lines.append(
                "  counters: "
                + "  ".join(f"{k}={v:g}" for k, v in top)
            )
        lines.append("")
    return "\n".join(lines).rstrip()
