"""Analytic completion-cost models for barrier-style collectives.

Figure 4 of the paper compares Scioto's (fully message-level)
termination detector against MPI barriers and ARMCI fences.  The
barriers themselves are modelled analytically: all ranks must arrive,
then everyone leaves after the algorithm's critical-path cost.

* MPI barrier — dissemination algorithm: ``ceil(log2 p)`` rounds, each a
  message latency plus per-round software overhead.
* ARMCI barrier/fence — flush of outstanding one-sided operations plus a
  tree gather/release; slightly more expensive than the MPI barrier, as
  the paper's Figure 4 shows.
"""

from __future__ import annotations

import math

from repro.sim.machines import MachineSpec

__all__ = ["mpi_barrier_cost", "armci_barrier_cost"]

#: Per-round software overhead of a barrier round (message handling).
_ROUND_OVERHEAD = 0.4e-6
#: Extra one-time cost of flushing the one-sided pipeline (ARMCI fence).
_FENCE_FLUSH = 2.0e-6


def mpi_barrier_cost(machine: MachineSpec, nprocs: int) -> float:
    """Critical-path cost of a dissemination barrier after the last arrival."""
    if nprocs <= 1:
        return _ROUND_OVERHEAD
    rounds = math.ceil(math.log2(nprocs))
    return rounds * (machine.latency + _ROUND_OVERHEAD)


def armci_barrier_cost(machine: MachineSpec, nprocs: int) -> float:
    """Critical-path cost of an ARMCI fence + tree barrier after last arrival."""
    if nprocs <= 1:
        return _ROUND_OVERHEAD + _FENCE_FLUSH
    depth = math.ceil(math.log2(nprocs))
    # gather up the tree + release down the tree, plus the fence flush
    return _FENCE_FLUSH + 2.0 * depth * (machine.latency + _ROUND_OVERHEAD)
