"""Tests for the TCE block-sparse contraction kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.tce import (
    TCEProblem,
    contract_sequential,
    run_tce_original,
    run_tce_scioto,
)
from repro.core import SciotoConfig
from repro.sim.machines import heterogeneous_cluster

PROB = TCEProblem(nblocks=6, blocksize=8, density=0.4, seed=3)


class TestProblem:
    def test_masks_deterministic(self):
        a = TCEProblem(nblocks=6, blocksize=8, density=0.4, seed=3)
        assert PROB.nonzero_triples() == a.nonzero_triples()

    def test_density_validation(self):
        with pytest.raises(ValueError):
            TCEProblem(density=0.0)
        with pytest.raises(ValueError):
            TCEProblem(density=1.5)

    def test_nonzero_triples_subset(self):
        nz = PROB.nonzero_triples()
        assert 0 < len(nz) < len(PROB.all_triples())
        for i, j, k in nz:
            assert PROB.nonzero_a(i, k) and PROB.nonzero_b(k, j)

    def test_masked_blocks_are_zero(self):
        found_zero = found_nonzero = False
        for i in range(PROB.nblocks):
            for k in range(PROB.nblocks):
                blk = PROB.block_a(i, k)
                if PROB.nonzero_a(i, k):
                    assert np.any(blk != 0)
                    found_nonzero = True
                else:
                    assert np.all(blk == 0)
                    found_zero = True
        assert found_zero and found_nonzero

    def test_dense_assembly_shape(self):
        assert PROB.dense_a().shape == (48, 48)

    def test_full_density_gives_dense_product(self):
        p = TCEProblem(nblocks=3, blocksize=4, density=1.0, seed=1)
        assert len(p.nonzero_triples()) == 27


class TestParallelTCE:
    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_scioto_matches_reference(self, nprocs):
        ref = contract_sequential(PROB)
        r = run_tce_scioto(nprocs, PROB, max_events=10_000_000)
        assert np.allclose(r.result, ref, atol=1e-10)

    @pytest.mark.parametrize("nprocs", [1, 2, 5])
    def test_original_matches_reference(self, nprocs):
        ref = contract_sequential(PROB)
        r = run_tce_original(nprocs, PROB, max_events=10_000_000)
        assert np.allclose(r.result, ref, atol=1e-10)

    def test_schedule_invariance(self):
        a = run_tce_scioto(4, PROB, seed=1, max_events=10_000_000)
        b = run_tce_scioto(4, PROB, seed=42, max_events=10_000_000)
        assert np.allclose(a.result, b.result, atol=1e-12)

    def test_heterogeneous_correct(self):
        ref = contract_sequential(PROB)
        r = run_tce_scioto(4, PROB, machine=heterogeneous_cluster(4),
                           max_events=10_000_000)
        assert np.allclose(r.result, ref, atol=1e-10)

    def test_no_split_correct(self):
        ref = contract_sequential(PROB)
        r = run_tce_scioto(3, PROB, config=SciotoConfig(split_queues=False),
                           max_events=10_000_000)
        assert np.allclose(r.result, ref, atol=1e-10)

    def test_counter_claims_exceed_real_tasks(self):
        """The original scheme's defining overhead: claims for zero blocks.

        Every triple — zero or not — costs one atomic counter claim, so
        the rmw count must reach the full triple count even though only a
        fraction of triples carry real work.
        """
        r = run_tce_original(3, PROB, max_events=10_000_000)
        assert r.tasks_real < len(PROB.all_triples())


class TestMatmulExample:
    def test_matmul_matches_numpy(self):
        import numpy as np
        from repro.apps.matmul import run_matmul

        rng = np.random.default_rng(5)
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        r = run_matmul(4, a, b, num_blocks=4, max_events=5_000_000)
        assert np.allclose(r.c, a @ b, atol=1e-10)

    def test_matmul_validation(self):
        import numpy as np
        from repro.apps.matmul import run_matmul

        a = np.ones((10, 10))
        with pytest.raises(ValueError, match="divisible"):
            run_matmul(2, a, a, num_blocks=3)
        with pytest.raises(ValueError, match="square"):
            run_matmul(2, np.ones((4, 6)), np.ones((4, 6)))
